// Pima screening walkthrough: the paper's first scenario end to end.
//
// Shows the two data cleanings (Pima R vs Pima M), the pure Hamming HDC
// model under leave-one-out validation, and a hybrid HDC + SVC screening
// model producing per-patient risk scores.
//
// Flags: --dim N (default 10000), --seed S, --csv PATH (load the real Pima
// CSV instead of the synthetic substitute; zeros in the lab columns are
// treated as missing, as in the original file).
#include <cstdio>

#include "core/experiment.hpp"
#include "core/hamming_classifier.hpp"
#include "core/hybrid.hpp"
#include "data/csv.hpp"
#include "data/describe.hpp"
#include "data/preprocess.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "ml/svm.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const std::size_t dim = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  const std::uint64_t seed = cli.get_uint("--seed", 3);

  // --- Load the raw dataset (synthetic substitute or a real CSV). ---
  hdc::data::Dataset raw = [&] {
    const std::string csv_path = cli.get_string("--csv", "");
    if (!csv_path.empty()) {
      hdc::data::CsvOptions options;
      options.zero_is_missing = {"Glucose", "BloodPressure", "SkinThickness",
                                 "Insulin", "BMI"};
      return hdc::data::read_csv_file(csv_path, options);
    }
    hdc::data::PimaConfig config;
    config.seed = seed;
    return hdc::data::make_pima(config);
  }();
  std::printf("raw dataset: %zu patients, %zu with missing values\n",
              raw.n_rows(), raw.rows_with_missing());
  if (cli.has_flag("--describe")) {
    std::fputs(hdc::data::describe(raw).c_str(), stdout);
  }

  // --- The paper's two cleanings. ---
  const hdc::data::Dataset pima_r = hdc::data::remove_missing_rows(raw);
  const hdc::data::Dataset pima_m = hdc::data::impute_class_median(raw);
  const auto [r_neg, r_pos] = pima_r.class_counts();
  std::printf("Pima R: %zu rows (%zu negative / %zu positive)\n",
              pima_r.n_rows(), r_neg, r_pos);
  std::printf("Pima M: %zu rows (class-median imputation; note: this leaks "
              "label information)\n\n",
              pima_m.n_rows());

  // --- Pure HDC model: Hamming 1-NN with leave-one-out validation. ---
  hdc::core::ExperimentConfig experiment;
  experiment.extractor.dimensions = dim;
  experiment.seed = seed;
  for (const auto& [name, ds] : {std::pair{"Pima R", &pima_r},
                                 std::pair{"Pima M", &pima_m}}) {
    const auto metrics = hdc::core::hamming_loo(*ds, experiment);
    std::printf("Hamming LOO on %s: accuracy %.1f%%  (precision %.3f, recall "
                "%.3f)\n",
                name, 100.0 * metrics.accuracy, metrics.precision, metrics.recall);
  }

  // --- Hybrid HDC + SVC screening model on Pima M. ---
  const auto split = hdc::data::stratified_split(pima_m.labels(), 0.1, seed);
  const hdc::data::Dataset train = pima_m.subset(split.train);
  const hdc::data::Dataset test = pima_m.subset(split.test);
  hdc::core::HybridModel screener(experiment.extractor,
                                  std::make_unique<hdc::ml::SvcClassifier>());
  screener.fit(train);
  const auto test_metrics = screener.evaluate(test);
  std::printf("\nHybrid HDC+SVC on Pima M holdout: accuracy %.1f%% (F1 %.3f)\n",
              100.0 * test_metrics.accuracy, test_metrics.f1);

  // --- Per-patient risk scores, the paper's clinical use case. ---
  std::printf("\nper-patient screening report (first 5 held-out patients):\n");
  std::printf("%-8s %-12s %-10s %s\n", "patient", "risk score", "decision",
              "actual");
  for (std::size_t i = 0; i < 5 && i < test.n_rows(); ++i) {
    const double risk = screener.predict_proba(test.row(i));
    std::printf("%-8zu %-12.2f %-10s %s\n", i, risk,
                risk >= 0.5 ? "refer" : "routine",
                test.label(i) == 1 ? "diabetic" : "non-diabetic");
  }
  return 0;
}
