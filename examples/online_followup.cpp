// Follow-up-visit deployment: the paper's §IV scenario — a model that is
// trained once, shipped (serialized), then kept current from each follow-up
// visit's confirmed outcome via single-sample online updates.
#include <cstdio>
#include <sstream>

#include "core/extractor.hpp"
#include "core/online.hpp"
#include "core/serialize.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_uint("--seed", 17);

  // Year 0: train on an initial cohort and serialize the deployable parts.
  const hdc::data::Dataset cohort = hdc::data::make_sylhet({200, 320, seed});
  const auto split = hdc::data::stratified_split(cohort.labels(), 0.3, seed);
  const hdc::data::Dataset initial = cohort.subset(split.train);
  const hdc::data::Dataset follow_up = cohort.subset(split.test);

  hdc::core::ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(initial);

  hdc::core::OnlineHdClassifier model;
  model.fit(extractor.transform(initial), initial.labels());
  std::printf("initial training: %zu patients, retraining converged after %zu "
              "epochs\n",
              initial.n_rows(), model.updates_per_epoch().size());

  // Ship the encoder: the extractor round-trips through its text format
  // (here an in-memory stream; use save_extractor_file for a real file).
  std::stringstream wire;
  hdc::core::save_extractor(wire, extractor);
  const hdc::core::HdcFeatureExtractor clinic_extractor =
      hdc::core::load_extractor(wire);
  std::printf("encoder serialized: %zu bytes\n", wire.str().size());

  // Years 1..n: each follow-up visit scores the patient, then — once the lab
  // outcome is confirmed — feeds it back with partial_fit.
  std::size_t correct_before_update = 0;
  for (std::size_t i = 0; i < follow_up.n_rows(); ++i) {
    const hdc::hv::BitVector encoded = clinic_extractor.encode_row(follow_up.row(i));
    const int predicted = model.predict(encoded);
    if (predicted == follow_up.label(i)) ++correct_before_update;
    model.partial_fit(encoded, follow_up.label(i));
  }
  std::printf("prequential accuracy over %zu follow-up visits: %.1f%%\n",
              follow_up.n_rows(),
              100.0 * static_cast<double>(correct_before_update) /
                  static_cast<double>(follow_up.n_rows()));

  // The continuously updated model, re-evaluated on the original cohort.
  std::size_t hits = 0;
  const auto all_vectors = clinic_extractor.transform(cohort);
  for (std::size_t i = 0; i < cohort.n_rows(); ++i) {
    if (model.predict(all_vectors[i]) == cohort.label(i)) ++hits;
  }
  std::printf("post-update accuracy on the full cohort: %.1f%%\n",
              100.0 * static_cast<double>(hits) / static_cast<double>(cohort.n_rows()));
  return 0;
}
