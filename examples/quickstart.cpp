// Quickstart: the whole pipeline in ~40 lines.
//
//   1. Load (here: synthesise) a tabular diabetes dataset.
//   2. Fit the HDC feature extractor + a downstream classifier.
//   3. Evaluate on held-out patients and score a new one.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hybrid.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "ml/forest.hpp"

int main() {
  // 1. A Sylhet-like symptom questionnaire dataset (520 patients).
  const hdc::data::Dataset dataset = hdc::data::make_sylhet();
  const auto split = hdc::data::stratified_split(dataset.labels(), 0.2, /*seed=*/1);
  const hdc::data::Dataset train = dataset.subset(split.train);
  const hdc::data::Dataset test = dataset.subset(split.test);

  // 2. 10,000-bit hypervector encoding feeding a random forest.
  hdc::core::ExtractorConfig encoding;
  encoding.dimensions = 10000;
  hdc::core::HybridModel model(encoding,
                               std::make_unique<hdc::ml::RandomForest>());
  model.fit(train);

  // 3. Held-out evaluation.
  const hdc::eval::BinaryMetrics metrics = model.evaluate(test);
  std::printf("test accuracy:    %.1f%%\n", 100.0 * metrics.accuracy);
  std::printf("test precision:   %.3f\n", metrics.precision);
  std::printf("test recall:      %.3f\n", metrics.recall);
  std::printf("test specificity: %.3f\n", metrics.specificity);
  std::printf("test F1:          %.3f\n", metrics.f1);

  // Score one new patient: 52-year-old with polyuria + polydipsia.
  std::vector<double> patient(test.n_cols(), 0.0);
  patient[0] = 52.0;  // age
  patient[2] = 1.0;   // polyuria
  patient[3] = 1.0;   // polydipsia
  std::printf("new patient risk score: %.2f -> %s\n",
              model.predict_proba(patient),
              model.predict(patient) == 1 ? "refer for testing" : "low risk");
  return 0;
}
