// hdc_cli — command-line workflow over CSV files, the "no code" entry point:
//
//   hdc_cli describe data.csv                      # dataset summary
//   hdc_cli train data.csv model.hdc               # fit extractor + Hamming 1-NN
//   hdc_cli train data.csv model.hdc --stream --shard-rows N
//                                                  # same model, out-of-core:
//                                                  # CSV is read and encoded in
//                                                  # N-row shards, never fully
//                                                  # resident as dense doubles
//   hdc_cli evaluate data.csv model.hdc            # accuracy report on a CSV
//   hdc_cli predict data.csv model.hdc             # per-row predictions
//   hdc_cli experiment data.csv                    # Hamming LOOCV + model fit
//   hdc_cli grid a.csv [b.csv ...]                 # scheduled model-zoo CV grid
//   hdc_cli bundle data.csv model.bundle           # fit + save a model bundle
//   hdc_cli serve data.csv model.bundle            # serve rows from a bundle
//
// The model file holds the serialized extractor followed by the serialized
// Hamming classifier; --label <column> selects the label column (default:
// last), --dim / --seed control the encoding.
//
// `grid` runs the paper's evaluation sweep (every zoo model under stratified
// k-fold CV, per dataset) through the work-stealing task-graph scheduler and
// shared fold-encoding cache: --threads N sets the worker count (default:
// all cores), --serial runs the reference serial walk instead, --kfold K,
// --models a,b,c restricts the zoo, --budget B scales boosted models. With
// --trace-out the Chrome trace shows the grid.encode / grid.fit /
// grid.reduce scheduler spans.
//
// `bundle` fits the extractor + Hamming classifier and, with --models
// a,b,c / --with-nn, zoo models and the Sequential NN on the encoded
// hypervectors, then writes one checksummed bundle file (core/bundle).
// `serve` loads a bundle and classifies every row of the CSV ("-" = stdin)
// through core/serve — --model picks the predictor ("hamming", "nn", or a
// zoo name), --coalesce routes rows through the request-coalescing queue
// (identical predictions by contract), --max-batch caps a drain sweep; a
// final "# serve:" line reports the request/batch counters.
//
// Observability (any command): --metrics-out=FILE writes the obs metrics
// registry as JSON (with --metrics-interval MS it becomes a JSONL stream, one
// snapshot line per interval plus a final one); --trace-out=FILE writes a
// Chrome trace-event JSON (chrome://tracing / Perfetto) of the run's spans,
// including cross-thread flow arrows; --stacks-out=FILE writes the same
// spans folded into flamegraph collapsed-stack lines. `serve` additionally
// takes --metrics-port P to expose GET /metrics (Prometheus text) and
// /healthz on an embedded HTTP listener while it runs (P=0 picks an
// ephemeral port, logged at startup). All of it enables the corresponding
// recording; predictions are identical either way.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>

#include "core/bundle.hpp"
#include "core/experiment.hpp"
#include "core/extractor.hpp"
#include "core/grid.hpp"
#include "core/hamming_classifier.hpp"
#include "core/serialize.hpp"
#include "core/serve.hpp"
#include "core/shard_source.hpp"
#include "ml/zoo.hpp"
#include "nn/sequential.hpp"
#include "data/chunked.hpp"
#include "data/csv.hpp"
#include "data/describe.hpp"
#include "eval/metrics.hpp"
#include "core/manifest.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

hdc::data::Dataset load(const std::string& path, const hdc::util::Cli& cli) {
  hdc::data::CsvOptions options;
  options.label_column = cli.get_string("--label", "");
  if (path == "-") return hdc::data::read_csv(std::cin, options);
  return hdc::data::read_csv_file(path, options);
}

int cmd_describe(const hdc::data::Dataset& ds) {
  std::fputs(hdc::data::describe(ds).c_str(), stdout);
  return 0;
}

int cmd_train(const hdc::data::Dataset& ds, const std::string& model_path,
              const hdc::util::Cli& cli) {
  hdc::core::ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  config.seed = cli.get_uint("--seed", 2023);
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(ds);

  hdc::core::HammingClassifier model(
      hdc::core::HammingMode::kNearestNeighbor,
      static_cast<std::size_t>(cli.get_int("--k", 1)));
  model.fit(extractor.transform(ds), ds.labels());

  std::ofstream out(model_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", model_path.c_str());
    return 1;
  }
  hdc::core::save_extractor(out, extractor);
  hdc::core::save_hamming(out, model);
  std::printf("trained on %zu patients (%zu features), wrote %s\n", ds.n_rows(),
              ds.n_cols(), model_path.c_str());
  return 0;
}

// Pass-1 of every --stream command: fold per-chunk column stats into the
// extractor ranges, one chunk resident at a time. The folded ranges equal
// the whole-file ranges exactly (min/max are order-free), so the fitted
// extractor is identical to an in-memory fit() over the same rows.
std::optional<hdc::core::HdcFeatureExtractor> fit_extractor_streamed(
    const hdc::data::CsvStreamChunks& chunks,
    const std::vector<hdc::data::ChunkRange>& plan,
    const hdc::util::Cli& cli) {
  std::vector<hdc::core::ColumnEncoding> columns;
  for (const hdc::data::ColumnSpec& spec : chunks.columns()) {
    columns.push_back({spec.name, spec.kind, 0.0, 0.0});
  }
  std::vector<std::size_t> present(columns.size(), 0);
  for (const hdc::data::ChunkRange& range : plan) {
    const hdc::data::Dataset chunk = chunks.chunk(range.begin, range.end);
    for (std::size_t j = 0; j < columns.size(); ++j) {
      if (columns[j].kind != hdc::data::ColumnKind::kContinuous) continue;
      const hdc::data::ColumnStats stats = chunk.column_stats(j);
      if (stats.present == 0) continue;
      if (present[j] == 0) {
        columns[j].lo = stats.min;
        columns[j].hi = stats.max;
      } else {
        columns[j].lo = std::min(columns[j].lo, stats.min);
        columns[j].hi = std::max(columns[j].hi, stats.max);
      }
      present[j] += stats.present;
    }
  }
  for (std::size_t j = 0; j < columns.size(); ++j) {
    if (columns[j].kind == hdc::data::ColumnKind::kContinuous && present[j] == 0) {
      std::fprintf(stderr, "column '%s' has no data\n", columns[j].name.c_str());
      return std::nullopt;
    }
  }

  hdc::core::ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  config.seed = cli.get_uint("--seed", 2023);
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit_from_columns(std::move(columns));
  return extractor;
}

// Out-of-core variant of cmd_train: the CSV is consumed in row-range shards
// (data::CsvStreamChunks re-reads each range from disk), so the dense double
// matrix of the full cohort is never resident. Pass 1 folds per-chunk column
// stats into the extractor ranges; pass 2 encodes shard-at-a-time. The
// written model file is byte-identical to the in-memory train on the same
// CSV: row i's encoding is a pure function of (row, extractor).
int cmd_train_stream(const std::string& csv_path, const std::string& model_path,
                     const hdc::util::Cli& cli) {
  if (csv_path == "-") {
    std::fprintf(stderr, "--stream needs a seekable CSV file, not stdin\n");
    return 2;
  }
  hdc::data::CsvOptions options;
  options.label_column = cli.get_string("--label", "");
  const hdc::data::CsvStreamChunks chunks(csv_path, options);
  const std::size_t shard_rows =
      static_cast<std::size_t>(cli.get_int("--shard-rows", 4096));
  const std::vector<hdc::data::ChunkRange> plan =
      hdc::data::make_shard_plan(chunks.n_rows(), shard_rows);

  std::optional<hdc::core::HdcFeatureExtractor> fitted =
      fit_extractor_streamed(chunks, plan, cli);
  if (!fitted) return 1;
  hdc::core::HdcFeatureExtractor extractor = std::move(*fitted);

  // Pass 2: encode shard-at-a-time. Only the packed patient hypervectors
  // accumulate (dimensions/8 bytes per row).
  std::vector<hdc::hv::BitVector> vectors;
  std::vector<int> labels;
  vectors.reserve(chunks.n_rows());
  labels.reserve(chunks.n_rows());
  for (const hdc::data::ChunkRange& range : plan) {
    const hdc::data::Dataset chunk = chunks.chunk(range.begin, range.end);
    std::vector<hdc::hv::BitVector> encoded = extractor.transform(chunk);
    std::move(encoded.begin(), encoded.end(), std::back_inserter(vectors));
    const std::vector<int>& y = chunk.labels();
    labels.insert(labels.end(), y.begin(), y.end());
  }

  hdc::core::HammingClassifier model(
      hdc::core::HammingMode::kNearestNeighbor,
      static_cast<std::size_t>(cli.get_int("--k", 1)));
  model.fit(std::move(vectors), labels);

  std::ofstream out(model_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", model_path.c_str());
    return 1;
  }
  hdc::core::save_extractor(out, extractor);
  hdc::core::save_hamming(out, model);
  std::printf(
      "streamed %zu patients (%zu features) in %zu shards of <= %zu rows, "
      "wrote %s\n",
      chunks.n_rows(), chunks.n_cols(), plan.size(),
      shard_rows == 0 ? chunks.n_rows() : shard_rows, model_path.c_str());
  return 0;
}

struct LoadedModel {
  hdc::core::HdcFeatureExtractor extractor;
  hdc::core::HammingClassifier classifier;
};

LoadedModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file " + path);
  LoadedModel m{hdc::core::load_extractor(in), hdc::core::load_hamming(in)};
  return m;
}

int cmd_evaluate(const hdc::data::Dataset& ds, const std::string& model_path) {
  const LoadedModel m = load_model(model_path);
  std::vector<int> predictions;
  predictions.reserve(ds.n_rows());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    predictions.push_back(m.classifier.predict(m.extractor.encode_row(ds.row(i))));
  }
  const hdc::eval::BinaryMetrics metrics =
      hdc::eval::compute_metrics(ds.labels(), predictions);
  std::printf("n=%zu  accuracy=%.2f%%  precision=%.3f  recall=%.3f  "
              "specificity=%.3f  f1=%.3f\n",
              ds.n_rows(), 100.0 * metrics.accuracy, metrics.precision,
              metrics.recall, metrics.specificity, metrics.f1);
  return 0;
}

int cmd_experiment(const hdc::data::Dataset& ds, const hdc::util::Cli& cli) {
  hdc::core::ExperimentConfig config;
  config.extractor.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  config.extractor.seed = cli.get_uint("--seed", 2023);
  // Default to a 2-worker pool so the pool instrumentation is exercised even
  // on single-core hosts; results are thread-count-invariant by contract.
  config.threads = static_cast<std::size_t>(cli.get_int("--threads", 2));

  // The paper's pure-HDC protocol: encode every row, leave-one-out 1-NN.
  const hdc::core::ExperimentResult loo =
      hdc::core::hamming_loo_observed(ds, config);
  std::printf("hamming_loo  n=%zu  accuracy=%.2f%%  precision=%.3f  recall=%.3f  "
              "f1=%.3f\n",
              ds.n_rows(), 100.0 * loo.metrics.accuracy, loo.metrics.precision,
              loo.metrics.recall, loo.metrics.f1);

  // A conventional-model stage so the trace shows the full
  // encode -> search -> fit pipeline (paper Table IV protocol).
  const std::string model_name = cli.get_string("--model", "Logistic Regression");
  const hdc::eval::BinaryMetrics holdout = hdc::core::holdout_metrics(
      ds, model_name, hdc::core::InputMode::kRawFeatures, 0.1, config);
  std::printf("holdout(%s)  accuracy=%.2f%%  f1=%.3f\n", model_name.c_str(),
              100.0 * holdout.accuracy, holdout.f1);
  return 0;
}

int cmd_grid(const std::vector<std::string>& csv_paths,
             const hdc::util::Cli& cli) {
  // Load every dataset up front; the file path doubles as the fold-cache
  // dataset id, so duplicate paths share encodings safely.
  std::vector<hdc::data::Dataset> loaded;
  loaded.reserve(csv_paths.size());
  for (const std::string& path : csv_paths) loaded.push_back(load(path, cli));
  std::vector<hdc::core::GridDatasetSpec> specs;
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    specs.push_back({csv_paths[i], &loaded[i]});
  }

  hdc::core::GridConfig config;
  config.kfold = static_cast<std::size_t>(cli.get_int("--kfold", 10));
  config.threads = static_cast<std::size_t>(cli.get_int("--threads", 0));
  config.scheduled = !cli.has_flag("--serial");
  config.experiment.extractor.dimensions =
      static_cast<std::size_t>(cli.get_int("--dim", 10000));
  config.experiment.extractor.seed = cli.get_uint("--seed", 2023);
  config.experiment.model_budget = cli.get_double("--budget", 1.0);
  const std::string models = cli.get_string("--models", "");
  if (!models.empty()) {
    for (const std::string& name : hdc::util::split(models, ',')) {
      const auto trimmed = hdc::util::trim(name);
      if (!trimmed.empty()) config.models.emplace_back(trimmed);
    }
  }

  const hdc::core::GridResult result = hdc::core::run_grid(specs, config);

  hdc::util::Table table({"Dataset", "Model", "Mean acc", "Stddev"});
  for (const auto& ds : result.datasets) {
    for (const auto& cell : ds.models) {
      table.add_row({ds.dataset, cell.model,
                     hdc::util::format_percent(cell.cv.mean_accuracy, 2),
                     hdc::util::format_double(cell.cv.stddev_accuracy, 4)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  const hdc::core::GridStats& st = result.stats;
  if (config.scheduled) {
    std::printf(
        "# scheduler: workers=%zu tasks=%llu (encode=%zu fit=%zu reduce=%zu) "
        "steals=%llu\n"
        "# fold cache: hits=%llu misses=%llu evictions=%llu peak=%zu "
        "dedup=%.1fx\n",
        st.workers, static_cast<unsigned long long>(st.tasks_executed),
        st.encode_tasks, st.model_tasks, st.reduce_tasks,
        static_cast<unsigned long long>(st.steals),
        static_cast<unsigned long long>(st.cache_hits),
        static_cast<unsigned long long>(st.cache_misses),
        static_cast<unsigned long long>(st.cache_evictions),
        st.cache_peak_entries, st.dedup_ratio);
  } else {
    std::printf("# serial reference walk: %zu model fits\n", st.model_tasks);
  }
  return 0;
}

int cmd_predict(const hdc::data::Dataset& ds, const std::string& model_path) {
  const LoadedModel m = load_model(model_path);
  std::printf("row,prediction,score\n");
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const hdc::hv::BitVector encoded = m.extractor.encode_row(ds.row(i));
    std::printf("%zu,%d,%.4f\n", i, m.classifier.predict(encoded),
                m.classifier.predict_score(encoded));
  }
  return 0;
}

int cmd_bundle(const hdc::data::Dataset& ds, const std::string& data_path,
               const std::string& out_path, const hdc::util::Cli& cli) {
  hdc::core::ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  config.seed = cli.get_uint("--seed", 2023);
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(ds);

  hdc::core::ModelBundle bundle;
  hdc::core::HammingClassifier hamming(
      hdc::core::HammingMode::kNearestNeighbor,
      static_cast<std::size_t>(cli.get_int("--k", 1)));
  hamming.fit(extractor.transform(ds), ds.labels());
  if (cli.has_flag("--ann")) {
    // Bake the ANN index into the bundle so serve start-up skips the build.
    hdc::hv::ann::Config ann_config;
    ann_config.cells = static_cast<std::size_t>(cli.get_int("--cells", 0));
    ann_config.nprobe = static_cast<std::size_t>(cli.get_int("--nprobe", 0));
    hamming.enable_ann(ann_config);
  }
  bundle.hamming = std::move(hamming);

  const std::string models = cli.get_string("--models", "");
  if (!models.empty()) {
    const hdc::hv::BitMatrix bits = extractor.transform_bits(ds);
    for (const std::string& name : hdc::util::split(models, ',')) {
      const auto trimmed = hdc::util::trim(name);
      if (trimmed.empty()) continue;
      auto model = hdc::ml::make_model(std::string(trimmed));
      model->fit_bits(bits, ds.labels());
      bundle.models.push_back(std::move(model));
    }
  }
  if (cli.has_flag("--with-nn")) {
    auto nn = std::make_unique<hdc::nn::Sequential>();
    nn->fit(extractor.transform_to_matrix(ds), ds.labels());
    bundle.nn = std::move(nn);
  }
  bundle.extractor = std::move(extractor);

  // Provenance rides inside the artifact: exactly which data, seeds, and
  // runtime configuration produced these weights.
  hdc::core::ExperimentConfig run_config;
  run_config.extractor = config;
  run_config.seed = config.seed;
  bundle.manifest = hdc::core::make_run_manifest(ds, data_path, run_config);

  hdc::core::save_bundle_file(out_path, bundle);
  std::printf("bundled %zu patients (%zu features) -> %s\n", ds.n_rows(),
              ds.n_cols(), out_path.c_str());
  return 0;
}

// Out-of-core bundle build: the CSV streams through core::EncodingShardSource
// in --shard-rows shards, so the dense cohort is never resident. With --ann
// the index is built by hv::ann::Index::build_sharded — shard-at-a-time,
// byte-identical to the in-memory build — and attached to the Hamming
// classifier under the usual database-fingerprint check. Zoo models (if any)
// train through their fit_shards merge paths. The written bundle is
// byte-identical to `bundle` on the same CSV, except that the provenance
// manifest (whose dataset hash needs the whole file resident) is omitted.
int cmd_bundle_stream(const std::string& csv_path, const std::string& out_path,
                      const hdc::util::Cli& cli) {
  if (csv_path == "-") {
    std::fprintf(stderr, "--stream needs a seekable CSV file, not stdin\n");
    return 2;
  }
  if (cli.has_flag("--with-nn")) {
    std::fprintf(stderr,
                 "--with-nn needs the dense matrix resident; drop --stream or "
                 "--with-nn\n");
    return 2;
  }
  // The streamed-build counters/gauges feed the trailing summary line;
  // recording never changes any produced byte (obs determinism contract).
  hdc::obs::set_enabled(true);
  hdc::data::CsvOptions options;
  options.label_column = cli.get_string("--label", "");
  const hdc::data::CsvStreamChunks chunks(csv_path, options);
  const std::size_t shard_rows =
      static_cast<std::size_t>(cli.get_int("--shard-rows", 4096));
  const std::vector<hdc::data::ChunkRange> plan =
      hdc::data::make_shard_plan(chunks.n_rows(), shard_rows);

  std::optional<hdc::core::HdcFeatureExtractor> fitted =
      fit_extractor_streamed(chunks, plan, cli);
  if (!fitted) return 1;
  hdc::core::HdcFeatureExtractor extractor = std::move(*fitted);

  const hdc::core::EncodingShardSource source(chunks, extractor, shard_rows);

  // With --ann the index builds first, while only one encoded shard is ever
  // resident; the classifier vectors accumulate afterwards.
  std::optional<hdc::hv::ann::Index> ann_index;
  hdc::hv::ann::BuildStats ann_stats;
  if (cli.has_flag("--ann")) {
    hdc::hv::ann::Config ann_config;
    ann_config.cells = static_cast<std::size_t>(cli.get_int("--cells", 0));
    ann_config.nprobe = static_cast<std::size_t>(cli.get_int("--nprobe", 0));
    ann_index = hdc::hv::ann::Index::build_sharded(source, ann_config, nullptr,
                                                   &ann_stats);
  }

  hdc::core::ModelBundle bundle;
  {
    // The serve path needs the packed patient vectors resident
    // (dimensions/8 bytes per row — the bundle's own payload).
    std::vector<hdc::hv::BitVector> vectors;
    vectors.reserve(chunks.n_rows());
    for (const hdc::data::ChunkRange& range : plan) {
      const hdc::data::Dataset chunk = chunks.chunk(range.begin, range.end);
      std::vector<hdc::hv::BitVector> encoded = extractor.transform(chunk);
      std::move(encoded.begin(), encoded.end(), std::back_inserter(vectors));
    }
    hdc::core::HammingClassifier hamming(
        hdc::core::HammingMode::kNearestNeighbor,
        static_cast<std::size_t>(cli.get_int("--k", 1)));
    hamming.fit(std::move(vectors),
                {source.labels().begin(), source.labels().end()});
    if (ann_index) hamming.attach_ann(std::move(*ann_index));
    bundle.hamming = std::move(hamming);
  }

  const std::string models = cli.get_string("--models", "");
  if (!models.empty()) {
    for (const std::string& name : hdc::util::split(models, ',')) {
      const auto trimmed = hdc::util::trim(name);
      if (trimmed.empty()) continue;
      auto model = hdc::ml::make_model(std::string(trimmed));
      model->fit_shards(source);
      bundle.models.push_back(std::move(model));
    }
  }
  bundle.extractor = std::move(extractor);
  hdc::core::save_bundle_file(out_path, bundle);

  const hdc::obs::MetricsSnapshot snapshot = hdc::obs::snapshot();
  std::printf(
      "streamed %zu patients (%zu features) in %zu shards of <= %zu rows -> "
      "%s\n",
      chunks.n_rows(), chunks.n_cols(), plan.size(),
      shard_rows == 0 ? chunks.n_rows() : shard_rows, out_path.c_str());
  if (cli.has_flag("--ann")) {
    std::printf(
        "# ann: cells=%zu build_bytes_peak=%lld (shard_max=%llu index=%llu) "
        "sketch_blocks=%llu\n",
        bundle.hamming->ann_index()->cells(),
        static_cast<long long>(snapshot.gauge_max("hv.ann.build_bytes_peak")),
        static_cast<unsigned long long>(ann_stats.shard_bytes_max),
        static_cast<unsigned long long>(ann_stats.index_bytes),
        static_cast<unsigned long long>(
            snapshot.counter_value("hv.ann.sketch_blocks")));
  }
  return 0;
}

int cmd_serve(const hdc::data::Dataset& ds, const std::string& bundle_path,
              const hdc::util::Cli& cli) {
  // Serve counters feed the trailing summary line; recording never changes
  // predictions (obs determinism contract).
  hdc::obs::set_enabled(true);
  hdc::core::ServeConfig config;
  config.model = cli.get_string("--model", "");
  config.max_batch = static_cast<std::size_t>(cli.get_int("--max-batch", 64));
  config.ann = cli.has_flag("--ann");
  config.nprobe = static_cast<std::size_t>(cli.get_int("--nprobe", 0));
  hdc::core::ServeEngine engine(hdc::core::load_bundle_file(bundle_path),
                                config);

  // --metrics-port P: live Prometheus endpoint for the duration of the run
  // (P=0 = ephemeral; the bound port is logged at startup).
  std::optional<hdc::obs::MetricsServer> metrics_server;
  const int metrics_port = cli.get_int("--metrics-port", -1);
  if (metrics_port >= 0) {
    hdc::obs::MetricsServer::Options server_options;
    server_options.port = static_cast<std::uint16_t>(metrics_port);
    metrics_server.emplace(server_options);
    if (!metrics_server->ok()) {
      std::fprintf(stderr, "warning: metrics server failed: %s\n",
                   metrics_server->error().c_str());
      metrics_server.reset();
    }
  }

  std::printf("row,prediction\n");
  if (cli.has_flag("--coalesce")) {
    std::vector<std::future<int>> results;
    results.reserve(ds.n_rows());
    for (std::size_t i = 0; i < ds.n_rows(); ++i) {
      const std::span<const double> row = ds.row(i);
      results.push_back(engine.submit({row.begin(), row.end()}));
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("%zu,%d\n", i, results[i].get());
    }
  } else {
    for (std::size_t i = 0; i < ds.n_rows(); ++i) {
      std::printf("%zu,%d\n", i, engine.classify(ds.row(i)));
    }
  }
  engine.shutdown();

  const hdc::obs::MetricsSnapshot snapshot = hdc::obs::snapshot();
  std::printf("# serve: model=%s requests=%llu batches=%llu max_queue=%lld\n",
              engine.model_name().c_str(),
              static_cast<unsigned long long>(engine.requests_served()),
              static_cast<unsigned long long>(
                  snapshot.counter_value("serve.batches")),
              static_cast<long long>(snapshot.gauge_max("serve.queue_depth")));
  if (config.ann) {
    std::printf("# serve.ann: probes=%llu candidates=%llu\n",
                static_cast<unsigned long long>(
                    snapshot.counter_value("serve.ann.probes")),
                static_cast<unsigned long long>(
                    snapshot.counter_value("serve.ann.candidates")));
  }
  return 0;
}

}  // namespace

int run_command(const hdc::util::Cli& cli) {
  const auto& args = cli.positional();
  const std::string& command = args[0];
  if (command == "grid") {
    // grid takes one-or-more CSVs, not the single-dataset + model shape.
    return cmd_grid({args.begin() + 1, args.end()}, cli);
  }
  if ((command == "train" || command == "bundle") && cli.has_flag("--stream")) {
    // Dispatch before load(): the whole point of --stream is that the CSV
    // is never materialized as one Dataset.
    if (args.size() < 3) {
      std::fprintf(stderr, "%s needs an output path\n", command.c_str());
      return 2;
    }
    return command == "train" ? cmd_train_stream(args[1], args[2], cli)
                              : cmd_bundle_stream(args[1], args[2], cli);
  }
  const hdc::data::Dataset ds = load(args[1], cli);
  if (command == "describe") return cmd_describe(ds);
  if (command == "experiment") return cmd_experiment(ds, cli);
  if (args.size() < 3) {
    std::fprintf(stderr, "%s needs a model path\n", command.c_str());
    return 2;
  }
  if (command == "train") return cmd_train(ds, args[2], cli);
  if (command == "evaluate") return cmd_evaluate(ds, args[2]);
  if (command == "predict") return cmd_predict(ds, args[2]);
  if (command == "bundle") return cmd_bundle(ds, args[1], args[2], cli);
  if (command == "serve") return cmd_serve(ds, args[2], cli);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}

/// Flush --metrics-out / --trace-out / --stacks-out files after the command
/// ran. metrics_out is skipped when a JSONL writer already owns that path.
void flush_observability(const std::string& metrics_out,
                         const std::string& trace_out,
                         const std::string& stacks_out) {
  if (!metrics_out.empty() && !hdc::obs::write_metrics_json(metrics_out)) {
    std::fprintf(stderr, "warning: cannot write %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (hdc::obs::write_chrome_trace(trace_out)) {
      hdc::util::log_fields(
          hdc::util::LogLevel::kInfo, "obs: trace flushed",
          {{"path", trace_out},
           {"events", std::to_string(hdc::obs::trace_event_count())},
           {"dropped", std::to_string(hdc::obs::trace_dropped_count())}});
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_out.c_str());
    }
  }
  if (!stacks_out.empty() && !hdc::obs::write_collapsed_stacks(stacks_out)) {
    std::fprintf(stderr, "warning: cannot write %s\n", stacks_out.c_str());
  }
}

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const auto& args = cli.positional();
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: hdc_cli <describe|train|evaluate|predict|experiment> "
                 "<data.csv> [model.hdc] [--label COL] [--dim N] [--seed S] "
                 "[--k K] [--model NAME] [--threads T] [--metrics-out FILE] "
                 "[--trace-out FILE]\n"
                 "       hdc_cli train <data.csv> <model.hdc> --stream "
                 "[--shard-rows N] [--label COL] [--dim N] [--seed S] [--k K]\n"
                 "       hdc_cli bundle <data.csv> <out.bundle> [--models "
                 "a,b,c] [--with-nn] [--dim N] [--seed S] [--k K] [--ann "
                 "[--cells C] [--nprobe P]]\n"
                 "       hdc_cli bundle <data.csv> <out.bundle> --stream "
                 "[--shard-rows N] [--ann [--cells C] [--nprobe P]] [--models "
                 "a,b,c] [--dim N] [--seed S] [--k K]\n"
                 "       hdc_cli serve <data.csv|-> <model.bundle> [--model "
                 "NAME] [--coalesce] [--max-batch N] [--metrics-port P] "
                 "[--ann [--nprobe P]]\n"
                 "       hdc_cli grid <data.csv> [more.csv ...] [--kfold K] "
                 "[--models a,b,c] [--threads N] [--serial] [--budget B] "
                 "[--dim N] [--seed S]\n"
                 "observability (any command): [--metrics-out FILE] "
                 "[--metrics-interval MS] [--trace-out FILE] [--stacks-out "
                 "FILE]\n");
    return 2;
  }
  const std::string metrics_out = cli.get_string("--metrics-out", "");
  const std::string trace_out = cli.get_string("--trace-out", "");
  const std::string stacks_out = cli.get_string("--stacks-out", "");
  const int metrics_interval_ms = cli.get_int("--metrics-interval", 0);
  if (!metrics_out.empty()) hdc::obs::set_enabled(true);
  if (!trace_out.empty() || !stacks_out.empty()) {
    hdc::obs::set_trace_enabled(true);
  }
  // --metrics-interval turns --metrics-out into a periodic JSONL stream for
  // headless runs; the writer owns the file, so the one-shot flush is skipped.
  std::optional<hdc::obs::SnapshotJsonlWriter> jsonl;
  if (metrics_interval_ms > 0 && !metrics_out.empty()) {
    jsonl.emplace(metrics_out, std::chrono::milliseconds(metrics_interval_ms));
  }
  try {
    const int status = run_command(cli);
    if (jsonl) {
      jsonl->stop();
    }
    flush_observability(jsonl ? "" : metrics_out, trace_out, stacks_out);
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
