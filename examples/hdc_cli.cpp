// hdc_cli — command-line workflow over CSV files, the "no code" entry point:
//
//   hdc_cli describe data.csv                      # dataset summary
//   hdc_cli train data.csv model.hdc               # fit extractor + Hamming 1-NN
//   hdc_cli evaluate data.csv model.hdc            # accuracy report on a CSV
//   hdc_cli predict data.csv model.hdc             # per-row predictions
//
// The model file holds the serialized extractor followed by the serialized
// Hamming classifier; --label <column> selects the label column (default:
// last), --dim / --seed control the encoding.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "core/serialize.hpp"
#include "data/csv.hpp"
#include "data/describe.hpp"
#include "eval/metrics.hpp"
#include "util/cli.hpp"

namespace {

hdc::data::Dataset load(const std::string& path, const hdc::util::Cli& cli) {
  hdc::data::CsvOptions options;
  options.label_column = cli.get_string("--label", "");
  return hdc::data::read_csv_file(path, options);
}

int cmd_describe(const hdc::data::Dataset& ds) {
  std::fputs(hdc::data::describe(ds).c_str(), stdout);
  return 0;
}

int cmd_train(const hdc::data::Dataset& ds, const std::string& model_path,
              const hdc::util::Cli& cli) {
  hdc::core::ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  config.seed = cli.get_uint("--seed", 2023);
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(ds);

  hdc::core::HammingClassifier model(
      hdc::core::HammingMode::kNearestNeighbor,
      static_cast<std::size_t>(cli.get_int("--k", 1)));
  model.fit(extractor.transform(ds), ds.labels());

  std::ofstream out(model_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", model_path.c_str());
    return 1;
  }
  hdc::core::save_extractor(out, extractor);
  hdc::core::save_hamming(out, model);
  std::printf("trained on %zu patients (%zu features), wrote %s\n", ds.n_rows(),
              ds.n_cols(), model_path.c_str());
  return 0;
}

struct LoadedModel {
  hdc::core::HdcFeatureExtractor extractor;
  hdc::core::HammingClassifier classifier;
};

LoadedModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file " + path);
  LoadedModel m{hdc::core::load_extractor(in), hdc::core::load_hamming(in)};
  return m;
}

int cmd_evaluate(const hdc::data::Dataset& ds, const std::string& model_path) {
  const LoadedModel m = load_model(model_path);
  std::vector<int> predictions;
  predictions.reserve(ds.n_rows());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    predictions.push_back(m.classifier.predict(m.extractor.encode_row(ds.row(i))));
  }
  const hdc::eval::BinaryMetrics metrics =
      hdc::eval::compute_metrics(ds.labels(), predictions);
  std::printf("n=%zu  accuracy=%.2f%%  precision=%.3f  recall=%.3f  "
              "specificity=%.3f  f1=%.3f\n",
              ds.n_rows(), 100.0 * metrics.accuracy, metrics.precision,
              metrics.recall, metrics.specificity, metrics.f1);
  return 0;
}

int cmd_predict(const hdc::data::Dataset& ds, const std::string& model_path) {
  const LoadedModel m = load_model(model_path);
  std::printf("row,prediction,score\n");
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const hdc::hv::BitVector encoded = m.extractor.encode_row(ds.row(i));
    std::printf("%zu,%d,%.4f\n", i, m.classifier.predict(encoded),
                m.classifier.predict_score(encoded));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const auto& args = cli.positional();
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: hdc_cli <describe|train|evaluate|predict> <data.csv> "
                 "[model.hdc] [--label COL] [--dim N] [--seed S] [--k K]\n");
    return 2;
  }
  try {
    const std::string& command = args[0];
    const hdc::data::Dataset ds = load(args[1], cli);
    if (command == "describe") return cmd_describe(ds);
    if (args.size() < 3) {
      std::fprintf(stderr, "%s needs a model path\n", command.c_str());
      return 2;
    }
    if (command == "train") return cmd_train(ds, args[2], cli);
    if (command == "evaluate") return cmd_evaluate(ds, args[2]);
    if (command == "predict") return cmd_predict(ds, args[2]);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
