// Custom encoding: the low-level hypervector API without the Dataset layer.
//
// Walks through the three HDC primitives the paper builds on — level
// encoding, orthogonal binary encoding, and majority-vote bundling — and
// prints the distance structure they induce, so you can see the geometry
// the classifiers exploit.
#include <cstdio>
#include <memory>

#include "hv/encoders.hpp"
#include "hv/item_memory.hpp"
#include "hv/ops.hpp"

int main() {
  constexpr std::size_t kDim = 10000;

  // --- 1. Level (linear) encoding of a continuous feature. ---
  // Age in [21, 81]: min maps to a random seed, max lands orthogonal.
  const hdc::hv::LevelEncoder age(kDim, 21.0, 81.0, /*seed=*/1);
  std::printf("level encoding of Age in [21, 81] (normalised distances):\n");
  for (const double other : {21.0, 30.0, 45.0, 60.0, 81.0}) {
    std::printf("  d(enc(21), enc(%4.0f)) = %.3f\n", other,
                age.encode(21.0).hamming_fraction(age.encode(other)));
  }
  std::printf("  -> distance grows linearly; endpoints exactly orthogonal "
              "(0.500)\n\n");

  // --- 2. Binary encoding of a yes/no symptom. ---
  const hdc::hv::BinaryEncoder polyuria(kDim, /*seed=*/2);
  std::printf("binary encoding: d(no, yes) = %.3f (orthogonal pair)\n\n",
              polyuria.zero_vector().hamming_fraction(polyuria.one_vector()));

  // --- 3. Bundle a patient record with majority voting. ---
  hdc::hv::RecordEncoder record(kDim);
  record.add_feature(std::make_unique<hdc::hv::LevelEncoder>(kDim, 21.0, 81.0, 1));
  record.add_feature(std::make_unique<hdc::hv::BinaryEncoder>(kDim, 2));
  record.add_feature(std::make_unique<hdc::hv::LevelEncoder>(kDim, 18.0, 67.0, 3));

  const std::vector<double> alice = {45.0, 1.0, 36.0};  // age, polyuria, BMI
  const std::vector<double> alice_older = {48.0, 1.0, 36.5};
  const std::vector<double> bob = {25.0, 0.0, 21.0};
  const hdc::hv::BitVector va = record.encode(alice);
  std::printf("patient bundling (3 features, ties -> 1):\n");
  std::printf("  d(alice, alice') = %.3f   (small change in age/BMI)\n",
              va.hamming_fraction(record.encode(alice_older)));
  std::printf("  d(alice, bob)    = %.3f   (different on every feature)\n\n",
              va.hamming_fraction(record.encode(bob)));

  // --- 4. Binding and item memory: symbolic structure, beyond the paper. ---
  hdc::hv::ItemMemory memory(kDim, /*seed=*/4);
  const hdc::hv::BitVector role_age = memory.get("role:age");
  const hdc::hv::BitVector filler = age.encode(45.0);
  const hdc::hv::BitVector bound = hdc::hv::bind(role_age, filler);
  // Unbinding recovers the filler exactly (XOR is self-inverse).
  std::printf("role-filler binding: d(unbind(bound), filler) = %.3f\n",
              hdc::hv::bind(bound, role_age).hamming_fraction(filler));
  std::printf("bound vector vs filler alone: d = %.3f (dissimilar, as "
              "binding should be)\n",
              bound.hamming_fraction(filler));

  // --- 5. Class prototypes via the accumulator. ---
  hdc::hv::BitAccumulator prototype(kDim);
  prototype.add(record.encode(alice));
  prototype.add(record.encode(alice_older));
  const std::vector<double> carol = {44.0, 1.0, 35.0};
  prototype.add(record.encode(carol));
  const hdc::hv::BitVector proto = prototype.to_majority();
  std::printf("\nprototype of 3 similar patients: d(prototype, alice) = %.3f, "
              "d(prototype, bob) = %.3f\n",
              proto.hamming_fraction(va), proto.hamming_fraction(record.encode(bob)));
  return 0;
}
