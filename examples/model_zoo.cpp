// Model zoo comparison: train every classical model of the paper on one
// dataset, with raw features and with hypervectors, and print a side-by-side
// holdout comparison (a one-dataset slice of the paper's Tables III-V).
//
// Flags: --dataset pima-r|pima-m|sylhet (default sylhet), --dim N,
//        --test-fraction F (default 0.2), --seed S, --budget B.
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "ml/zoo.hpp"
#include "util/cli.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const std::string which = cli.get_string("--dataset", "sylhet");
  const std::uint64_t seed = cli.get_uint("--seed", 5);

  hdc::core::ExperimentConfig experiment;
  experiment.extractor.dimensions =
      static_cast<std::size_t>(cli.get_int("--dim", 10000));
  experiment.seed = seed;
  experiment.model_budget = cli.get_double("--budget", 0.5);
  const double test_fraction = cli.get_double("--test-fraction", 0.2);

  const hdc::data::Dataset dataset = [&] {
    if (which == "sylhet") return hdc::data::make_sylhet({200, 320, seed});
    hdc::data::PimaConfig config;
    config.seed = seed;
    const hdc::data::Dataset raw = hdc::data::make_pima(config);
    if (which == "pima-r") return hdc::data::remove_missing_rows(raw);
    if (which == "pima-m") return hdc::data::impute_class_median(raw);
    std::fprintf(stderr, "unknown --dataset '%s'\n", which.c_str());
    std::exit(1);
  }();
  std::printf("dataset %s: %zu rows, %zu features; holdout %.0f%%, dim %zu\n",
              which.c_str(), dataset.n_rows(), dataset.n_cols(),
              100.0 * test_fraction, experiment.extractor.dimensions);

  hdc::util::Table table({"Model", "Features acc", "Hypervectors acc", "Gain"});
  for (const auto& entry : hdc::ml::paper_model_zoo(experiment.model_budget)) {
    std::fprintf(stderr, "[zoo] %s\n", entry.name.c_str());
    const auto feat = hdc::core::holdout_metrics(
        dataset, entry.name, hdc::core::InputMode::kRawFeatures, test_fraction,
        experiment);
    const auto hv = hdc::core::holdout_metrics(
        dataset, entry.name, hdc::core::InputMode::kHypervectors, test_fraction,
        experiment);
    table.add_row({entry.name, hdc::util::format_percent(feat.accuracy, 1),
                   hdc::util::format_percent(hv.accuracy, 1),
                   hdc::util::format_double(100.0 * (hv.accuracy - feat.accuracy), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
