// Clinical risk reporting: what the paper's §III-B asks for — "present a
// score to inform clinicians". Trains the hybrid HDC+RF model, calibrates
// its scores with Platt scaling on a validation split, then reports the
// operating points (ROC), calibration quality (ECE), and a bootstrap
// confidence interval for the headline accuracy — the parts a deployment
// needs beyond a single point estimate.
#include <cstdio>

#include "core/hybrid.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "eval/bootstrap.hpp"
#include "eval/curves.hpp"
#include "ml/calibration.hpp"
#include "ml/forest.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_uint("--seed", 23);

  const hdc::data::Dataset dataset = hdc::data::make_sylhet({200, 320, seed});
  const auto split = hdc::data::stratified_split3(dataset.labels(), 0.15, 0.15, seed);
  const hdc::data::Dataset train = dataset.subset(split.train);
  const hdc::data::Dataset val = dataset.subset(split.val);
  const hdc::data::Dataset test = dataset.subset(split.test);

  hdc::core::ExtractorConfig encoding;
  encoding.dimensions = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  hdc::core::HybridModel model(encoding, std::make_unique<hdc::ml::RandomForest>());
  model.fit(train);

  // Calibrate the raw scores on the validation split.
  std::vector<double> val_scores;
  std::vector<int> val_labels;
  for (std::size_t i = 0; i < val.n_rows(); ++i) {
    val_scores.push_back(model.predict_proba(val.row(i)));
    val_labels.push_back(val.label(i));
  }
  hdc::ml::PlattCalibrator calibrator;
  calibrator.fit(val_scores, val_labels);

  // Score the held-out test patients.
  std::vector<double> raw_scores;
  std::vector<double> calibrated;
  std::vector<int> y_true;
  std::vector<int> y_pred;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    const double raw = model.predict_proba(test.row(i));
    raw_scores.push_back(raw);
    calibrated.push_back(calibrator.transform(raw));
    y_true.push_back(test.label(i));
    y_pred.push_back(calibrated.back() >= 0.5 ? 1 : 0);
  }

  const auto ci = hdc::eval::bootstrap_accuracy(y_true, y_pred, 2000, 0.95, seed);
  std::printf("test accuracy: %.1f%%  (95%% bootstrap CI %.1f%% - %.1f%%, n=%zu)\n",
              100.0 * ci.point, 100.0 * ci.lo, 100.0 * ci.hi, y_true.size());
  std::printf("ROC AUC: %.3f   average precision: %.3f\n",
              hdc::eval::roc_auc(y_true, calibrated),
              hdc::eval::average_precision(y_true, calibrated));
  std::printf("calibration error (ECE): raw %.3f -> calibrated %.3f\n\n",
              hdc::eval::expected_calibration_error(y_true, raw_scores),
              hdc::eval::expected_calibration_error(y_true, calibrated));

  // Operating points a clinician could choose between.
  std::printf("selected ROC operating points (threshold -> sensitivity / "
              "specificity):\n");
  const auto roc = hdc::eval::roc_curve(y_true, calibrated);
  for (const double target_tpr : {0.80, 0.90, 0.95, 0.99}) {
    for (const auto& p : roc) {
      if (p.tpr >= target_tpr) {
        std::printf("  >= %.2f  ->  sens %.2f / spec %.2f\n", p.threshold, p.tpr,
                    1.0 - p.fpr);
        break;
      }
    }
  }
  return 0;
}
