// Sylhet symptom-questionnaire triage: detect already-present diabetes from
// 15 yes/no symptoms + age, the paper's second scenario.
//
// Demonstrates the associative-memory (class prototype) flavour of HDC: each
// class is bundled into one prototype hypervector, and a patient is triaged
// by which prototype their encoding is nearer to — O(1) inference, which is
// what makes HDC attractive for in-situ, low-compute deployment (paper §IV).
#include <cstdio>

#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "hv/ops.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const std::size_t dim = static_cast<std::size_t>(cli.get_int("--dim", 10000));
  const std::uint64_t seed = cli.get_uint("--seed", 11);

  const hdc::data::Dataset dataset = hdc::data::make_sylhet({200, 320, seed});
  const auto split = hdc::data::stratified_split(dataset.labels(), 0.15, seed);
  const hdc::data::Dataset train = dataset.subset(split.train);
  const hdc::data::Dataset test = dataset.subset(split.test);

  // Encode and build the two class prototypes.
  hdc::core::ExtractorConfig config;
  config.dimensions = dim;
  config.seed = seed * 13 + 5;
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(train);

  hdc::core::HammingClassifier triage(hdc::core::HammingMode::kPrototype);
  triage.fit(extractor.transform(train), train.labels());

  // Held-out triage accuracy.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    if (triage.predict(extractor.encode_row(test.row(i))) == test.label(i)) {
      ++hits;
    }
  }
  std::printf("prototype triage accuracy on %zu held-out patients: %.1f%%\n",
              test.n_rows(),
              100.0 * static_cast<double>(hits) / static_cast<double>(test.n_rows()));
  std::printf("prototype separation: %.3f normalised Hamming distance\n\n",
              triage.prototype(0).hamming_fraction(triage.prototype(1)));

  // Triage three hypothetical walk-in patients.
  struct Patient {
    const char* description;
    std::vector<double> row;
  };
  // Columns: Age, Sex(M), Polyuria, Polydipsia, SuddenWeightLoss, Weakness,
  // Polyphagia, GenitalThrush, VisualBlurring, Itching, Irritability,
  // DelayedHealing, PartialParesis, MuscleStiffness, Alopecia, Obesity.
  const Patient patients[] = {
      {"58yo, polyuria + polydipsia + weight loss",
       {58, 1, 1, 1, 1, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}},
      {"35yo, itching only",
       {35, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}},
      {"47yo, weakness + delayed healing + partial paresis",
       {47, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0}},
  };
  std::printf("walk-in triage:\n");
  for (const Patient& p : patients) {
    const hdc::hv::BitVector encoded = extractor.encode_row(p.row);
    const double d_neg = encoded.hamming_fraction(triage.prototype(0));
    const double d_pos = encoded.hamming_fraction(triage.prototype(1));
    std::printf("  %-50s d(neg)=%.3f d(pos)=%.3f -> %s\n", p.description, d_neg,
                d_pos, d_pos < d_neg ? "REFER FOR TESTING" : "routine care");
  }
  return 0;
}
