// AVX2 kernel tier. This translation unit is compiled with -mavx2 (and only
// ever entered through the dispatch table after a runtime CPU check).
//
// Popcount / Hamming use the Harley–Seal carry-save-adder scheme over blocks
// of 16 256-bit vectors: CSAs compress 16 input vectors into one vector of
// sixteens-weight digits plus carry planes, so the (comparatively expensive)
// byte-LUT popcount runs once per 16 loads instead of once per load. Digit
// counts are materialised with a nibble shuffle LUT and accumulated with
// PSADBW into four 64-bit lanes.
//
// Majority uses the same bit-sliced ripple-carry counters as the scalar
// tier, just 256 columns per step instead of 64.
#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace hdc::simd::detail {

namespace {

inline __m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

/// Per-64-bit-lane popcount of `v`, as four u64 counts.
inline __m256i popcount_lanes(__m256i v) noexcept {
  return _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256());
}

/// Carry-save adder: (h, l) = a + b + c per bit column.
inline void csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) noexcept {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

inline std::uint64_t horizontal_sum(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

/// Harley–Seal popcount of `n_vecs` vectors produced by `load(i)`, plus a
/// scalar tail over `tail` words produced by `tail_word(w)` — each caller
/// supplies its own combine (xor / and / andnot / identity) for both.
template <typename LoadFn, typename TailFn>
std::size_t popcount_harley_seal(const LoadFn& load, std::size_t n_vecs,
                                 const TailFn& tail_word,
                                 std::size_t tail) noexcept {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n_vecs; i += 16) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    csa(twos_a, ones, ones, load(i + 0), load(i + 1));
    csa(twos_b, ones, ones, load(i + 2), load(i + 3));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 4), load(i + 5));
    csa(twos_b, ones, ones, load(i + 6), load(i + 7));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_a, fours, fours, fours_a, fours_b);
    csa(twos_a, ones, ones, load(i + 8), load(i + 9));
    csa(twos_b, ones, ones, load(i + 10), load(i + 11));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 12), load(i + 13));
    csa(twos_b, ones, ones, load(i + 14), load(i + 15));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_b, fours, fours, fours_a, fours_b);
    csa(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, popcount_lanes(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(popcount_lanes(eights), 3));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(popcount_lanes(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount_lanes(twos), 1));
  total = _mm256_add_epi64(total, popcount_lanes(ones));
  for (; i < n_vecs; ++i) {
    total = _mm256_add_epi64(total, popcount_lanes(load(i)));
  }
  std::size_t sum = static_cast<std::size_t>(horizontal_sum(total));
  for (std::size_t w = 0; w < tail; ++w) {
    sum += static_cast<std::size_t>(std::popcount(tail_word(w)));
  }
  return sum;
}

std::size_t hamming_avx2(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept {
  const std::size_t n_vecs = words / 4;
  const auto load = [a, b](std::size_t i) noexcept {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    return _mm256_xor_si256(va, vb);
  };
  const std::uint64_t* ta = a + 4 * n_vecs;
  const std::uint64_t* tb = b + 4 * n_vecs;
  const auto tail = [ta, tb](std::size_t w) noexcept { return ta[w] ^ tb[w]; };
  return popcount_harley_seal(load, n_vecs, tail, words % 4);
}

std::size_t popcount_avx2(const std::uint64_t* words, std::size_t n) noexcept {
  const std::size_t n_vecs = n / 4;
  const auto load = [words](std::size_t i) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + 4 * i));
  };
  const std::uint64_t* tw = words + 4 * n_vecs;
  const auto tail = [tw](std::size_t w) noexcept { return tw[w]; };
  return popcount_harley_seal(load, n_vecs, tail, n % 4);
}

std::size_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) noexcept {
  const std::size_t n_vecs = words / 4;
  const auto load = [a, b](std::size_t i) noexcept {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    return _mm256_and_si256(va, vb);
  };
  const std::uint64_t* ta = a + 4 * n_vecs;
  const std::uint64_t* tb = b + 4 * n_vecs;
  const auto tail = [ta, tb](std::size_t w) noexcept { return ta[w] & tb[w]; };
  return popcount_harley_seal(load, n_vecs, tail, words % 4);
}

std::size_t andnot_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words) noexcept {
  const std::size_t n_vecs = words / 4;
  // VPANDN computes ~first & second, matching popcount(~a & b) directly.
  const auto load = [a, b](std::size_t i) noexcept {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    return _mm256_andnot_si256(va, vb);
  };
  const std::uint64_t* ta = a + 4 * n_vecs;
  const std::uint64_t* tb = b + 4 * n_vecs;
  const auto tail = [ta, tb](std::size_t w) noexcept { return ~ta[w] & tb[w]; };
  return popcount_harley_seal(load, n_vecs, tail, words % 4);
}

void majority_avx2(const std::uint64_t* const* rows, std::size_t n,
                   std::size_t words, std::uint64_t* out,
                   bool tie_to_one) noexcept {
  const int planes = std::bit_width(n);
  const std::size_t strict = n / 2 + 1;
  const bool check_tie = (n % 2 == 0) && tie_to_one;
  const std::size_t vec_words = (words / 4) * 4;

  __m256i counter[64];
  for (std::size_t w = 0; w < vec_words; w += 4) {
    for (int p = 0; p < planes; ++p) counter[p] = _mm256_setzero_si256();
    for (std::size_t r = 0; r < n; ++r) {
      __m256i carry =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[r] + w));
      for (int p = 0; p < planes; ++p) {
        if (_mm256_testz_si256(carry, carry)) break;
        const __m256i next = _mm256_and_si256(counter[p], carry);
        counter[p] = _mm256_xor_si256(counter[p], carry);
        carry = next;
      }
    }
    const auto mask_ge = [&](std::size_t t) noexcept {
      const std::uint64_t constant = (1ULL << planes) - t;
      __m256i carry = _mm256_setzero_si256();
      for (int p = 0; p < planes; ++p) {
        const __m256i a = counter[p];
        const __m256i b = ((constant >> p) & 1ULL)
                              ? _mm256_set1_epi64x(-1)
                              : _mm256_setzero_si256();
        carry = _mm256_or_si256(
            _mm256_and_si256(a, b),
            _mm256_and_si256(carry, _mm256_xor_si256(a, b)));
      }
      return carry;
    };
    __m256i bits = mask_ge(strict);
    if (check_tie) bits = _mm256_or_si256(bits, mask_ge(n / 2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), bits);
  }

  // Scalar bit-sliced pass over the remaining (< 4) words.
  std::uint64_t scounter[64];
  for (std::size_t w = vec_words; w < words; ++w) {
    for (int p = 0; p < planes; ++p) scounter[p] = 0;
    for (std::size_t r = 0; r < n; ++r) {
      std::uint64_t carry = rows[r][w];
      for (int p = 0; p < planes && carry != 0; ++p) {
        const std::uint64_t next = scounter[p] & carry;
        scounter[p] ^= carry;
        carry = next;
      }
    }
    const auto mask_ge = [&](std::size_t t) noexcept {
      const std::uint64_t constant = (1ULL << planes) - t;
      std::uint64_t carry = 0;
      for (int p = 0; p < planes; ++p) {
        const std::uint64_t a = scounter[p];
        const std::uint64_t b = ((constant >> p) & 1ULL) ? ~0ULL : 0ULL;
        carry = (a & b) | (carry & (a ^ b));
      }
      return carry;
    };
    std::uint64_t bits = mask_ge(strict);
    if (check_tie) bits |= mask_ge(n / 2);
    out[w] = bits;
  }
}

/// Four 4-word rows per iteration against a query that loads once: each
/// row is one XOR + PSADBW (four u64 lane counts), and the four lane-count
/// vectors transpose-sum into one vector of four row distances. The 4-word
/// case is the ANN default (256-bit sketches).
void sketch_scan4_avx2(const std::uint64_t* query, const std::uint64_t* block,
                       std::size_t n, std::uint32_t* out) noexcept {
  const __m256i vq =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto row_counts = [&](std::size_t r) noexcept {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + (i + r) * 4));
      return popcount_lanes(_mm256_xor_si256(v, vq));
    };
    const __m256i r0 = row_counts(0);
    const __m256i r1 = row_counts(1);
    const __m256i r2 = row_counts(2);
    const __m256i r3 = row_counts(3);
    // Pairwise halves per 128-bit lane, then cross-lane gather: the result
    // holds {d0, d1, d2, d3} as u64 lanes.
    const __m256i p01 = _mm256_add_epi64(_mm256_unpacklo_epi64(r0, r1),
                                         _mm256_unpackhi_epi64(r0, r1));
    const __m256i p23 = _mm256_add_epi64(_mm256_unpacklo_epi64(r2, r3),
                                         _mm256_unpackhi_epi64(r2, r3));
    const __m256i sums =
        _mm256_add_epi64(_mm256_permute2x128_si256(p01, p23, 0x20),
                         _mm256_permute2x128_si256(p01, p23, 0x31));
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sums);
    out[i + 0] = static_cast<std::uint32_t>(lanes[0]);
    out[i + 1] = static_cast<std::uint32_t>(lanes[1]);
    out[i + 2] = static_cast<std::uint32_t>(lanes[2]);
    out[i + 3] = static_cast<std::uint32_t>(lanes[3]);
  }
  for (; i < n; ++i) {
    const std::uint64_t* row = block + i * 4;
    out[i] = static_cast<std::uint32_t>(
        std::popcount(query[0] ^ row[0]) + std::popcount(query[1] ^ row[1]) +
        std::popcount(query[2] ^ row[2]) + std::popcount(query[3] ^ row[3]));
  }
}

void sketch_scan_avx2(const std::uint64_t* query, const std::uint64_t* block,
                      std::size_t n, std::size_t words,
                      std::uint32_t* out) noexcept {
  if (words == 4) return sketch_scan4_avx2(query, block, n, out);
  const std::size_t n_vecs = words / 4;
  const std::size_t tail = words % 4;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* row = block + i * words;
    __m256i total = _mm256_setzero_si256();
    std::size_t v = 0;
    while (v < n_vecs) {
      // Byte counters hold at most 8 per vector; flushing through PSADBW
      // every 31 vectors keeps them from saturating.
      const std::size_t stop = std::min(n_vecs, v + 31);
      __m256i acc = _mm256_setzero_si256();
      for (; v < stop; ++v) {
        const __m256i vq = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(query + 4 * v));
        const __m256i vr =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4 * v));
        acc = _mm256_add_epi8(acc, popcount_bytes(_mm256_xor_si256(vq, vr)));
      }
      total = _mm256_add_epi64(total,
                               _mm256_sad_epu8(acc, _mm256_setzero_si256()));
    }
    std::size_t d = static_cast<std::size_t>(horizontal_sum(total));
    for (std::size_t w = words - tail; w < words; ++w) {
      d += static_cast<std::size_t>(std::popcount(query[w] ^ row[w]));
    }
    out[i] = static_cast<std::uint32_t>(d);
  }
}

}  // namespace

const Kernels& avx2_kernels() noexcept {
  static const Kernels table{hamming_avx2, popcount_avx2, and_popcount_avx2,
                             andnot_popcount_avx2, majority_avx2,
                             sketch_scan_avx2};
  return table;
}

}  // namespace hdc::simd::detail
