#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "simd/kernels.hpp"
#include "util/log.hpp"

namespace hdc::simd {

namespace {

bool cpu_supports(Tier tier) noexcept {
  if (tier == Tier::kScalar) return true;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vpopcntdq");
  }
#endif
  return false;
}

const Kernels* table_for(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return &detail::scalar_kernels();
    case Tier::kAvx2:
#if defined(HDC_SIMD_COMPILED_AVX2)
      return &detail::avx2_kernels();
#else
      return nullptr;
#endif
    case Tier::kAvx512:
#if defined(HDC_SIMD_COMPILED_AVX512)
      return &detail::avx512_kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Tier detect_best() noexcept {
  Tier best = Tier::kScalar;
  if (tier_supported(Tier::kAvx2)) best = Tier::kAvx2;
  if (tier_supported(Tier::kAvx512)) best = Tier::kAvx512;
  return best;
}

/// Initial tier: HDC_SIMD override when set and usable, else auto-detect.
Tier initial_tier() {
  const char* env = std::getenv("HDC_SIMD");
  if (env != nullptr && *env != '\0') {
    const std::optional<Tier> requested = parse_tier(env);
    if (!requested.has_value()) {
      util::log_fields(util::LogLevel::kWarn,
                       "HDC_SIMD: unknown tier, using auto-detection",
                       {{"value", env}});
    } else if (!tier_supported(*requested)) {
      util::log_fields(util::LogLevel::kWarn,
                       "HDC_SIMD: tier not supported on this machine/binary, "
                       "using auto-detection",
                       {{"value", env}});
    } else {
      return *requested;
    }
  }
  return detect_best();
}

/// Process-wide dispatch state. The table pointer is what the hot paths
/// read (one relaxed atomic load per kernel batch).
struct Dispatch {
  std::atomic<const Kernels*> table;
  std::atomic<int> tier;

  Dispatch() {
    const Tier t = initial_tier();
    table.store(table_for(t), std::memory_order_relaxed);
    tier.store(static_cast<int>(t), std::memory_order_relaxed);
  }

  static Dispatch& get() {
    static Dispatch dispatch;
    return dispatch;
  }
};

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Tier> parse_tier(std::string_view name) noexcept {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  return std::nullopt;
}

bool tier_compiled(Tier tier) noexcept { return table_for(tier) != nullptr; }

bool tier_supported(Tier tier) noexcept {
  return tier_compiled(tier) && cpu_supports(tier);
}

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers;
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    if (tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

const Kernels& kernels(Tier tier) {
  if (!tier_supported(tier)) {
    throw std::invalid_argument(std::string("simd: tier '") + tier_name(tier) +
                                "' is not supported on this machine/binary");
  }
  return *table_for(tier);
}

Tier active_tier() noexcept {
  return static_cast<Tier>(Dispatch::get().tier.load(std::memory_order_relaxed));
}

const Kernels& active() noexcept {
  return *Dispatch::get().table.load(std::memory_order_relaxed);
}

void set_tier(Tier tier) {
  const Kernels& table = kernels(tier);  // throws when unsupported
  Dispatch& dispatch = Dispatch::get();
  dispatch.table.store(&table, std::memory_order_relaxed);
  dispatch.tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void reset_tier() noexcept {
  const Tier t = detect_best();
  Dispatch& dispatch = Dispatch::get();
  dispatch.table.store(table_for(t), std::memory_order_relaxed);
  dispatch.tier.store(static_cast<int>(t), std::memory_order_relaxed);
}

}  // namespace hdc::simd
