// Scalar kernel tier: portable std::popcount loops. Always compiled; every
// SIMD tier is property-tested bit-exact against these implementations.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace hdc::simd::detail {

namespace {

std::size_t hamming_scalar(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::size_t popcount_scalar(const std::uint64_t* words, std::size_t n) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

std::size_t and_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

std::size_t andnot_popcount_scalar(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t words) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::size_t>(std::popcount(~a[i] & b[i]));
  }
  return total;
}

/// Bit-sliced majority: each column's ones-count is held as a little-endian
/// binary number spread across `planes` words, so adding one row is a
/// ripple-carry add of 64 columns at once. The threshold test "count >= t"
/// is the carry-out of count + (2^planes - t) rippled through the planes.
void majority_scalar(const std::uint64_t* const* rows, std::size_t n,
                     std::size_t words, std::uint64_t* out,
                     bool tie_to_one) noexcept {
  const int planes = std::bit_width(n);  // counts span [0, n]
  const std::size_t strict = n / 2 + 1;  // 2*count > n
  const bool check_tie = (n % 2 == 0) && tie_to_one;
  std::uint64_t counter[64];
  for (std::size_t w = 0; w < words; ++w) {
    for (int p = 0; p < planes; ++p) counter[p] = 0;
    for (std::size_t r = 0; r < n; ++r) {
      std::uint64_t carry = rows[r][w];
      for (int p = 0; p < planes && carry != 0; ++p) {
        const std::uint64_t next = counter[p] & carry;
        counter[p] ^= carry;
        carry = next;
      }
    }
    const auto mask_ge = [&](std::size_t t) {
      const std::uint64_t constant = (1ULL << planes) - t;
      std::uint64_t carry = 0;
      for (int p = 0; p < planes; ++p) {
        const std::uint64_t a = counter[p];
        const std::uint64_t b = ((constant >> p) & 1ULL) ? ~0ULL : 0ULL;
        carry = (a & b) | (carry & (a ^ b));
      }
      return carry;
    };
    std::uint64_t bits = mask_ge(strict);
    if (check_tie) bits |= mask_ge(n / 2);
    out[w] = bits;
  }
}

/// Fixed-width row scan: the compiler unrolls the inner loop completely, so
/// the common sketch widths (1–8 words) run without per-row loop overhead.
template <std::size_t W>
void sketch_scan_fixed(const std::uint64_t* query, const std::uint64_t* block,
                       std::size_t n, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* row = block + i * W;
    std::uint32_t d = 0;
    for (std::size_t w = 0; w < W; ++w) {
      d += static_cast<std::uint32_t>(std::popcount(query[w] ^ row[w]));
    }
    out[i] = d;
  }
}

void sketch_scan_scalar(const std::uint64_t* query, const std::uint64_t* block,
                        std::size_t n, std::size_t words,
                        std::uint32_t* out) noexcept {
  switch (words) {
    case 1: return sketch_scan_fixed<1>(query, block, n, out);
    case 2: return sketch_scan_fixed<2>(query, block, n, out);
    case 3: return sketch_scan_fixed<3>(query, block, n, out);
    case 4: return sketch_scan_fixed<4>(query, block, n, out);
    case 5: return sketch_scan_fixed<5>(query, block, n, out);
    case 6: return sketch_scan_fixed<6>(query, block, n, out);
    case 7: return sketch_scan_fixed<7>(query, block, n, out);
    case 8: return sketch_scan_fixed<8>(query, block, n, out);
    default: break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        hamming_scalar(query, block + i * words, words));
  }
}

}  // namespace

const Kernels& scalar_kernels() noexcept {
  static const Kernels table{hamming_scalar, popcount_scalar,
                             and_popcount_scalar, andnot_popcount_scalar,
                             majority_scalar, sketch_scan_scalar};
  return table;
}

}  // namespace hdc::simd::detail
