// AVX-512 kernel tier. Compiled with -mavx512f -mavx512vpopcntdq; entered
// only through the dispatch table after a runtime CPU check.
//
// VPOPCNTDQ gives a hardware per-lane popcount, so Hamming/popcount are a
// straight XOR + VPOPCNTQ + ADD stream; ragged tails use masked loads
// (zero-filled lanes contribute nothing) so no scalar epilogue is needed.
// Majority is the bit-sliced ripple-carry counter scheme, 512 columns per
// step, with the carry chain of the threshold test fused into single
// VPTERNLOG majority ops.
#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace hdc::simd::detail {

namespace {

std::size_t hamming_avx512(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  const std::size_t tail = words - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(mask, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(mask, b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

std::size_t popcount_avx512(const std::uint64_t* words, std::size_t n) noexcept {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_loadu_si512(words + i)));
  }
  const std::size_t tail = n - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    total = _mm512_add_epi64(
        total, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(mask, words + i)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

std::size_t and_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) noexcept {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  const std::size_t tail = words - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(mask, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(mask, b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

std::size_t andnot_popcount_avx512(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t words) noexcept {
  // VPANDN is ~first & second; masked-out tail lanes of b are zero, so the
  // ~a side never leaks set bits past the ragged end.
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_andnot_si512(va, vb)));
  }
  const std::size_t tail = words - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(mask, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(mask, b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_andnot_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

void majority_avx512(const std::uint64_t* const* rows, std::size_t n,
                     std::size_t words, std::uint64_t* out,
                     bool tie_to_one) noexcept {
  const int planes = std::bit_width(n);
  const std::size_t strict = n / 2 + 1;
  const bool check_tie = (n % 2 == 0) && tie_to_one;

  __m512i counter[64];
  for (std::size_t w = 0; w < words; w += 8) {
    const std::size_t tail = words - w;
    const __mmask8 mask =
        tail >= 8 ? static_cast<__mmask8>(0xffu)
                  : static_cast<__mmask8>((1u << tail) - 1u);
    for (int p = 0; p < planes; ++p) counter[p] = _mm512_setzero_si512();
    for (std::size_t r = 0; r < n; ++r) {
      __m512i carry = _mm512_maskz_loadu_epi64(mask, rows[r] + w);
      for (int p = 0; p < planes; ++p) {
        if (_mm512_test_epi64_mask(carry, carry) == 0) break;
        const __m512i next = _mm512_and_si512(counter[p], carry);
        counter[p] = _mm512_xor_si512(counter[p], carry);
        carry = next;
      }
    }
    const auto mask_ge = [&](std::size_t t) noexcept {
      const std::uint64_t constant = (1ULL << planes) - t;
      __m512i carry = _mm512_setzero_si512();
      for (int p = 0; p < planes; ++p) {
        const __m512i a = counter[p];
        const __m512i b = ((constant >> p) & 1ULL)
                              ? _mm512_set1_epi64(-1)
                              : _mm512_setzero_si512();
        // carry' = (a & b) | (carry & (a ^ b)) == MAJ(a, b, carry): one
        // ternary-logic op (imm 0xE8 = majority truth table).
        carry = _mm512_ternarylogic_epi64(a, b, carry, 0xE8);
      }
      return carry;
    };
    __m512i bits = mask_ge(strict);
    if (check_tie) bits = _mm512_or_si512(bits, mask_ge(n / 2));
    _mm512_mask_storeu_epi64(out + w, mask, bits);
  }
}

}  // namespace

const Kernels& avx512_kernels() noexcept {
  static const Kernels table{hamming_avx512, popcount_avx512,
                             and_popcount_avx512, andnot_popcount_avx512,
                             majority_avx512};
  return table;
}

}  // namespace hdc::simd::detail
