// AVX-512 kernel tier. Compiled with -mavx512f -mavx512vpopcntdq; entered
// only through the dispatch table after a runtime CPU check.
//
// VPOPCNTDQ gives a hardware per-lane popcount, so Hamming/popcount are a
// straight XOR + VPOPCNTQ + ADD stream; ragged tails use masked loads
// (zero-filled lanes contribute nothing) so no scalar epilogue is needed.
// Majority is the bit-sliced ripple-carry counter scheme, 512 columns per
// step, with the carry chain of the threshold test fused into single
// VPTERNLOG majority ops.
#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace hdc::simd::detail {

namespace {

std::size_t hamming_avx512(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  const std::size_t tail = words - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(mask, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(mask, b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

std::size_t popcount_avx512(const std::uint64_t* words, std::size_t n) noexcept {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_loadu_si512(words + i)));
  }
  const std::size_t tail = n - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    total = _mm512_add_epi64(
        total, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(mask, words + i)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

std::size_t and_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) noexcept {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  const std::size_t tail = words - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(mask, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(mask, b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

std::size_t andnot_popcount_avx512(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t words) noexcept {
  // VPANDN is ~first & second; masked-out tail lanes of b are zero, so the
  // ~a side never leaks set bits past the ragged end.
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_andnot_si512(va, vb)));
  }
  const std::size_t tail = words - i;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(mask, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(mask, b + i);
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_andnot_si512(va, vb)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(total));
}

void majority_avx512(const std::uint64_t* const* rows, std::size_t n,
                     std::size_t words, std::uint64_t* out,
                     bool tie_to_one) noexcept {
  const int planes = std::bit_width(n);
  const std::size_t strict = n / 2 + 1;
  const bool check_tie = (n % 2 == 0) && tie_to_one;

  __m512i counter[64];
  for (std::size_t w = 0; w < words; w += 8) {
    const std::size_t tail = words - w;
    const __mmask8 mask =
        tail >= 8 ? static_cast<__mmask8>(0xffu)
                  : static_cast<__mmask8>((1u << tail) - 1u);
    for (int p = 0; p < planes; ++p) counter[p] = _mm512_setzero_si512();
    for (std::size_t r = 0; r < n; ++r) {
      __m512i carry = _mm512_maskz_loadu_epi64(mask, rows[r] + w);
      for (int p = 0; p < planes; ++p) {
        if (_mm512_test_epi64_mask(carry, carry) == 0) break;
        const __m512i next = _mm512_and_si512(counter[p], carry);
        counter[p] = _mm512_xor_si512(counter[p], carry);
        carry = next;
      }
    }
    const auto mask_ge = [&](std::size_t t) noexcept {
      const std::uint64_t constant = (1ULL << planes) - t;
      __m512i carry = _mm512_setzero_si512();
      for (int p = 0; p < planes; ++p) {
        const __m512i a = counter[p];
        const __m512i b = ((constant >> p) & 1ULL)
                              ? _mm512_set1_epi64(-1)
                              : _mm512_setzero_si512();
        // carry' = (a & b) | (carry & (a ^ b)) == MAJ(a, b, carry): one
        // ternary-logic op (imm 0xE8 = majority truth table).
        carry = _mm512_ternarylogic_epi64(a, b, carry, 0xE8);
      }
      return carry;
    };
    __m512i bits = mask_ge(strict);
    if (check_tie) bits = _mm512_or_si512(bits, mask_ge(n / 2));
    _mm512_mask_storeu_epi64(out + w, mask, bits);
  }
}

/// words == 4 fast path (the 256-bit ANN sketch default): 8 rows per
/// iteration in four 512-bit vectors (two rows each), with the per-row
/// horizontal sums done entirely in-register — two permutex2var transpose
/// rounds reduce 32 lane counts to one vector of 8 row distances, stored
/// with a single 8x32 truncating store. No scalar work inside the loop.
void sketch_scan4_avx512(const std::uint64_t* query, const std::uint64_t* block,
                         std::size_t n, std::uint32_t* out) noexcept {
  // maskz forms (full masks) sidestep GCC's -Wuninitialized noise from the
  // _mm512_undefined-based plain intrinsics; codegen is identical.
  const __m512i vq = _mm512_maskz_broadcast_i64x4(
      static_cast<__mmask8>(0xffu),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query)));
  const __m512i even = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t* p = block + i * 4;
    const __m512i v0 =
        _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(p), vq));
    const __m512i v1 =
        _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(p + 8), vq));
    const __m512i v2 =
        _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(p + 16), vq));
    const __m512i v3 =
        _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(p + 24), vq));
    // Lane pairs -> half-row sums for rows 0-3 (c) and 4-7 (d), then the
    // same shuffle once more pairs the halves into whole-row sums.
    const __m512i c = _mm512_add_epi64(_mm512_permutex2var_epi64(v0, even, v1),
                                       _mm512_permutex2var_epi64(v0, odd, v1));
    const __m512i d = _mm512_add_epi64(_mm512_permutex2var_epi64(v2, even, v3),
                                       _mm512_permutex2var_epi64(v2, odd, v3));
    const __m512i sums = _mm512_add_epi64(_mm512_permutex2var_epi64(c, even, d),
                                          _mm512_permutex2var_epi64(c, odd, d));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm512_maskz_cvtepi64_epi32(static_cast<__mmask8>(0xffu), sums));
  }
  alignas(64) std::uint64_t lanes[8];
  while (i < n) {
    const std::size_t group = std::min<std::size_t>(2, n - i);
    const __mmask8 mask = static_cast<__mmask8>((1u << (group * 4)) - 1u);
    const __m512i v = _mm512_maskz_loadu_epi64(mask, block + i * 4);
    _mm512_store_si512(lanes, _mm512_popcnt_epi64(_mm512_xor_si512(v, vq)));
    for (std::size_t r = 0; r < group; ++r) {
      out[i + r] = static_cast<std::uint32_t>(lanes[r * 4] + lanes[r * 4 + 1] +
                                              lanes[r * 4 + 2] +
                                              lanes[r * 4 + 3]);
    }
    i += group;
  }
}

void sketch_scan_avx512(const std::uint64_t* query, const std::uint64_t* block,
                        std::size_t n, std::size_t words,
                        std::uint32_t* out) noexcept {
  if (words == 4) {
    sketch_scan4_avx512(query, block, n, out);
    return;
  }
  if (words <= 8) {
    // Pack floor(8 / words) whole rows per 512-bit load against a query
    // replicated to match: one XOR + VPOPCNTQ covers every packed row, and
    // the per-row distances are short scalar sums over the stored lane
    // counts. The 4-word ANN sketch default fits two rows per load.
    const std::size_t rows_per_vec = 8 / words;
    std::uint64_t qrep[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t r = 0; r < rows_per_vec; ++r) {
      for (std::size_t w = 0; w < words; ++w) qrep[r * words + w] = query[w];
    }
    const __m512i vq = _mm512_loadu_si512(qrep);
    std::size_t i = 0;
    alignas(64) std::uint64_t lanes[8];
    while (i < n) {
      const std::size_t group = std::min(rows_per_vec, n - i);
      const std::size_t used = group * words;
      const __mmask8 mask = static_cast<__mmask8>((1u << used) - 1u);
      const __m512i v = _mm512_maskz_loadu_epi64(mask, block + i * words);
      _mm512_store_si512(lanes, _mm512_popcnt_epi64(_mm512_xor_si512(v, vq)));
      for (std::size_t r = 0; r < group; ++r) {
        std::uint64_t d = 0;
        for (std::size_t w = 0; w < words; ++w) d += lanes[r * words + w];
        out[i + r] = static_cast<std::uint32_t>(d);
      }
      i += group;
    }
    return;
  }
  const std::size_t tail = words % 8;
  const __mmask8 tail_mask = static_cast<__mmask8>((1u << tail) - 1u);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* row = block + i * words;
    __m512i total = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i vq = _mm512_loadu_si512(query + w);
      const __m512i vr = _mm512_loadu_si512(row + w);
      total = _mm512_add_epi64(total,
                               _mm512_popcnt_epi64(_mm512_xor_si512(vq, vr)));
    }
    if (tail != 0) {
      const __m512i vq = _mm512_maskz_loadu_epi64(tail_mask, query + w);
      const __m512i vr = _mm512_maskz_loadu_epi64(tail_mask, row + w);
      total = _mm512_add_epi64(total,
                               _mm512_popcnt_epi64(_mm512_xor_si512(vq, vr)));
    }
    out[i] = static_cast<std::uint32_t>(_mm512_reduce_add_epi64(total));
  }
}

}  // namespace

const Kernels& avx512_kernels() noexcept {
  static const Kernels table{hamming_avx512, popcount_avx512,
                             and_popcount_avx512, andnot_popcount_avx512,
                             majority_avx512, sketch_scan_avx512};
  return table;
}

}  // namespace hdc::simd::detail
