// Runtime-dispatched SIMD kernel layer for the bit-level hot loops.
//
// The paper's pitch is that binary HDC reduces classification to XOR,
// popcount, and majority voting — operations a CPU executes word-parallel.
// This module takes that one step further: the three batch kernels behind
// every hot path (Hamming reduction, bulk popcount, word-parallel majority
// bundling) live in per-tier translation units compiled with the matching
// ISA flags, and a process-wide dispatch table picks the best tier the CPU
// supports at runtime:
//
//   * kScalar — portable std::popcount loops (always compiled, the
//     bit-exactness reference for every other tier);
//   * kAvx2   — 256-bit Harley–Seal carry-save popcount (nibble-LUT +
//     PSADBW digit counting) and a bit-sliced AVX2 majority;
//   * kAvx512 — VPOPCNTDQ hardware popcount with masked tail loads and a
//     ternary-logic bit-sliced majority.
//
// Every tier is bit-exact with kScalar (property-tested across widths that
// are not a multiple of any vector register), so dispatch never affects
// results — only throughput. Selection order and overrides:
//
//   1. `HDC_SIMD=scalar|avx2|avx512` environment variable (read once at
//      first use; unsupported or unknown values log a warning and fall back
//      to auto-detection);
//   2. `set_tier()` — programmatic override for tests and benches;
//   3. auto-detection: the highest tier that is both compiled into the
//      binary (see HDC_DISABLE_SIMD in CMake) and supported by the CPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace hdc::simd {

/// Kernel implementations, from portable baseline to widest vector ISA.
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Batch kernel table. All function pointers are always non-null and all
/// tiers produce bit-identical results; only throughput differs.
struct Kernels {
  /// Hamming distance: popcount(a XOR b) over `words` 64-bit words.
  std::size_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept;

  /// Bulk popcount over `words` 64-bit words.
  std::size_t (*popcount)(const std::uint64_t* words, std::size_t n) noexcept;

  /// Intersection popcount: popcount(a AND b) over `words` 64-bit words.
  /// The node-mask × column-bitplane reduction behind the packed ML path.
  std::size_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) noexcept;

  /// Masked-complement popcount: popcount(NOT a AND b) over `words` words —
  /// counts rows of `b` whose column bit in `a` is clear, so one column
  /// plane serves both sides of a binary split without a negated copy.
  std::size_t (*andnot_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words) noexcept;

  /// Word-parallel majority vote across `n` rows of `words` words each:
  /// out bit = 1 where the column's ones-count is > n/2, plus (when `n` is
  /// even and `tie_to_one`) where it equals exactly n/2. Rows may alias out
  /// only if out is not written before the row is fully consumed — callers
  /// must pass a distinct output buffer.
  void (*majority)(const std::uint64_t* const* rows, std::size_t n,
                   std::size_t words, std::uint64_t* out,
                   bool tie_to_one) noexcept;

  /// Block Hamming scan: out[i] = popcount(query XOR block[i*words ..]) for
  /// `n` contiguous rows of `words` words each (`words >= 1`). The batched
  /// form of calling `hamming` per row — the query words load once and
  /// several short rows share each vector pass, which is where the ANN
  /// sketch filter (4-word rows) earns its throughput. Distances fit u32
  /// because rows are at most 1024 bits in every caller.
  void (*sketch_scan)(const std::uint64_t* query, const std::uint64_t* block,
                      std::size_t n, std::size_t words,
                      std::uint32_t* out) noexcept;
};

/// Lower-case tier name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// Inverse of tier_name(); nullopt on anything else.
[[nodiscard]] std::optional<Tier> parse_tier(std::string_view name) noexcept;

/// True when the tier's translation unit is compiled into this binary.
/// kScalar is always compiled; SIMD tiers depend on compiler support and
/// the HDC_DISABLE_SIMD build option.
[[nodiscard]] bool tier_compiled(Tier tier) noexcept;

/// True when the tier is compiled AND the running CPU supports its ISA.
[[nodiscard]] bool tier_supported(Tier tier) noexcept;

/// All supported tiers in ascending order (always starts with kScalar).
[[nodiscard]] std::vector<Tier> supported_tiers();

/// Kernel table for a specific tier. Throws std::invalid_argument when the
/// tier is not supported on this machine/binary.
[[nodiscard]] const Kernels& kernels(Tier tier);

/// The currently selected tier / kernel table. Initialised on first use
/// from HDC_SIMD (if set and supported) or auto-detection.
[[nodiscard]] Tier active_tier() noexcept;
[[nodiscard]] const Kernels& active() noexcept;

/// Force a tier for this process (tests, benches, reproducibility
/// debugging). Throws std::invalid_argument when unsupported. Not intended
/// to race with in-flight kernels: callers switch tiers between runs.
void set_tier(Tier tier);

/// Drop any set_tier()/HDC_SIMD override and return to auto-detection.
void reset_tier() noexcept;

}  // namespace hdc::simd
