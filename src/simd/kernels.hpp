// Internal: per-tier kernel table accessors, linked by simd/dispatch.cpp.
//
// Each tier lives in its own translation unit compiled with the matching
// ISA flags (see src/CMakeLists.txt); the HDC_SIMD_COMPILED_* macros are
// defined by the build only when that TU is part of the library, so
// dispatch.cpp can reference exactly the tables that exist.
#pragma once

#include "simd/dispatch.hpp"

namespace hdc::simd::detail {

const Kernels& scalar_kernels() noexcept;

#if defined(HDC_SIMD_COMPILED_AVX2)
const Kernels& avx2_kernels() noexcept;
#endif

#if defined(HDC_SIMD_COMPILED_AVX512)
const Kernels& avx512_kernels() noexcept;
#endif

}  // namespace hdc::simd::detail
