// Item memory: a deterministic store of quasi-orthogonal random hypervectors
// keyed by symbol. Two distinct symbols map to independent random vectors
// (expected normalised Hamming distance 0.5).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "hv/bitvector.hpp"

namespace hdc::hv {

class ItemMemory {
 public:
  /// All vectors have `bits` dimensions; contents depend only on (seed, key).
  ItemMemory(std::size_t bits, std::uint64_t seed)
      : bits_(bits), seed_(seed) {}

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }

  /// Vector for `key`, created deterministically on first use.
  const BitVector& get(const std::string& key);

  /// Number of stored items.
  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

  /// Nearest stored key by Hamming distance; empty string if memory is empty.
  [[nodiscard]] std::string nearest(const BitVector& query) const;

 private:
  std::size_t bits_;
  std::uint64_t seed_;
  std::unordered_map<std::string, BitVector> store_;
};

}  // namespace hdc::hv
