#include "hv/bitvector.hpp"

#include <bit>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace hdc::hv {

void BitVector::check_same_size(const BitVector& other) const {
  if (bits_ != other.bits_) {
    throw std::invalid_argument("BitVector: dimensionality mismatch (" +
                                std::to_string(bits_) + " vs " +
                                std::to_string(other.bits_) + ")");
  }
}

void BitVector::clear_padding() noexcept {
  const std::size_t tail = bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1ULL;
  }
}

std::size_t BitVector::popcount() const noexcept {
  return simd::active().popcount(words_.data(), words_.size());
}

std::size_t BitVector::hamming(const BitVector& other) const {
  check_same_size(other);
  return simd::active().hamming(words_.data(), other.words_.data(), words_.size());
}

BitVector& BitVector::operator^=(const BitVector& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

void BitVector::invert() noexcept {
  for (std::uint64_t& w : words_) w = ~w;
  clear_padding();
}

BitVector BitVector::rotated(std::size_t k) const {
  BitVector out(bits_);
  if (bits_ == 0) return out;
  k %= bits_;
  // Bitwise implementation; permutation is not on any hot path.
  for (std::size_t i = 0; i < bits_; ++i) {
    if (get(i)) out.set((i + k) % bits_, true);
  }
  return out;
}

BitVector BitVector::random(std::size_t bits, util::Rng& rng) {
  BitVector out(bits);
  for (std::uint64_t& w : out.words_) w = rng();
  out.clear_padding();
  return out;
}

BitVector BitVector::random_with_ones(std::size_t bits, std::size_t ones,
                                      util::Rng& rng) {
  if (ones > bits) throw std::invalid_argument("BitVector: ones > bits");
  BitVector out(bits);
  // Floyd's algorithm would need a set; with ones ~ bits/2 a partial
  // Fisher-Yates over indices is simpler and still O(bits).
  const std::vector<std::size_t> idx = rng.sample_without_replacement(bits, ones);
  for (const std::size_t i : idx) out.set(i, true);
  return out;
}

BitVector BitVector::random_balanced(std::size_t bits, util::Rng& rng) {
  if (bits % 2 != 0) throw std::invalid_argument("BitVector: odd size for balanced seed");
  return random_with_ones(bits, bits / 2, rng);
}

BitVector BitVector::with_flipped(std::size_t flip_zeros, std::size_t flip_ones,
                                  util::Rng& rng) const {
  const std::size_t zeros = bits_ - popcount();
  const std::size_t ones = popcount();
  if (flip_zeros > zeros || flip_ones > ones) {
    throw std::invalid_argument("BitVector: not enough bits to flip");
  }
  // Collect positions of zeros and ones, then choose subsets to flip.
  std::vector<std::size_t> zero_pos;
  std::vector<std::size_t> one_pos;
  zero_pos.reserve(zeros);
  one_pos.reserve(ones);
  for (std::size_t i = 0; i < bits_; ++i) {
    (get(i) ? one_pos : zero_pos).push_back(i);
  }
  BitVector out = *this;
  for (const std::size_t j : rng.sample_without_replacement(zero_pos.size(), flip_zeros)) {
    out.set(zero_pos[j], true);
  }
  for (const std::size_t j : rng.sample_without_replacement(one_pos.size(), flip_ones)) {
    out.set(one_pos[j], false);
  }
  return out;
}

std::string BitVector::to_string(std::size_t limit) const {
  const std::size_t n = std::min(limit, bits_);
  std::string s;
  s.reserve(n + 3);
  for (std::size_t i = 0; i < n; ++i) s.push_back(get(i) ? '1' : '0');
  if (n < bits_) s += "...";
  return s;
}

std::vector<double> BitVector::to_doubles() const {
  std::vector<double> out(bits_);
  for (std::size_t i = 0; i < bits_; ++i) out[i] = get(i) ? 1.0 : 0.0;
  return out;
}

}  // namespace hdc::hv
