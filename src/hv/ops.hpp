// HDC vector-space operations: bundling (majority vote), binding, similarity.
#pragma once

#include <span>
#include <vector>

#include "hv/bitvector.hpp"
#include "util/rng.hpp"

namespace hdc::hv {

/// How bitwise majority voting resolves ties (even number of inputs with an
/// equal count of ones and zeros at a bit position).
enum class TiePolicy {
  kOne,     // paper's rule: ties become 1
  kZero,    // ties become 0
  kRandom,  // each tie resolved with an unbiased coin (needs an Rng)
};

/// Bitwise majority vote across vectors ("bundling"). All inputs must share
/// one dimensionality; at least one input is required.
///
/// This is the paper's patient-encoding step: the per-feature hypervectors of
/// one subject are combined into a single patient hypervector.
[[nodiscard]] BitVector majority(std::span<const BitVector> inputs,
                                 TiePolicy tie = TiePolicy::kOne,
                                 util::Rng* rng = nullptr);

/// Pointer form of majority(): inputs are non-null BitVector pointers. Used
/// by the encoding hot path, where per-feature vectors may live in a memo
/// cache rather than a contiguous array. Identical results.
[[nodiscard]] BitVector majority(std::span<const BitVector* const> inputs,
                                 TiePolicy tie = TiePolicy::kOne,
                                 util::Rng* rng = nullptr);

/// Weighted majority: input i contributes `weights[i]` votes. Weights must be
/// positive. Used by the ablation benches to emphasise feature subsets.
[[nodiscard]] BitVector weighted_majority(std::span<const BitVector> inputs,
                                          std::span<const double> weights,
                                          TiePolicy tie = TiePolicy::kOne,
                                          util::Rng* rng = nullptr);

/// XOR binding of two vectors (role-filler binding). Self-inverse.
[[nodiscard]] BitVector bind(const BitVector& a, const BitVector& b);

/// Cosine-style similarity for binary vectors: 1 - 2*hamming/d, in [-1, 1].
/// 1 means identical, 0 means orthogonal, -1 means complement.
[[nodiscard]] double similarity(const BitVector& a, const BitVector& b);

/// Sum per-bit counts of ones across vectors (the accumulator form of
/// bundling, useful for class prototypes built incrementally).
class BitAccumulator {
 public:
  explicit BitAccumulator(std::size_t bits) : counts_(bits, 0), total_(0) {}

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  void add(const BitVector& v);
  /// Remove a previously added vector (for leave-one-out prototypes).
  void remove(const BitVector& v);

  /// Threshold the counts at total/2 into a binary vector.
  [[nodiscard]] BitVector to_majority(TiePolicy tie = TiePolicy::kOne,
                                      util::Rng* rng = nullptr) const;

 private:
  std::vector<std::uint32_t> counts_;
  std::size_t total_;
};

}  // namespace hdc::hv
