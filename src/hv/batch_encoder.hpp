// Parallel whole-dataset encoding through a RecordEncoder.
//
// Rows are independent, so the batch is partitioned into contiguous chunks
// across the thread pool; each chunk reuses one RecordEncoder::Scratch (no
// per-row allocation of the feature-vector block). Every row's output depends
// only on that row and the (const) encoders, so results are bit-identical for
// any thread count — the determinism contract the golden tests pin down.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "hv/bit_matrix.hpp"
#include "hv/encoders.hpp"
#include "hv/search.hpp"
#include "hv/sharded_bits.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::hv {

struct BatchEncodeOptions {
  /// Worker pool (nullptr = process-wide pool). Never affects results.
  parallel::ThreadPool* pool = nullptr;
};

class BatchEncoder {
 public:
  /// Supplies the i-th row. Called once per row, possibly from worker
  /// threads (must be safe for concurrent calls with distinct rows);
  /// `scratch` is a per-thread buffer the callback may use to assemble a
  /// derived row (e.g. missing-value substitution) and return a span over.
  using RowFn =
      std::function<std::span<const double>(std::size_t row, std::vector<double>& scratch)>;

  /// The encoder must outlive the BatchEncoder.
  explicit BatchEncoder(const RecordEncoder& encoder, BatchEncodeOptions options = {})
      : encoder_(&encoder), options_(options) {}

  [[nodiscard]] std::size_t bits() const noexcept { return encoder_->bits(); }

  /// Encode `n_rows` rows fetched through `row_of`.
  [[nodiscard]] std::vector<BitVector> encode_rows(std::size_t n_rows,
                                                   const RowFn& row_of) const;

  /// Encode a row-major flat matrix (`values.size() == n_rows * n_cols`).
  [[nodiscard]] std::vector<BitVector> encode_matrix(std::span<const double> values,
                                                     std::size_t n_cols) const;

  /// As encode_rows, but packs straight into a PackedHVs for the search
  /// kernels (one contiguous buffer, no intermediate vector array).
  [[nodiscard]] PackedHVs encode_packed(std::size_t n_rows, const RowFn& row_of) const;

  /// Encode straight into a columnar BitMatrix for the packed ML path: the
  /// packed rows from encode_packed are transposed into bitplanes without
  /// ever materialising a double design matrix.
  [[nodiscard]] BitMatrix encode_bits(std::size_t n_rows, const RowFn& row_of) const;

  /// As encode_bits, but emits one BitMatrix block per `shard_rows`-sized
  /// contiguous row range (shorter tail allowed; shard_rows == 0 = one
  /// shard). Row i is encoded identically regardless of which shard it
  /// lands in, so any chunking yields a byte-identical ShardedBitMatrix
  /// fingerprint — only peak residency changes.
  [[nodiscard]] ShardedBitMatrix encode_bits_chunked(std::size_t n_rows,
                                                     std::size_t shard_rows,
                                                     const RowFn& row_of) const;

 private:
  const RecordEncoder* encoder_;
  BatchEncodeOptions options_;
};

}  // namespace hdc::hv
