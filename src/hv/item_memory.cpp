#include "hv/item_memory.hpp"

#include <limits>

namespace hdc::hv {

namespace {
std::uint64_t hash_key(const std::string& key) noexcept {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

const BitVector& ItemMemory::get(const std::string& key) {
  const auto it = store_.find(key);
  if (it != store_.end()) return it->second;
  util::Rng rng(util::mix_seed(seed_, hash_key(key)));
  return store_.emplace(key, BitVector::random(bits_, rng)).first->second;
}

std::string ItemMemory::nearest(const BitVector& query) const {
  std::string best;
  std::size_t best_dist = std::numeric_limits<std::size_t>::max();
  for (const auto& [key, vec] : store_) {
    const std::size_t d = query.hamming(vec);
    if (d < best_dist) {
      best_dist = d;
      best = key;
    }
  }
  return best;
}

}  // namespace hdc::hv
