#include "hv/sequence.hpp"

#include <stdexcept>

namespace hdc::hv {

BitVector encode_sequence(std::span<const BitVector> window) {
  if (window.empty()) throw std::invalid_argument("encode_sequence: empty window");
  const std::size_t d = window.front().size();
  for (const BitVector& v : window) {
    if (v.size() != d) {
      throw std::invalid_argument("encode_sequence: dimensionality mismatch");
    }
  }
  // rho^(n-1)(v1) ^ ... ^ rho(v_{n-1}) ^ v_n.
  BitVector out = window.back();
  for (std::size_t i = 0; i + 1 < window.size(); ++i) {
    out ^= window[i].rotated(window.size() - 1 - i);
  }
  return out;
}

NGramEncoder::NGramEncoder(std::size_t n, TiePolicy tie) : n_(n), tie_(tie) {
  if (n == 0) throw std::invalid_argument("NGramEncoder: n must be >= 1");
  if (tie == TiePolicy::kRandom) {
    throw std::invalid_argument("NGramEncoder: random tie policy is not deterministic");
  }
}

BitVector NGramEncoder::encode(std::span<const BitVector> stream) const {
  if (stream.size() < n_) {
    throw std::invalid_argument("NGramEncoder: stream shorter than n");
  }
  std::vector<BitVector> grams;
  grams.reserve(stream.size() - n_ + 1);
  for (std::size_t start = 0; start + n_ <= stream.size(); ++start) {
    grams.push_back(encode_sequence(stream.subspan(start, n_)));
  }
  return majority(grams, tie_);
}

}  // namespace hdc::hv
