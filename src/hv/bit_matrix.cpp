#include "hv/bit_matrix.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "simd/dispatch.hpp"

namespace hdc::hv {

RowMask RowMask::all(std::size_t rows) {
  RowMask mask = none(rows);
  const std::size_t full = rows / 64;
  for (std::size_t w = 0; w < full; ++w) mask.words_[w] = ~0ULL;
  if (rows % 64 != 0) mask.words_[full] = (1ULL << (rows % 64)) - 1ULL;
  return mask;
}

RowMask RowMask::none(std::size_t rows) {
  RowMask mask;
  mask.rows_ = rows;
  mask.words_.assign((rows + 63) / 64, 0ULL);
  return mask;
}

std::size_t RowMask::count() const noexcept {
  return simd::active().popcount(words_.data(), words_.size());
}

BitMatrix BitMatrix::from_rows(PackedHVs rows) {
  BitMatrix m;
  m.rows_ = rows.rows();
  m.cols_ = rows.bits();
  m.wpc_ = (m.rows_ + 63) / 64;
  m.planes_.assign(m.cols_ * m.wpc_, 0ULL);
  const std::size_t wpr = rows.words_per_row();
  for (std::size_t i = 0; i < m.rows_; ++i) {
    const std::uint64_t* row = rows.row(i);
    const std::uint64_t row_bit = 1ULL << (i & 63);
    const std::size_t row_word = i >> 6;
    for (std::size_t w = 0; w < wpr; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const std::size_t j = w * 64 +
                              static_cast<std::size_t>(std::countr_zero(bits));
        m.planes_[j * m.wpc_ + row_word] |= row_bit;
        bits &= bits - 1;
      }
    }
  }
  m.row_major_ = std::move(rows);
  m.valid_ = RowMask::all(m.rows_);
  return m;
}

std::size_t BitMatrix::column_popcount(std::size_t j) const noexcept {
  return simd::active().popcount(column(j), wpc_);
}

void BitMatrix::unpack_row(std::size_t i, std::span<double> out) const {
  if (out.size() != cols_) {
    throw std::invalid_argument("BitMatrix::unpack_row: output size mismatch");
  }
  const std::uint64_t* row = row_major_.row(i);
  for (std::size_t j = 0; j < cols_; ++j) {
    out[j] = static_cast<double>((row[j >> 6] >> (j & 63)) & 1ULL);
  }
}

std::vector<double> BitMatrix::row_doubles(std::size_t i) const {
  std::vector<double> out(cols_);
  unpack_row(i, out);
  return out;
}

BitMatrix BitMatrix::subset(std::span<const std::size_t> indices) const {
  PackedHVs sub(cols_, indices.size());
  const std::size_t wpr = row_major_.words_per_row();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= rows_) {
      throw std::out_of_range("BitMatrix::subset: row index out of range");
    }
    std::memcpy(sub.row(k), row_major_.row(indices[k]),
                wpr * sizeof(std::uint64_t));
  }
  return from_rows(std::move(sub));
}

}  // namespace hdc::hv
