// Feature-to-hypervector encoders, implementing Section II-B of the paper.
//
// * LevelEncoder — the paper's "linear encoding" for continuous features:
//   a random balanced seed represents min(V); a value t is encoded by
//   flipping x = k*(t-min) / (2*(max-min)) bits of the seed, half of them
//   0->1 and half 1->0, so that max(V) lands exactly orthogonal to min(V)
//   (normalised distance 0.5) and distance grows linearly in |t1 - t2|.
// * BinaryEncoder — for yes/no features: a random seed represents 0 and a
//   vector orthogonal to it (k/2 bits flipped, balanced) represents 1.
// * CategoricalEncoder — one independent random vector per category.
// * RecordEncoder — bundles one row's feature vectors with bitwise majority
//   voting (ties -> 1 by default), producing the "patient hypervector".
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hv/bitvector.hpp"
#include "hv/ops.hpp"
#include "util/rng.hpp"

namespace hdc::hv {

/// Interface for encoding one scalar feature value into a hypervector.
class FeatureEncoder {
 public:
  virtual ~FeatureEncoder() = default;

  /// Dimensionality of produced vectors.
  [[nodiscard]] virtual std::size_t bits() const noexcept = 0;

  /// Encode a single value. Implementations must be deterministic.
  [[nodiscard]] virtual BitVector encode(double value) const = 0;

  /// Encode into an existing vector, reusing its storage when possible (the
  /// batch-encoding hot path). Semantically identical to `out = encode(v)`.
  virtual void encode_into(double value, BitVector& out) const { out = encode(value); }

  /// Quantisation key for memoisation: two values with the same key encode
  /// to the same hypervector, and the number of distinct keys is small
  /// enough to cache (e.g. the LevelEncoder's flip count, which is
  /// quantised to even integers — at most bits/4 + 1 distinct vectors).
  /// nullopt disables caching for this encoder.
  [[nodiscard]] virtual std::optional<std::uint64_t> memo_key(double value) const {
    (void)value;
    return std::nullopt;
  }
};

/// The paper's linear (level) encoding for continuous features.
///
/// The flip schedule is *nested*: the bits flipped for a smaller value are a
/// subset of those flipped for a larger value, which is what makes the
/// distance between two encodings exactly proportional to the difference of
/// the values: hamming(enc(t1), enc(t2)) = |x(t1) - x(t2)|.
class LevelEncoder final : public FeatureEncoder {
 public:
  /// `bits` must be even. [lo, hi] is the value range seen in training
  /// (min(V), max(V)); values outside are clamped (the paper maps anything
  /// <= min(V) to the seed vector).
  LevelEncoder(std::size_t bits, double lo, double hi, std::uint64_t seed);

  [[nodiscard]] std::size_t bits() const noexcept override { return seed_vector_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Number of bits that encode(value) differs from the seed vector.
  [[nodiscard]] std::size_t flip_count(double value) const noexcept;

  [[nodiscard]] BitVector encode(double value) const override;
  void encode_into(double value, BitVector& out) const override;

  /// The flip count is the quantised level index: equal counts mean equal
  /// encodings, and there are at most bits/4 + 1 distinct values.
  [[nodiscard]] std::optional<std::uint64_t> memo_key(double value) const override {
    return flip_count(value);
  }

  /// The hypervector representing min(V).
  [[nodiscard]] const BitVector& seed_vector() const noexcept { return seed_vector_; }

 private:
  /// Steps covered by one precomputed cumulative flip mask: encode(t) is
  /// seed XOR checkpoint[half/stride], then at most stride-1 residual
  /// two-bit flips instead of one set() per flipped bit.
  static constexpr std::size_t kCheckpointStride = 64;

  double lo_;
  double hi_;
  BitVector seed_vector_;
  // Fixed random orderings of the seed's zero- and one-positions; encode(t)
  // flips prefixes of these lists.
  std::vector<std::uint32_t> zero_order_;
  std::vector<std::uint32_t> one_order_;
  // Cumulative word-level flip masks for prefixes of length c*stride,
  // stored back-to-back (words_per_mask_ words each; see encode_into).
  std::vector<std::uint64_t> checkpoint_masks_;
  std::size_t words_per_mask_ = 0;
};

/// Binary (yes/no) features: value 0 -> seed, value 1 -> orthogonal vector.
/// Any value >= 0.5 is treated as 1.
class BinaryEncoder final : public FeatureEncoder {
 public:
  BinaryEncoder(std::size_t bits, std::uint64_t seed);

  [[nodiscard]] std::size_t bits() const noexcept override { return zero_.size(); }
  [[nodiscard]] BitVector encode(double value) const override;
  void encode_into(double value, BitVector& out) const override {
    out = value >= 0.5 ? one_ : zero_;
  }
  [[nodiscard]] std::optional<std::uint64_t> memo_key(double value) const override {
    return value >= 0.5 ? 1 : 0;
  }

  [[nodiscard]] const BitVector& zero_vector() const noexcept { return zero_; }
  [[nodiscard]] const BitVector& one_vector() const noexcept { return one_; }

 private:
  BitVector zero_;
  BitVector one_;
};

/// Unordered categorical features: each distinct integer category gets an
/// independent random vector. Values are rounded to nearest integer.
///
/// Vectors are generated once per category and memoised in a small item
/// memory (category -> hypervector); contents still depend only on
/// (seed, category), so outputs are bit-identical to regenerating.
class CategoricalEncoder final : public FeatureEncoder {
 public:
  CategoricalEncoder(std::size_t bits, std::uint64_t seed);

  [[nodiscard]] std::size_t bits() const noexcept override { return bits_; }
  [[nodiscard]] BitVector encode(double value) const override;
  void encode_into(double value, BitVector& out) const override;
  [[nodiscard]] std::optional<std::uint64_t> memo_key(double value) const override;

  /// Number of memoised categories (for tests).
  [[nodiscard]] std::size_t item_memory_size() const;

 private:
  /// Vector for a category, generated and cached on first use. The returned
  /// reference stays valid for the encoder's lifetime (node-based map).
  const BitVector& item(long long category) const;

  std::size_t bits_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;  // encode() is called from batch worker threads
  mutable std::unordered_map<long long, BitVector> item_memory_;
};

/// Declared feature kinds used when building a RecordEncoder from a dataset.
enum class FeatureKind { kLinear, kBinary, kCategorical };

/// Encodes a full record (one patient) by bundling its per-feature vectors
/// with bitwise majority voting.
class RecordEncoder {
 public:
  RecordEncoder(std::size_t bits, TiePolicy tie = TiePolicy::kOne)
      : bits_(bits), tie_(tie) {}

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t feature_count() const noexcept { return encoders_.size(); }

  /// Append a feature encoder; encoders are applied positionally to rows.
  void add_feature(std::unique_ptr<FeatureEncoder> encoder);

  /// Reusable per-thread buffers for the batch-encoding hot path. The memo
  /// caches quantised per-feature vectors (keyed by FeatureEncoder::
  /// memo_key), so repeated values skip re-encoding entirely; being
  /// per-scratch keeps the hot path lock-free and thread-safe.
  struct Scratch {
    std::vector<BitVector> features;
    std::vector<std::unordered_map<std::uint64_t, BitVector>> memo;
    std::vector<const BitVector*> feature_ptrs;
  };

  /// Encode one row (size must equal feature_count()).
  [[nodiscard]] BitVector encode(std::span<const double> row) const;

  /// Encode one row reusing `scratch` across calls (no per-row allocation of
  /// the feature-vector block). Identical output to encode(row).
  [[nodiscard]] BitVector encode(std::span<const double> row, Scratch& scratch) const;

  /// Per-feature encoder access (for introspection / tests).
  [[nodiscard]] const FeatureEncoder& feature(std::size_t i) const {
    return *encoders_.at(i);
  }

 private:
  std::size_t bits_;
  TiePolicy tie_;
  std::vector<std::unique_ptr<FeatureEncoder>> encoders_;
};

}  // namespace hdc::hv
