#include "hv/search.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/timer.hpp"

namespace hdc::hv {

PackedHVs::PackedHVs(std::size_t bits, std::size_t rows)
    : bits_(bits), words_per_row_((bits + 63) / 64), rows_(rows),
      words_(words_per_row_ * rows, 0ULL) {}

PackedHVs PackedHVs::pack(std::span<const BitVector> vectors) {
  if (vectors.empty()) return {};
  PackedHVs out(vectors.front().size(), vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) out.set_row(i, vectors[i]);
  return out;
}

void PackedHVs::set_row(std::size_t i, const BitVector& v) {
  if (v.size() != bits_) {
    throw std::invalid_argument("PackedHVs: row dimensionality mismatch (" +
                                std::to_string(v.size()) + " vs " +
                                std::to_string(bits_) + ")");
  }
  std::copy(v.words().begin(), v.words().end(), row(i));
}

BitVector PackedHVs::unpack_row(std::size_t i) const {
  BitVector out(bits_);
  const std::uint64_t* src = row(i);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    for (std::size_t b = 0; b < 64; ++b) {
      const std::size_t bit = w * 64 + b;
      if (bit >= bits_) break;
      if ((src[w] >> b) & 1ULL) out.set(bit, true);
    }
  }
  return out;
}

std::size_t hamming_words(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) noexcept {
  return simd::active().hamming(a, b, words);
}

namespace {

/// Registry handles resolved once per process. Counts are derived
/// arithmetically outside the XOR-popcount loops, so the kernels themselves
/// are untouched and the disabled path costs one relaxed load per chunk.
struct SearchMetrics {
  obs::Counter& queries = obs::counter("hv.search.queries");
  obs::Counter& tiles = obs::counter("hv.search.tiles");
  obs::Counter& word_ops = obs::counter("hv.search.word_ops");
  obs::Histogram& chunk_seconds = obs::histogram("hv.search.chunk_seconds");

  static SearchMetrics& get() {
    static SearchMetrics metrics;
    return metrics;
  }
};

void check_search_inputs(const PackedHVs& queries, const PackedHVs& database,
                         const SearchOptions& options) {
  if (queries.empty() || database.empty()) {
    throw std::invalid_argument("hv::search: empty queries or database");
  }
  if (queries.bits() != database.bits()) {
    throw std::invalid_argument("hv::search: dimensionality mismatch");
  }
  if (options.exclude_same_index) {
    if (queries.rows() != database.rows()) {
      throw std::invalid_argument(
          "hv::search: exclude_same_index needs queries == database");
    }
    if (database.rows() < 2) {
      throw std::invalid_argument("hv::search: leave-one-out needs >= 2 rows");
    }
  }
}

/// Drive `visit(q, j, distance)` over every (query, database) pair in tiled
/// order: queries are chunked across the pool, and within a chunk a database
/// tile is swept by a small block of queries before moving on. For a fixed
/// query, database rows arrive in strictly ascending j order — reductions
/// that only depend on per-query visit order are thread-count-invariant.
template <typename Visit>
void tiled_sweep(const PackedHVs& queries, const PackedHVs& database,
                 const SearchOptions& options, const Visit& visit) {
  const std::size_t words = queries.words_per_row();
  const std::size_t tile_q = std::max<std::size_t>(1, options.tile_queries);
  const std::size_t tile_db = std::max<std::size_t>(1, options.tile_database);
  // Resolve the dispatch-tier kernel once per sweep; obs counters stay
  // derived from tile geometry outside the kernels (see below).
  const auto hamming_kernel = simd::active().hamming;
  parallel::parallel_for_chunks(
      0, queries.rows(),
      [&](std::size_t q_lo, std::size_t q_hi) {
        obs::Span span("hv.search.chunk");
        const bool obs_on = obs::enabled();
        util::Timer timer;
        std::size_t local_tiles = 0;
        std::size_t local_pairs = 0;
        for (std::size_t qt = q_lo; qt < q_hi; qt += tile_q) {
          const std::size_t qt_end = std::min(qt + tile_q, q_hi);
          for (std::size_t jt = 0; jt < database.rows(); jt += tile_db) {
            const std::size_t jt_end = std::min(jt + tile_db, database.rows());
            for (std::size_t q = qt; q < qt_end; ++q) {
              const std::uint64_t* qrow = queries.row(q);
              for (std::size_t j = jt; j < jt_end; ++j) {
                if (options.exclude_same_index && j == q) continue;
                visit(q, j, hamming_kernel(qrow, database.row(j), words));
              }
            }
            if (obs_on) {
              ++local_tiles;
              std::size_t pairs = (qt_end - qt) * (jt_end - jt);
              if (options.exclude_same_index) {
                // Diagonal entries skipped inside this tile.
                const std::size_t lo = std::max(qt, jt);
                const std::size_t hi = std::min(qt_end, jt_end);
                if (hi > lo) pairs -= hi - lo;
              }
              local_pairs += pairs;
            }
          }
        }
        if (obs_on) {
          SearchMetrics& metrics = SearchMetrics::get();
          metrics.queries.add(q_hi - q_lo);
          metrics.tiles.add(local_tiles);
          metrics.word_ops.add(local_pairs * words);
          metrics.chunk_seconds.record(timer.seconds());
        }
      },
      options.pool);
}

}  // namespace

std::vector<Neighbor> nearest_neighbors(const PackedHVs& queries,
                                        const PackedHVs& database,
                                        const SearchOptions& options) {
  check_search_inputs(queries, database, options);
  // Sentinel larger than any real distance; first visited row replaces it.
  std::vector<Neighbor> best(queries.rows(),
                             Neighbor{database.rows(), queries.bits() + 1});
  tiled_sweep(queries, database, options,
              [&](std::size_t q, std::size_t j, std::size_t d) {
                // Database tiles arrive in ascending order per query, so a
                // strict < keeps the lowest index among tied distances.
                if (d < best[q].distance) best[q] = Neighbor{j, d};
              });
  return best;
}

std::vector<std::vector<Neighbor>> top_k_neighbors(const PackedHVs& queries,
                                                   const PackedHVs& database,
                                                   std::size_t k,
                                                   const SearchOptions& options) {
  check_search_inputs(queries, database, options);
  if (k == 0) throw std::invalid_argument("hv::search: k must be >= 1");
  std::vector<std::vector<Neighbor>> best(queries.rows());
  for (auto& heap : best) heap.reserve(k);
  const auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.index < b.index;
  };
  tiled_sweep(queries, database, options,
              [&](std::size_t q, std::size_t j, std::size_t d) {
                std::vector<Neighbor>& list = best[q];
                const Neighbor cand{j, d};
                if (list.size() == k && !worse(cand, list.back())) return;
                // Insertion sort into the short (<= k) candidate list.
                auto pos = std::upper_bound(list.begin(), list.end(), cand, worse);
                list.insert(pos, cand);
                if (list.size() > k) list.pop_back();
              });
  return best;
}

std::vector<std::size_t> distance_matrix(const PackedHVs& queries,
                                         const PackedHVs& database,
                                         const SearchOptions& options) {
  check_search_inputs(queries, database, options);
  std::vector<std::size_t> out(queries.rows() * database.rows(),
                               queries.bits() + 1);
  tiled_sweep(queries, database, options,
              [&](std::size_t q, std::size_t j, std::size_t d) {
                out[q * database.rows() + j] = d;
              });
  return out;
}

std::vector<Neighbor> nearest_neighbors(std::span<const BitVector> queries,
                                        std::span<const BitVector> database,
                                        const SearchOptions& options) {
  return nearest_neighbors(PackedHVs::pack(queries), PackedHVs::pack(database),
                           options);
}

std::vector<Neighbor> loo_nearest_neighbors(std::span<const BitVector> vectors,
                                            const SearchOptions& options) {
  SearchOptions loo = options;
  loo.exclude_same_index = true;
  const PackedHVs packed = PackedHVs::pack(vectors);
  return nearest_neighbors(packed, packed, loo);
}

}  // namespace hdc::hv
