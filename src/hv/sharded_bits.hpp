// Sharded view over per-chunk BitMatrix blocks.
//
// The out-of-core pipeline encodes a cohort shard-at-a-time; each shard is
// an ordinary BitMatrix over a contiguous, ascending global row range.
// ShardedBitMatrix owns the blocks and answers the whole-matrix questions
// the sharded ML paths need — merged column popcounts, per-shard masked
// popcounts, a chunking-invariant fingerprint — without ever concatenating
// the bitplanes. Popcounts are integers, so the merged statistics are
// *exactly* equal to what a single unsharded BitMatrix would report; that
// is the foundation of the 1-shard vs N-shard bit-identity gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hv/bit_matrix.hpp"

namespace hdc::hv {

/// Read-only stream of bit-packed shards over contiguous, ascending global
/// row ranges — the minimal geometry the streamed consumers (the ANN
/// builder's `build_sharded`, the sharded ML fit paths) need. Only one
/// shard must be resident at a time: the reference a shard() call returns
/// is valid until the next shard() call on the same source, so streaming
/// backends stay O(shard) in memory. Re-requesting a shard must reproduce
/// identical bits (row encodings are pure functions of the row), which is
/// what lets multi-pass consumers re-stream the same source.
class BitShardSource {
 public:
  virtual ~BitShardSource() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t cols() const = 0;
  [[nodiscard]] virtual std::size_t num_shards() const = 0;
  /// Global row index of shard s's first row (shards are contiguous:
  /// shard s covers [shard_begin(s), shard_begin(s) + shard_rows(s))).
  [[nodiscard]] virtual std::size_t shard_begin(std::size_t s) const = 0;
  /// Shard s's rows as an ordinary BitMatrix (single-resident contract
  /// above).
  [[nodiscard]] virtual const BitMatrix& shard(std::size_t s) const = 0;

  [[nodiscard]] std::size_t shard_rows(std::size_t s) const {
    return (s + 1 < num_shards() ? shard_begin(s + 1) : rows()) -
           shard_begin(s);
  }
};

class ShardedBitMatrix {
 public:
  ShardedBitMatrix() = default;

  /// Append the next shard (rows follow the previous shard's in global
  /// order). All shards must agree on cols(); empty shards are rejected.
  void append_shard(BitMatrix shard);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return shards_.empty(); }
  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Global row index of shard s's first row.
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const noexcept {
    return begins_[s];
  }
  [[nodiscard]] std::size_t shard_rows(std::size_t s) const noexcept {
    return shards_[s].rows();
  }
  [[nodiscard]] const BitMatrix& shard(std::size_t s) const noexcept {
    return shards_[s];
  }

  /// Ones-count of column j over all rows: integer sum of per-shard
  /// popcounts, exactly equal to the unsharded value.
  [[nodiscard]] std::size_t column_popcount(std::size_t j) const noexcept;
  [[nodiscard]] std::size_t shard_column_popcount(std::size_t s,
                                                  std::size_t j) const noexcept;

  /// Ones-count of column j restricted to the rows selected by per-shard
  /// masks (masks.size() == num_shards(), masks[s] over shard s's rows).
  [[nodiscard]] std::size_t masked_column_popcount(
      std::size_t j, std::span<const RowMask> masks) const;

  /// FNV-1a over (rows, cols, then every row's row-major words in global
  /// row order). Padding bits are zero and words_per_row depends only on
  /// cols(), so the fingerprint is invariant to how the rows were chunked.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Bytes held by the packed planes, row-major mirrors and validity masks
  /// across all resident shards (measured from the containers, not
  /// estimated).
  [[nodiscard]] std::size_t resident_bytes() const noexcept;

  /// Materialize one unsharded BitMatrix with the same rows in the same
  /// order (test/bridge path — costs the full concatenated footprint).
  [[nodiscard]] BitMatrix concatenate() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> begins_;
  std::vector<BitMatrix> shards_;
};

/// BitShardSource view over an already-resident ShardedBitMatrix
/// (borrowed; every shard stays resident, so this is the bridge path, not
/// the bounded-memory one).
class ShardedBitMatrixSource final : public BitShardSource {
 public:
  explicit ShardedBitMatrixSource(const ShardedBitMatrix& bits)
      : bits_(&bits) {}

  [[nodiscard]] std::size_t rows() const override { return bits_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return bits_->cols(); }
  [[nodiscard]] std::size_t num_shards() const override {
    return bits_->num_shards();
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const override {
    return bits_->shard_begin(s);
  }
  [[nodiscard]] const BitMatrix& shard(std::size_t s) const override {
    return bits_->shard(s);
  }

 private:
  const ShardedBitMatrix* bits_;
};

}  // namespace hdc::hv
