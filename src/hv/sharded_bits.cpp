#include "hv/sharded_bits.hpp"

#include <stdexcept>

#include "simd/dispatch.hpp"

namespace hdc::hv {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

void ShardedBitMatrix::append_shard(BitMatrix shard) {
  if (shard.empty()) {
    throw std::invalid_argument("ShardedBitMatrix: empty shard");
  }
  if (!shards_.empty() && shard.cols() != cols_) {
    throw std::invalid_argument(
        "ShardedBitMatrix: shard has " + std::to_string(shard.cols()) +
        " cols, expected " + std::to_string(cols_));
  }
  cols_ = shard.cols();
  begins_.push_back(rows_);
  rows_ += shard.rows();
  shards_.push_back(std::move(shard));
}

std::size_t ShardedBitMatrix::column_popcount(std::size_t j) const noexcept {
  std::size_t total = 0;
  for (const BitMatrix& shard : shards_) total += shard.column_popcount(j);
  return total;
}

std::size_t ShardedBitMatrix::shard_column_popcount(
    std::size_t s, std::size_t j) const noexcept {
  return shards_[s].column_popcount(j);
}

std::size_t ShardedBitMatrix::masked_column_popcount(
    std::size_t j, std::span<const RowMask> masks) const {
  if (masks.size() != shards_.size()) {
    throw std::invalid_argument("ShardedBitMatrix: expected one mask per shard");
  }
  const auto& kernels = simd::active();
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += kernels.and_popcount(shards_[s].column(j), masks[s].words(),
                                  shards_[s].words_per_column());
  }
  return total;
}

std::uint64_t ShardedBitMatrix::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, rows_);
  h = fnv_u64(h, cols_);
  for (const BitMatrix& shard : shards_) {
    const std::size_t wpr = shard.words_per_row();
    for (std::size_t i = 0; i < shard.rows(); ++i) {
      const std::uint64_t* row = shard.row_bits(i);
      for (std::size_t w = 0; w < wpr; ++w) h = fnv_u64(h, row[w]);
    }
  }
  return h;
}

std::size_t ShardedBitMatrix::resident_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const BitMatrix& shard : shards_) {
    bytes += shard.cols() * shard.words_per_column() * sizeof(std::uint64_t);
    bytes += shard.rows() * shard.words_per_row() * sizeof(std::uint64_t);
    bytes += shard.valid().word_count() * sizeof(std::uint64_t);
  }
  return bytes;
}

BitMatrix ShardedBitMatrix::concatenate() const {
  if (shards_.empty()) return BitMatrix();
  PackedHVs merged(cols_, rows_);
  std::size_t out_row = 0;
  for (const BitMatrix& shard : shards_) {
    const std::size_t wpr = shard.words_per_row();
    for (std::size_t i = 0; i < shard.rows(); ++i, ++out_row) {
      const std::uint64_t* src = shard.row_bits(i);
      std::uint64_t* dst = merged.row(out_row);
      for (std::size_t w = 0; w < wpr; ++w) dst[w] = src[w];
    }
  }
  return BitMatrix::from_rows(std::move(merged));
}

}  // namespace hdc::hv
