// Bit-packed columnar design matrix for binary (0/1) feature tables.
//
// The hybrid pipeline feeds 10,000-bit patient hypervectors into classical
// ML models. Stored dense, that design matrix costs ~80 KB of doubles per
// row and every split search / dot product walks it row-major. Stored as
// column-major 64-bit bitplanes it is one bit per cell, and every per-node
// statistic a tree or linear model needs collapses into AND/ANDNOT +
// popcount reductions over a handful of words, dispatched through the
// src/simd kernel table:
//
//        column j ->   plane words (ceil(rows/64) u64, padding bits 0)
//   row 0..63      ->  word 0, bit = row index % 64 (little-endian)
//   row 64..127    ->  word 1, ...
//
// A row-major mirror of the same bits (PackedHVs) is kept alongside so
// row-streaming consumers (SGD epochs, kernel matrices, per-row prediction)
// read packed rows instead of gathering across 10,000 bitplanes. Row
// subsets (CV folds, tree nodes, bootstrap draws) are represented as cheap
// RowMask views over the shared planes rather than copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hv/search.hpp"

namespace hdc::hv {

/// Packed row-subset mask: bit i set = row i selected. Padding bits beyond
/// rows() are always zero, so masks can be ANDed against column planes
/// without a separate length check.
class RowMask {
 public:
  RowMask() = default;

  [[nodiscard]] static RowMask all(std::size_t rows);
  [[nodiscard]] static RowMask none(std::size_t rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }
  [[nodiscard]] const std::uint64_t* words() const noexcept { return words_.data(); }
  [[nodiscard]] std::uint64_t* words() noexcept { return words_.data(); }

  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return ((words_[i >> 6] >> (i & 63)) & 1ULL) != 0;
  }
  void set(std::size_t i, bool value) noexcept {
    const std::uint64_t bit = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= bit;
    } else {
      words_[i >> 6] &= ~bit;
    }
  }

  /// Number of selected rows (simd-dispatched popcount).
  [[nodiscard]] std::size_t count() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Column-major bitplane matrix with a row-major mirror. Immutable after
/// construction: producers build a PackedHVs and transpose once.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Transpose a row-major packed array into column bitplanes. The argument
  /// is retained (moved) as the row-major mirror, so callers hand over
  /// ownership instead of paying a second copy.
  [[nodiscard]] static BitMatrix from_rows(PackedHVs rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Words per column bitplane: ceil(rows / 64).
  [[nodiscard]] std::size_t words_per_column() const noexcept { return wpc_; }

  /// Column j's bitplane (words_per_column() words, padding bits zero).
  [[nodiscard]] const std::uint64_t* column(std::size_t j) const noexcept {
    return planes_.data() + j * wpc_;
  }

  /// Row-major mirror of the same bits.
  [[nodiscard]] const PackedHVs& row_major() const noexcept { return row_major_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept {
    return row_major_.words_per_row();
  }
  [[nodiscard]] const std::uint64_t* row_bits(std::size_t i) const noexcept {
    return row_major_.row(i);
  }

  [[nodiscard]] bool get(std::size_t i, std::size_t j) const noexcept {
    return ((planes_[j * wpc_ + (i >> 6)] >> (i & 63)) & 1ULL) != 0;
  }

  /// Ones-count of column j over all rows (simd-dispatched).
  [[nodiscard]] std::size_t column_popcount(std::size_t j) const noexcept;

  /// Validity mask covering every row (all bits set). Node masks and fold
  /// views start from this and intersect away.
  [[nodiscard]] const RowMask& valid() const noexcept { return valid_; }

  /// Expand row i into doubles (out.size() must be cols()).
  void unpack_row(std::size_t i, std::span<double> out) const;
  [[nodiscard]] std::vector<double> row_doubles(std::size_t i) const;

  /// Materialised row subset (CV folds): rows re-indexed in `indices` order.
  [[nodiscard]] BitMatrix subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t wpc_ = 0;
  std::vector<std::uint64_t> planes_;  // cols_ * wpc_ words, column-major
  PackedHVs row_major_;
  RowMask valid_;
};

}  // namespace hdc::hv
