// Bit-packed binary hypervector.
//
// The paper uses dense binary hypervectors of dimensionality 10,000. We pack
// bits into 64-bit words so that Hamming distance is a word-wise XOR +
// popcount, exploiting the bit-level parallelism the paper calls out as the
// reason for choosing binary hypervectors on Von Neumann hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hdc::hv {

class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector of `bits` dimensions.
  explicit BitVector(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0ULL) {}

  /// Number of dimensions.
  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

  /// Raw 64-bit words (trailing bits of the last word are always zero).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Mutable word storage for kernel code (hv/ops, hv/search). Writers must
  /// keep the trailing padding bits of the last word zero.
  [[nodiscard]] std::uint64_t* word_data() noexcept { return words_.data(); }

  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void flip(std::size_t i) noexcept { words_[i >> 6] ^= 1ULL << (i & 63); }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Fraction of set bits in [0, 1].
  [[nodiscard]] double density() const noexcept {
    return bits_ == 0 ? 0.0 : static_cast<double>(popcount()) / static_cast<double>(bits_);
  }

  /// Hamming distance (number of differing bits). Requires equal size.
  [[nodiscard]] std::size_t hamming(const BitVector& other) const;

  /// Normalised Hamming distance in [0, 1].
  [[nodiscard]] double hamming_fraction(const BitVector& other) const {
    return bits_ == 0 ? 0.0
                      : static_cast<double>(hamming(other)) / static_cast<double>(bits_);
  }

  /// In-place XOR (the HDC "bind" operation). Requires equal size.
  BitVector& operator^=(const BitVector& other);
  /// In-place OR / AND, used by some bundling variants.
  BitVector& operator|=(const BitVector& other);
  BitVector& operator&=(const BitVector& other);

  [[nodiscard]] friend BitVector operator^(BitVector a, const BitVector& b) {
    a ^= b;
    return a;
  }

  /// Flip all bits (complement); trailing padding stays zero.
  void invert() noexcept;

  /// Cyclic rotation by k positions (the HDC "permute" operation).
  [[nodiscard]] BitVector rotated(std::size_t k) const;

  bool operator==(const BitVector& other) const noexcept = default;

  /// Uniformly random vector: each bit i.i.d. Bernoulli(0.5).
  [[nodiscard]] static BitVector random(std::size_t bits, util::Rng& rng);

  /// Random vector with exactly `ones` set bits (the paper's "partially
  /// dense" seed has bits/2 ones).
  [[nodiscard]] static BitVector random_with_ones(std::size_t bits, std::size_t ones,
                                                  util::Rng& rng);

  /// Exactly balanced random seed: bits/2 ones (bits must be even).
  [[nodiscard]] static BitVector random_balanced(std::size_t bits, util::Rng& rng);

  /// Copy with `flip_zeros` randomly chosen 0-bits set and `flip_ones`
  /// randomly chosen 1-bits cleared. This is the primitive behind the
  /// paper's linear encoding ("flip an equal x number of 0 and 1 bits").
  [[nodiscard]] BitVector with_flipped(std::size_t flip_zeros, std::size_t flip_ones,
                                       util::Rng& rng) const;

  /// "0101..." debug rendering of the first `limit` bits.
  [[nodiscard]] std::string to_string(std::size_t limit = 64) const;

  /// Expand to a float vector of {0,1} values — used when feeding
  /// hypervectors into the ML / NN substrates.
  [[nodiscard]] std::vector<double> to_doubles() const;

 private:
  void check_same_size(const BitVector& other) const;
  void clear_padding() noexcept;

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hdc::hv
