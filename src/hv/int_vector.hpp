// Integer / ternary hypervectors — the alternative VSA models the paper's
// Section II mentions ("ternary (with values of -1, 0 and 1) and integer
// hypervectors could also be used"). Components are small integers; bundling
// is element-wise addition (no information loss until thresholding), binding
// is the Hadamard product, and similarity is the cosine.
#pragma once

#include <cstdint>
#include <vector>

#include "hv/bitvector.hpp"
#include "util/rng.hpp"

namespace hdc::hv {

class IntVector {
 public:
  using Component = std::int32_t;

  IntVector() = default;
  explicit IntVector(std::size_t size) : v_(size, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }

  [[nodiscard]] Component get(std::size_t i) const { return v_[i]; }
  void set(std::size_t i, Component value) { v_[i] = value; }

  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return v_;
  }

  /// Element-wise sum — the integer bundling operation.
  IntVector& operator+=(const IntVector& other);
  IntVector& operator-=(const IntVector& other);
  [[nodiscard]] friend IntVector operator+(IntVector a, const IntVector& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend IntVector operator-(IntVector a, const IntVector& b) {
    a -= b;
    return a;
  }

  bool operator==(const IntVector& other) const noexcept = default;

  /// Element-wise (Hadamard) product — binding for bipolar vectors, where it
  /// is self-inverse: bind(bind(a, b), b) == a when b has +/-1 components.
  [[nodiscard]] IntVector hadamard(const IntVector& other) const;

  [[nodiscard]] double dot(const IntVector& other) const;
  [[nodiscard]] double norm() const;

  /// Cosine similarity in [-1, 1]; 0 for a zero vector.
  [[nodiscard]] double cosine(const IntVector& other) const;

  /// Ternarise: components collapse to sign (-1 / 0 / +1).
  [[nodiscard]] IntVector sign() const;

  /// Binarise: positive components -> 1; zero components break ties with
  /// `tie_one` (mirrors the paper's majority-vote ties -> 1 rule).
  [[nodiscard]] BitVector to_binary(bool tie_one = true) const;

  /// Bipolar (+/-1) random vector.
  [[nodiscard]] static IntVector random_bipolar(std::size_t size, util::Rng& rng);

  /// Ternary random vector: P(non-zero) = density, sign fair.
  [[nodiscard]] static IntVector random_ternary(std::size_t size, double density,
                                                util::Rng& rng);

  /// Lift a binary hypervector to bipolar: 1 -> +1, 0 -> -1.
  [[nodiscard]] static IntVector from_binary(const BitVector& bits);

 private:
  void check_same_size(const IntVector& other) const;

  std::vector<Component> v_;
};

/// Level (linear) encoder producing bipolar vectors: the integer analogue of
/// the binary LevelEncoder, with the same nested-flip construction so that
/// cosine(enc(min), enc(max)) == 0 and similarity is linear in value
/// difference.
class BipolarLevelEncoder {
 public:
  BipolarLevelEncoder(std::size_t size, double lo, double hi, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return seed_vector_.size(); }
  [[nodiscard]] IntVector encode(double value) const;

 private:
  double lo_;
  double hi_;
  IntVector seed_vector_;
  std::vector<std::uint32_t> flip_order_;  // positions negated as value grows
};

}  // namespace hdc::hv
