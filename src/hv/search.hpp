// Blocked Hamming-distance search kernels over packed hypervector arrays.
//
// The paper picks binary 10,000-bit hypervectors because Hamming-distance
// classification reduces to XOR + popcount; this module supplies the batch
// form of that idea. Hypervectors are packed row-major into one contiguous
// word buffer (PackedHVs) and distances are computed in cache-sized tiles —
// a database tile stays hot in L2 while a small block of queries sweeps it.
//
// Determinism guarantees (relied on by the golden tests):
//  * every query is processed by exactly one thread, database rows are
//    visited in ascending index order, and ties resolve to the lowest index,
//    so results are bit-identical for any thread count and tile shape;
//  * the kernels match the naive per-pair `BitVector::hamming` loop exactly
//    (property-tested in tests/hv_search_property_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hv/bitvector.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::hv {

/// Row-major packed matrix of equally-sized hypervectors. Rows are stored
/// back-to-back (padding bits zero), so tiled kernels stream it linearly.
class PackedHVs {
 public:
  PackedHVs() = default;

  /// All-zero matrix of `rows` hypervectors of `bits` dimensions.
  PackedHVs(std::size_t bits, std::size_t rows);

  /// Pack a vector array (all inputs must share one dimensionality).
  [[nodiscard]] static PackedHVs pack(std::span<const BitVector> vectors);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_per_row_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  [[nodiscard]] const std::uint64_t* row(std::size_t i) const noexcept {
    return words_.data() + i * words_per_row_;
  }
  [[nodiscard]] std::uint64_t* row(std::size_t i) noexcept {
    return words_.data() + i * words_per_row_;
  }

  /// Overwrite row `i` with `v` (must match bits()).
  void set_row(std::size_t i, const BitVector& v);

  /// Expand row `i` back into a BitVector.
  [[nodiscard]] BitVector unpack_row(std::size_t i) const;

 private:
  std::size_t bits_ = 0;
  std::size_t words_per_row_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hamming distance between two packed rows of `words` 64-bit words.
[[nodiscard]] std::size_t hamming_words(const std::uint64_t* a, const std::uint64_t* b,
                                        std::size_t words) noexcept;

struct Neighbor {
  std::size_t index = 0;     // database row
  std::size_t distance = 0;  // Hamming distance in bits
  bool operator==(const Neighbor&) const noexcept = default;
};

struct SearchOptions {
  /// Tile shape: how many query rows sweep one resident database tile.
  /// Defaults keep a 10k-bit database tile within typical L2 capacity.
  std::size_t tile_queries = 16;
  std::size_t tile_database = 128;
  /// Leave-one-out mode: skip database row j == query row i. Requires the
  /// queries to be the database itself (same row count).
  bool exclude_same_index = false;
  /// Worker pool (nullptr = process-wide pool). Results never depend on it.
  parallel::ThreadPool* pool = nullptr;
};

/// Nearest database row for every query (ties -> lowest database index).
[[nodiscard]] std::vector<Neighbor> nearest_neighbors(const PackedHVs& queries,
                                                      const PackedHVs& database,
                                                      const SearchOptions& options = {});

/// The `k` nearest database rows per query, sorted by (distance, index).
/// Returns min(k, candidates) entries per query.
[[nodiscard]] std::vector<std::vector<Neighbor>> top_k_neighbors(
    const PackedHVs& queries, const PackedHVs& database, std::size_t k,
    const SearchOptions& options = {});

/// Full distance matrix, row-major: out[q * database.rows() + j].
/// (exclude_same_index entries are set to queries.bits() + 1, an impossible
/// distance, so callers can still argmin over rows.)
[[nodiscard]] std::vector<std::size_t> distance_matrix(const PackedHVs& queries,
                                                       const PackedHVs& database,
                                                       const SearchOptions& options = {});

/// Span conveniences: pack and search in one call.
[[nodiscard]] std::vector<Neighbor> nearest_neighbors(std::span<const BitVector> queries,
                                                      std::span<const BitVector> database,
                                                      const SearchOptions& options = {});

/// Leave-one-out nearest neighbour of every vector among all the others.
[[nodiscard]] std::vector<Neighbor> loo_nearest_neighbors(
    std::span<const BitVector> vectors, const SearchOptions& options = {});

}  // namespace hdc::hv
