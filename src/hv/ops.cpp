#include "hv/ops.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace hdc::hv {

namespace {

void check_inputs(std::span<const BitVector> inputs) {
  if (inputs.empty()) throw std::invalid_argument("majority: no inputs");
  const std::size_t d = inputs.front().size();
  for (const BitVector& v : inputs) {
    if (v.size() != d) throw std::invalid_argument("majority: dimensionality mismatch");
  }
}

bool resolve_tie(TiePolicy tie, util::Rng* rng) {
  switch (tie) {
    case TiePolicy::kOne: return true;
    case TiePolicy::kZero: return false;
    case TiePolicy::kRandom:
      if (rng == nullptr) {
        throw std::invalid_argument("majority: TiePolicy::kRandom needs an Rng");
      }
      return rng->bernoulli(0.5);
  }
  return true;
}

/// Word-parallel majority via bit-sliced counters: each bit position's vote
/// count is held as a little-endian binary number spread across `planes`
/// 64-bit words, so adding one input is a ripple-carry add of 64 positions at
/// once. ~n*log2(n) word ops per 64 positions instead of 64*n bit probes.
BitVector majority_bitsliced(std::span<const BitVector> inputs, TiePolicy tie) {
  const std::size_t n = inputs.size();
  const std::size_t words = inputs.front().words().size();
  const int planes = std::bit_width(n);  // counts span [0, n]
  std::vector<std::uint64_t> counter(static_cast<std::size_t>(planes) * words, 0ULL);

  for (const BitVector& v : inputs) {
    const std::uint64_t* src = v.words().data();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t carry = src[w];
      for (int p = 0; p < planes && carry != 0; ++p) {
        std::uint64_t& plane = counter[static_cast<std::size_t>(p) * words + w];
        const std::uint64_t next = plane & carry;
        plane ^= carry;
        carry = next;
      }
    }
  }

  // count >= t per position == carry-out of count + (2^planes - t): ripple a
  // constant through the planes and keep the final carry.
  const auto mask_ge = [&](std::size_t t, std::size_t w) {
    const std::uint64_t constant = (1ULL << planes) - t;
    std::uint64_t carry = 0;
    for (int p = 0; p < planes; ++p) {
      const std::uint64_t a = counter[static_cast<std::size_t>(p) * words + w];
      const std::uint64_t b = ((constant >> p) & 1ULL) ? ~0ULL : 0ULL;
      carry = (a & b) | (carry & (a ^ b));
    }
    return carry;
  };

  BitVector out(inputs.front().size());
  std::uint64_t* dst = out.word_data();
  const std::size_t strict = n / 2 + 1;  // 2*count > n
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = mask_ge(strict, w);
    if (n % 2 == 0 && tie == TiePolicy::kOne) {
      bits |= mask_ge(n / 2, w);  // ties (count == n/2) resolve to 1
    }
    dst[w] = bits;  // padding positions count 0 < strict, so they stay zero
  }
  return out;
}

}  // namespace

BitVector majority(std::span<const BitVector> inputs, TiePolicy tie, util::Rng* rng) {
  check_inputs(inputs);
  const std::size_t d = inputs.front().size();
  if (inputs.size() == 1) return inputs.front();
  if (tie != TiePolicy::kRandom) return majority_bitsliced(inputs, tie);

  // Random tie policy keeps the scalar loop: it must consume one rng draw per
  // tie position in ascending bit order to stay stream-compatible.
  BitVector out(d);
  const std::size_t half_votes = inputs.size();  // compare 2*count vs n
  for (std::size_t i = 0; i < d; ++i) {
    std::size_t ones = 0;
    for (const BitVector& v : inputs) ones += v.get(i) ? 1 : 0;
    const std::size_t twice = 2 * ones;
    if (twice > half_votes) {
      out.set(i, true);
    } else if (twice == half_votes) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

BitVector weighted_majority(std::span<const BitVector> inputs,
                            std::span<const double> weights, TiePolicy tie,
                            util::Rng* rng) {
  check_inputs(inputs);
  if (inputs.size() != weights.size()) {
    throw std::invalid_argument("weighted_majority: weights arity mismatch");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("weighted_majority: non-positive weight");
    total += w;
  }
  const std::size_t d = inputs.front().size();
  BitVector out(d);
  for (std::size_t i = 0; i < d; ++i) {
    double ones = 0.0;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      if (inputs[k].get(i)) ones += weights[k];
    }
    const double twice = 2.0 * ones;
    if (twice > total) {
      out.set(i, true);
    } else if (twice == total) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

BitVector bind(const BitVector& a, const BitVector& b) { return a ^ b; }

double similarity(const BitVector& a, const BitVector& b) {
  if (a.size() == 0) return 1.0;
  return 1.0 - 2.0 * a.hamming_fraction(b);
}

void BitAccumulator::add(const BitVector& v) {
  if (v.size() != counts_.size()) {
    throw std::invalid_argument("BitAccumulator: dimensionality mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += v.get(i) ? 1u : 0u;
  ++total_;
}

void BitAccumulator::remove(const BitVector& v) {
  if (v.size() != counts_.size()) {
    throw std::invalid_argument("BitAccumulator: dimensionality mismatch");
  }
  if (total_ == 0) throw std::logic_error("BitAccumulator: remove from empty");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint32_t bit = v.get(i) ? 1u : 0u;
    if (counts_[i] < bit) throw std::logic_error("BitAccumulator: underflow");
    counts_[i] -= bit;
  }
  --total_;
}

BitVector BitAccumulator::to_majority(TiePolicy tie, util::Rng* rng) const {
  BitVector out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t twice = 2 * counts_[i];
    if (twice > total_) {
      out.set(i, true);
    } else if (twice == total_ && total_ != 0) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

}  // namespace hdc::hv
