#include "hv/ops.hpp"

#include <cstdint>
#include <stdexcept>

#include "simd/dispatch.hpp"

namespace hdc::hv {

namespace {

void check_inputs(std::span<const BitVector> inputs) {
  if (inputs.empty()) throw std::invalid_argument("majority: no inputs");
  const std::size_t d = inputs.front().size();
  for (const BitVector& v : inputs) {
    if (v.size() != d) throw std::invalid_argument("majority: dimensionality mismatch");
  }
}

void check_inputs(std::span<const BitVector* const> inputs) {
  if (inputs.empty()) throw std::invalid_argument("majority: no inputs");
  for (const BitVector* v : inputs) {
    if (v == nullptr) throw std::invalid_argument("majority: null input");
  }
  const std::size_t d = inputs.front()->size();
  for (const BitVector* v : inputs) {
    if (v->size() != d) throw std::invalid_argument("majority: dimensionality mismatch");
  }
}

bool resolve_tie(TiePolicy tie, util::Rng* rng) {
  switch (tie) {
    case TiePolicy::kOne: return true;
    case TiePolicy::kZero: return false;
    case TiePolicy::kRandom:
      if (rng == nullptr) {
        throw std::invalid_argument("majority: TiePolicy::kRandom needs an Rng");
      }
      return rng->bernoulli(0.5);
  }
  return true;
}

/// Word-parallel majority through the dispatch-tier kernel (bit-sliced
/// ripple-carry counters; see src/simd). Padding columns have count 0, which
/// is below any strict threshold, so trailing bits stay zero.
BitVector majority_kernel(const std::uint64_t* const* rows, std::size_t n,
                          std::size_t bits, TiePolicy tie) {
  BitVector out(bits);
  simd::active().majority(rows, n, out.words().size(), out.word_data(),
                          tie == TiePolicy::kOne);
  return out;
}

/// Collects word pointers without a heap allocation for realistic bundle
/// sizes (a record's feature count), then runs the kernel.
template <typename WordsOf>
BitVector majority_dispatch(std::size_t n, std::size_t bits, TiePolicy tie,
                            const WordsOf& words_of) {
  const std::uint64_t* stack_rows[64];
  std::vector<const std::uint64_t*> heap_rows;
  const std::uint64_t** rows = stack_rows;
  if (n > 64) {
    heap_rows.resize(n);
    rows = heap_rows.data();
  }
  for (std::size_t i = 0; i < n; ++i) rows[i] = words_of(i);
  return majority_kernel(rows, n, bits, tie);
}

}  // namespace

BitVector majority(std::span<const BitVector> inputs, TiePolicy tie, util::Rng* rng) {
  check_inputs(inputs);
  const std::size_t d = inputs.front().size();
  if (inputs.size() == 1) return inputs.front();
  if (tie != TiePolicy::kRandom) {
    return majority_dispatch(inputs.size(), d, tie,
                             [&](std::size_t i) { return inputs[i].words().data(); });
  }

  // Random tie policy keeps the scalar loop: it must consume one rng draw per
  // tie position in ascending bit order to stay stream-compatible.
  BitVector out(d);
  const std::size_t half_votes = inputs.size();  // compare 2*count vs n
  for (std::size_t i = 0; i < d; ++i) {
    std::size_t ones = 0;
    for (const BitVector& v : inputs) ones += v.get(i) ? 1 : 0;
    const std::size_t twice = 2 * ones;
    if (twice > half_votes) {
      out.set(i, true);
    } else if (twice == half_votes) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

BitVector majority(std::span<const BitVector* const> inputs, TiePolicy tie,
                   util::Rng* rng) {
  check_inputs(inputs);
  const std::size_t d = inputs.front()->size();
  if (inputs.size() == 1) return *inputs.front();
  if (tie != TiePolicy::kRandom) {
    return majority_dispatch(inputs.size(), d, tie,
                             [&](std::size_t i) { return inputs[i]->words().data(); });
  }

  // Same rng-draw order as the contiguous overload (one draw per tie
  // position, ascending bit order).
  BitVector out(d);
  const std::size_t half_votes = inputs.size();
  for (std::size_t i = 0; i < d; ++i) {
    std::size_t ones = 0;
    for (const BitVector* v : inputs) ones += v->get(i) ? 1 : 0;
    const std::size_t twice = 2 * ones;
    if (twice > half_votes) {
      out.set(i, true);
    } else if (twice == half_votes) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

BitVector weighted_majority(std::span<const BitVector> inputs,
                            std::span<const double> weights, TiePolicy tie,
                            util::Rng* rng) {
  check_inputs(inputs);
  if (inputs.size() != weights.size()) {
    throw std::invalid_argument("weighted_majority: weights arity mismatch");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) throw std::invalid_argument("weighted_majority: non-positive weight");
    total += w;
  }
  const std::size_t d = inputs.front().size();
  BitVector out(d);
  for (std::size_t i = 0; i < d; ++i) {
    double ones = 0.0;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      if (inputs[k].get(i)) ones += weights[k];
    }
    const double twice = 2.0 * ones;
    if (twice > total) {
      out.set(i, true);
    } else if (twice == total) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

BitVector bind(const BitVector& a, const BitVector& b) { return a ^ b; }

double similarity(const BitVector& a, const BitVector& b) {
  if (a.size() == 0) return 1.0;
  return 1.0 - 2.0 * a.hamming_fraction(b);
}

void BitAccumulator::add(const BitVector& v) {
  if (v.size() != counts_.size()) {
    throw std::invalid_argument("BitAccumulator: dimensionality mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += v.get(i) ? 1u : 0u;
  ++total_;
}

void BitAccumulator::remove(const BitVector& v) {
  if (v.size() != counts_.size()) {
    throw std::invalid_argument("BitAccumulator: dimensionality mismatch");
  }
  if (total_ == 0) throw std::logic_error("BitAccumulator: remove from empty");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint32_t bit = v.get(i) ? 1u : 0u;
    if (counts_[i] < bit) throw std::logic_error("BitAccumulator: underflow");
    counts_[i] -= bit;
  }
  --total_;
}

BitVector BitAccumulator::to_majority(TiePolicy tie, util::Rng* rng) const {
  BitVector out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t twice = 2 * counts_[i];
    if (twice > total_) {
      out.set(i, true);
    } else if (twice == total_ && total_ != 0) {
      out.set(i, resolve_tie(tie, rng));
    }
  }
  return out;
}

}  // namespace hdc::hv
