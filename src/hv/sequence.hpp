// Sequence encoding with permutation binding. Completes the classic HDC
// operator set (Kanerva 2009): an ordered sequence (v1, v2, ..., vn) is
// encoded as rho^(n-1)(v1) ^ rho^(n-2)(v2) ^ ... ^ vn, where rho is a cyclic
// rotation. Position is thus carried by the permutation power, and two
// sequences are similar only when they agree element-wise in order. The
// NGramEncoder bundles all n-grams of a longer stream — the encoding used by
// the HDC text/DNA classifiers the paper cites (Imani et al.'s HDNA), and
// the natural extension point for encoding longitudinal patient records.
#pragma once

#include <span>
#include <vector>

#include "hv/bitvector.hpp"
#include "hv/ops.hpp"

namespace hdc::hv {

/// Bind an ordered window of hypervectors into one (permute-then-XOR).
/// All inputs must share one dimensionality; at least one input required.
[[nodiscard]] BitVector encode_sequence(std::span<const BitVector> window);

/// Sliding n-gram encoder over a stream of item hypervectors: every
/// contiguous window of length `n` is sequence-encoded, and the window
/// vectors are bundled with majority voting.
class NGramEncoder {
 public:
  /// `n` must be >= 1; streams shorter than n throw at encode time.
  explicit NGramEncoder(std::size_t n, TiePolicy tie = TiePolicy::kOne);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }

  [[nodiscard]] BitVector encode(std::span<const BitVector> stream) const;

 private:
  std::size_t n_;
  TiePolicy tie_;
};

}  // namespace hdc::hv
