#include "hv/int_vector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdc::hv {

void IntVector::check_same_size(const IntVector& other) const {
  if (v_.size() != other.v_.size()) {
    throw std::invalid_argument("IntVector: dimensionality mismatch");
  }
}

IntVector& IntVector::operator+=(const IntVector& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += other.v_[i];
  return *this;
}

IntVector& IntVector::operator-=(const IntVector& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= other.v_[i];
  return *this;
}

IntVector IntVector::hadamard(const IntVector& other) const {
  check_same_size(other);
  IntVector out(v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) out.v_[i] = v_[i] * other.v_[i];
  return out;
}

double IntVector::dot(const IntVector& other) const {
  check_same_size(other);
  double sum = 0.0;
  for (std::size_t i = 0; i < v_.size(); ++i) {
    sum += static_cast<double>(v_[i]) * static_cast<double>(other.v_[i]);
  }
  return sum;
}

double IntVector::norm() const { return std::sqrt(dot(*this)); }

double IntVector::cosine(const IntVector& other) const {
  const double denom = norm() * other.norm();
  return denom > 0.0 ? dot(other) / denom : 0.0;
}

IntVector IntVector::sign() const {
  IntVector out(v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    out.v_[i] = v_[i] > 0 ? 1 : (v_[i] < 0 ? -1 : 0);
  }
  return out;
}

BitVector IntVector::to_binary(bool tie_one) const {
  BitVector out(v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > 0 || (v_[i] == 0 && tie_one)) out.set(i, true);
  }
  return out;
}

IntVector IntVector::random_bipolar(std::size_t size, util::Rng& rng) {
  IntVector out(size);
  for (std::size_t i = 0; i < size; ++i) out.v_[i] = rng.bernoulli(0.5) ? 1 : -1;
  return out;
}

IntVector IntVector::random_ternary(std::size_t size, double density,
                                    util::Rng& rng) {
  if (density < 0.0 || density > 1.0) {
    throw std::invalid_argument("IntVector: density must be in [0, 1]");
  }
  IntVector out(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.bernoulli(density)) out.v_[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
  return out;
}

IntVector IntVector::from_binary(const BitVector& bits) {
  IntVector out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) out.v_[i] = bits.get(i) ? 1 : -1;
  return out;
}

BipolarLevelEncoder::BipolarLevelEncoder(std::size_t size, double lo, double hi,
                                         std::uint64_t seed)
    : lo_(lo), hi_(hi) {
  if (size == 0) throw std::invalid_argument("BipolarLevelEncoder: zero size");
  if (!(lo <= hi)) throw std::invalid_argument("BipolarLevelEncoder: lo > hi");
  util::Rng rng(seed);
  seed_vector_ = IntVector::random_bipolar(size, rng);
  flip_order_.resize(size);
  std::iota(flip_order_.begin(), flip_order_.end(), 0u);
  rng.shuffle(flip_order_);
}

IntVector BipolarLevelEncoder::encode(double value) const {
  const std::size_t n = seed_vector_.size();
  std::size_t flips = 0;
  if (hi_ > lo_) {
    const double clamped = std::clamp(value, lo_, hi_);
    // Same geometry as the binary LevelEncoder: the top of the range lands
    // orthogonal to the bottom (half of the components negated).
    const double x =
        static_cast<double>(n) * (clamped - lo_) / (2.0 * (hi_ - lo_));
    flips = std::min(static_cast<std::size_t>(std::llround(x)), n / 2);
  }
  IntVector out = seed_vector_;
  for (std::size_t i = 0; i < flips; ++i) {
    const std::uint32_t pos = flip_order_[i];
    out.set(pos, static_cast<IntVector::Component>(-out.get(pos)));
  }
  return out;
}

}  // namespace hdc::hv
