#include "hv/batch_encoder.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace hdc::hv {

std::vector<BitVector> BatchEncoder::encode_rows(std::size_t n_rows,
                                                 const RowFn& row_of) const {
  std::vector<BitVector> out(n_rows);
  parallel::parallel_for_chunks(
      0, n_rows,
      [&](std::size_t lo, std::size_t hi) {
        RecordEncoder::Scratch scratch;
        std::vector<double> row_scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = encoder_->encode(row_of(i, row_scratch), scratch);
        }
      },
      options_.pool);
  return out;
}

std::vector<BitVector> BatchEncoder::encode_matrix(std::span<const double> values,
                                                   std::size_t n_cols) const {
  if (n_cols == 0 || values.size() % n_cols != 0) {
    throw std::invalid_argument("BatchEncoder: values not a whole number of rows");
  }
  return encode_rows(values.size() / n_cols, [values, n_cols](std::size_t i,
                                                              std::vector<double>&) {
    return values.subspan(i * n_cols, n_cols);
  });
}

PackedHVs BatchEncoder::encode_packed(std::size_t n_rows, const RowFn& row_of) const {
  PackedHVs out(bits(), n_rows);
  parallel::parallel_for_chunks(
      0, n_rows,
      [&](std::size_t lo, std::size_t hi) {
        RecordEncoder::Scratch scratch;
        std::vector<double> row_scratch;
        for (std::size_t i = lo; i < hi; ++i) {
          out.set_row(i, encoder_->encode(row_of(i, row_scratch), scratch));
        }
      },
      options_.pool);
  return out;
}

}  // namespace hdc::hv
