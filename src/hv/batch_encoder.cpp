#include "hv/batch_encoder.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/timer.hpp"

namespace hdc::hv {

namespace {

/// Registry handles resolved once per process; recording is gated on
/// obs::enabled() so the disabled path costs one relaxed load per chunk.
struct EncodeMetrics {
  obs::Counter& rows = obs::counter("hv.encode.rows");
  obs::Counter& bits_set = obs::counter("hv.encode.bits_set");
  obs::Counter& chunks = obs::counter("hv.encode.chunks");
  obs::Histogram& chunk_seconds = obs::histogram("hv.encode.chunk_seconds");

  static EncodeMetrics& get() {
    static EncodeMetrics metrics;
    return metrics;
  }
};

std::size_t popcount_words(const std::uint64_t* words, std::size_t n) noexcept {
  return simd::active().popcount(words, n);
}

}  // namespace

std::vector<BitVector> BatchEncoder::encode_rows(std::size_t n_rows,
                                                 const RowFn& row_of) const {
  std::vector<BitVector> out(n_rows);
  parallel::parallel_for_chunks(
      0, n_rows,
      [&](std::size_t lo, std::size_t hi) {
        obs::Span span("hv.encode.chunk");
        const bool obs_on = obs::enabled();
        util::Timer timer;
        RecordEncoder::Scratch scratch;
        std::vector<double> row_scratch;
        std::size_t bits_set = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = encoder_->encode(row_of(i, row_scratch), scratch);
          if (obs_on) bits_set += out[i].popcount();
        }
        if (obs_on) {
          EncodeMetrics& metrics = EncodeMetrics::get();
          metrics.rows.add(hi - lo);
          metrics.bits_set.add(bits_set);
          metrics.chunks.increment();
          metrics.chunk_seconds.record(timer.seconds());
        }
      },
      options_.pool);
  return out;
}

std::vector<BitVector> BatchEncoder::encode_matrix(std::span<const double> values,
                                                   std::size_t n_cols) const {
  if (n_cols == 0 || values.size() % n_cols != 0) {
    throw std::invalid_argument("BatchEncoder: values not a whole number of rows");
  }
  return encode_rows(values.size() / n_cols, [values, n_cols](std::size_t i,
                                                              std::vector<double>&) {
    return values.subspan(i * n_cols, n_cols);
  });
}

PackedHVs BatchEncoder::encode_packed(std::size_t n_rows, const RowFn& row_of) const {
  PackedHVs out(bits(), n_rows);
  parallel::parallel_for_chunks(
      0, n_rows,
      [&](std::size_t lo, std::size_t hi) {
        obs::Span span("hv.encode.chunk");
        const bool obs_on = obs::enabled();
        util::Timer timer;
        RecordEncoder::Scratch scratch;
        std::vector<double> row_scratch;
        std::size_t bits_set = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          out.set_row(i, encoder_->encode(row_of(i, row_scratch), scratch));
          if (obs_on) bits_set += popcount_words(out.row(i), out.words_per_row());
        }
        if (obs_on) {
          EncodeMetrics& metrics = EncodeMetrics::get();
          metrics.rows.add(hi - lo);
          metrics.bits_set.add(bits_set);
          metrics.chunks.increment();
          metrics.chunk_seconds.record(timer.seconds());
        }
      },
      options_.pool);
  return out;
}

BitMatrix BatchEncoder::encode_bits(std::size_t n_rows, const RowFn& row_of) const {
  return BitMatrix::from_rows(encode_packed(n_rows, row_of));
}

ShardedBitMatrix BatchEncoder::encode_bits_chunked(std::size_t n_rows,
                                                   std::size_t shard_rows,
                                                   const RowFn& row_of) const {
  if (shard_rows == 0) shard_rows = n_rows;
  ShardedBitMatrix out;
  for (std::size_t begin = 0; begin < n_rows; begin += shard_rows) {
    const std::size_t count = std::min(shard_rows, n_rows - begin);
    // Remap shard-local row i to global row begin + i: every row is encoded
    // by the same (row, encoder) pure function no matter the chunking.
    out.append_shard(encode_bits(
        count, [&row_of, begin](std::size_t i, std::vector<double>& scratch) {
          return row_of(begin + i, scratch);
        }));
  }
  return out;
}

}  // namespace hdc::hv
