// Sub-linear approximate nearest-neighbour index over packed hypervectors.
//
// The paper's flagship classifier is 1-NN by Hamming distance, and hv/search
// answers it with an exact tiled sweep — O(n) words per query. This module
// adds the piece that makes "millions of stored patients" serveable: a
// coarse-filter / exact-rerank index in three stages, all running through
// the existing simd::Kernels dispatch table:
//
//   1. coarse quantizer — k-means-style cells over the packed vectors.
//      Centroids are majority bundles (the HDC prototype operation) refined
//      with a fixed number of Lloyd iterations under fixed seeds, so a build
//      is bit-identical across runs and thread counts. A query ranks all
//      cells by exact centroid distance and visits the `nprobe` closest.
//   2. sketch filter — every database row carries a short Hamming sketch
//      (64–512 deterministically seed-sampled bit positions, stored as
//      contiguous words in cell order, so probing a cell streams them
//      linearly). Sketch distances preserve Hamming neighbourhood structure
//      ("Efficient Hyperdimensional Computing"-style short HVs), so the
//      filter keeps only the most promising candidates per query.
//   3. exact rerank — the surviving candidates are scored with the same
//      full-width Hamming kernel the exact sweep uses, so every returned
//      distance is exact; approximation can only come from a candidate set
//      that misses the true neighbour.
//
// `SearchOptions::exact` bypasses all of it and routes to the hv/search
// kernels, byte-identical to nearest_neighbors / top_k_neighbors (the
// fallback contract, property-tested in tests/hv_ann_test.cpp). With
// `nprobe == cells()` and `rerank_fraction == 1.0` the index path visits
// every row and is also exactly identical to the exact kernels.
//
// The index never owns the database: it stores centroids, cell membership,
// sketches, and an FNV-1a fingerprint of the packed words it was built
// over. check_database() verifies the fingerprint (bundle load does this),
// and every search re-checks the cheap shape fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "hv/search.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::hv {
class BitShardSource;  // hv/sharded_bits.hpp
}

namespace hdc::hv::ann {

/// Build-time parameters. Zeros mean "resolve from the database size at
/// build"; the resolved values are what serialize, so a loaded index never
/// re-derives them.
struct Config {
  /// Sketch width in bits, 64–512 typical (rounded up to a whole word
  /// internally). 256 keeps the golden-dataset recall gate with a ~2%
  /// per-candidate overhead at dim 10000.
  std::size_t sketch_bits = 256;
  /// Number of coarse cells; 0 = ~sqrt(rows), clamped to [1, rows].
  std::size_t cells = 0;
  /// Default cells visited per query; 0 resolves to
  /// max(8, cells/8, ceil(600 * cells / rows)) clamped to cells — the last
  /// term floors the expected candidate count at ~600 rows, so small
  /// databases probe most of their cells (recall-safe) while large ones
  /// keep the sub-linear profile.
  std::size_t nprobe = 0;
  /// Lloyd refinement passes over the (sampled) rows.
  std::size_t lloyd_iterations = 4;
  /// Row-count cap for the Lloyd passes (strided deterministic sample);
  /// the final assignment always covers every row.
  std::size_t lloyd_sample = 16384;
  /// Fraction of sketch-scanned candidates that get an exact rerank ...
  double rerank_fraction = 0.15;
  /// ... but never fewer than this many (or than the requested k).
  std::size_t min_rerank = 128;
  /// Seed for sketch-position sampling; part of the bit-identity contract.
  std::uint64_t seed = 0x5EEDA11CE5ULL;

  bool operator==(const Config&) const noexcept = default;
};

struct SearchOptions {
  /// Cells visited per query; 0 = the index default (config().nprobe).
  std::size_t nprobe = 0;
  /// Bypass the index entirely: byte-identical to hv::nearest_neighbors /
  /// hv::top_k_neighbors on the same inputs.
  bool exact = false;
  /// Leave-one-out mode: query i skips database row i (requires
  /// queries.rows() == database.rows(), as in hv::SearchOptions).
  bool exclude_same_index = false;
  /// Worker pool (nullptr = process-wide pool). Results never depend on it.
  parallel::ThreadPool* pool = nullptr;
};

/// Work accounting for a search call, aggregated over all queries. The
/// word_ops unit matches hv.search.word_ops (64-bit XOR+popcount word
/// visits), so exact-vs-ann reductions are directly comparable.
struct SearchStats {
  std::uint64_t queries = 0;
  std::uint64_t probes = 0;      // cells visited
  std::uint64_t candidates = 0;  // rows sketch-scanned inside probed cells
  std::uint64_t reranked = 0;    // rows exactly reranked
  std::uint64_t word_ops = 0;    // centroid scan + sketch scan + rerank words
  std::uint64_t sketch_blocks = 0;  // contiguous cell spans batch-scanned
};

/// Build-side memory accounting, filled by build()/build_sharded(). The
/// peak is measured from the live container sizes plus the resident shard
/// at a handful of high-water checkpoints — the number the bounded-memory
/// gate in bench_ann compares against its analytic budget.
struct BuildStats {
  std::uint64_t bytes_peak = 0;       // working set + resident shard
  std::uint64_t shard_bytes_max = 0;  // largest single resident shard
  std::uint64_t index_bytes = 0;      // finished index storage
  std::uint64_t shards = 0;           // shards streamed per pass
};

namespace detail {
/// One resident shard of the build input: `rows` packed rows starting at
/// global row `begin`, row-major with the database's words-per-row stride.
/// `resident_bytes` is what the producing source holds for this shard
/// (build accounting only — never affects the result).
struct BuildShard {
  std::size_t begin = 0;
  std::size_t rows = 0;
  const std::uint64_t* words = nullptr;
  std::size_t resident_bytes = 0;
};
}  // namespace detail

class Index {
 public:
  Index() = default;

  /// Deterministic build over `database` (bit-identical for a fixed config
  /// across runs, thread counts, and SIMD tiers).
  [[nodiscard]] static Index build(const PackedHVs& database,
                                   const Config& config = {},
                                   parallel::ThreadPool* pool = nullptr,
                                   BuildStats* stats = nullptr);

  /// Build from a shard stream with at most one shard resident: pass 1
  /// collects the strided Lloyd sample and initial centroids shard-by-shard
  /// (and the database fingerprint), pass 2 assigns every row, pass 3 writes
  /// each row's sketch straight into its cell-grouped slot. Every collected
  /// quantity is a pure function of global row order, so the result is
  /// byte-identical (save() cmp) to build() over the concatenated rows at
  /// any shard count. The source is streamed three times; re-requesting a
  /// shard must reproduce identical bits (the BitShardSource contract).
  [[nodiscard]] static Index build_sharded(const BitShardSource& source,
                                           const Config& config = {},
                                           parallel::ThreadPool* pool = nullptr,
                                           BuildStats* stats = nullptr);

  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t cells() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t sketch_words() const noexcept { return sketch_words_; }
  /// Resolved build parameters (cells/nprobe are never 0 on a built index).
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// FNV-1a 64 over the packed database words (plus shape), captured at
  /// build time.
  [[nodiscard]] std::uint64_t database_fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Bytes held by the index's own storage (centroids, offsets, members,
  /// sketches, positions) — the "index storage" term of the streamed-build
  /// memory budget.
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return (centroids_.size() + offsets_.size() + members_.size() +
            sketches_.size()) * sizeof(std::uint64_t) +
           positions_.size() * sizeof(std::uint32_t);
  }

  /// Throws std::invalid_argument unless `database` has the fingerprint the
  /// index was built over. O(rows * words) — called at attach/load time, not
  /// per query.
  void check_database(const PackedHVs& database) const;

  /// Approximate nearest database row per query (exact distances, ties ->
  /// lowest database index among the reranked candidates). `database` must
  /// be the array the index was built over (shape-checked every call,
  /// fingerprint-checked via check_database()).
  [[nodiscard]] std::vector<Neighbor> nearest(const PackedHVs& queries,
                                              const PackedHVs& database,
                                              const SearchOptions& options = {},
                                              SearchStats* stats = nullptr) const;

  /// Approximate k nearest rows per query, sorted by (distance, index).
  [[nodiscard]] std::vector<std::vector<Neighbor>> top_k(
      const PackedHVs& queries, const PackedHVs& database, std::size_t k,
      const SearchOptions& options = {}, SearchStats* stats = nullptr) const;

  /// Serde token-stream round-trip (the bundle's `ann` section body).
  /// save(load(save(x))) is byte-identical; load throws std::runtime_error
  /// on any malformed input.
  void save(std::ostream& out) const;
  [[nodiscard]] static Index load(std::istream& in);

  bool operator==(const Index&) const noexcept = default;

 private:
  /// Shared build core: both entry points present their input as a stream
  /// of `num_shards` row-major shard views (build() as one whole-database
  /// shard), so streamed and in-memory builds run the identical arithmetic.
  [[nodiscard]] static Index build_impl(
      std::size_t rows, std::size_t bits, std::size_t num_shards,
      const std::function<detail::BuildShard(std::size_t)>& load_shard,
      const Config& config, parallel::ThreadPool* pool, BuildStats* stats);

  /// Sketch the row at `words` into `out` (sketch_words_ words).
  void sketch_row(const std::uint64_t* words, std::uint64_t* out) const;

  Config config_;                        // resolved at build
  std::size_t bits_ = 0;                 // database dimensionality
  std::size_t words_per_row_ = 0;        // full-width words per row
  std::size_t rows_ = 0;
  std::size_t sketch_words_ = 0;         // ceil(sketch_bits / 64)
  std::uint64_t fingerprint_ = 0;
  std::vector<std::uint32_t> positions_; // sampled bit positions (from seed)
  std::vector<std::uint64_t> centroids_; // cells * words_per_row_
  std::vector<std::uint64_t> offsets_;   // cells + 1, prefix sums into members_
  std::vector<std::uint64_t> members_;   // rows_ database indices, cell-grouped
  std::vector<std::uint64_t> sketches_;  // rows_ * sketch_words_, member order
};

}  // namespace hdc::hv::ann
