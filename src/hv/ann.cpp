#include "hv/ann.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "hv/sharded_bits.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace hdc::hv::ann {

namespace {

constexpr std::size_t kMaxSketchBits = 1024;
constexpr std::size_t kMaxRows = 1ULL << 27;
constexpr std::uint64_t kSketchSeedStream = 0x534b4554ULL;  // "SKET"
/// Auto-nprobe floors the expected candidate count at this many rows.
constexpr std::size_t kAutoProbeRowFloor = 600;

/// Registry handles resolved once per process; counts are derived outside
/// the kernels, so the disabled path costs one relaxed load per chunk.
struct AnnMetrics {
  obs::Counter& queries = obs::counter("hv.ann.queries");
  obs::Counter& probes = obs::counter("hv.ann.probes");
  obs::Counter& candidates = obs::counter("hv.ann.candidates");
  obs::Counter& reranked = obs::counter("hv.ann.reranked");
  obs::Counter& word_ops = obs::counter("hv.ann.word_ops");
  obs::Counter& sketch_blocks = obs::counter("hv.ann.sketch_blocks");

  static AnnMetrics& get() {
    static AnnMetrics metrics;
    return metrics;
  }
};

/// Platform-stable FNV-1a 64 over little-endian word bytes plus the shape,
/// so a fingerprint written on one machine verifies on any other.
std::uint64_t fingerprint_words(const std::uint64_t* words, std::size_t n,
                                std::size_t bits, std::size_t rows) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto eat = [&h](std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      h ^= (value >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  eat(bits);
  eat(rows);
  for (std::size_t i = 0; i < n; ++i) eat(words[i]);
  return h;
}

struct SketchCandidate {
  std::size_t sketch_distance;
  std::uint64_t row;
};

bool sketch_less(const SketchCandidate& a, const SketchCandidate& b) noexcept {
  return a.sketch_distance != b.sketch_distance
             ? a.sketch_distance < b.sketch_distance
             : a.row < b.row;
}

bool neighbor_less(const Neighbor& a, const Neighbor& b) noexcept {
  return a.distance != b.distance ? a.distance < b.distance : a.index < b.index;
}

}  // namespace

void Index::sketch_row(const std::uint64_t* words, std::uint64_t* out) const {
  std::fill(out, out + sketch_words_, 0ULL);
  for (std::size_t s = 0; s < positions_.size(); ++s) {
    const std::uint32_t bit = positions_[s];
    if ((words[bit >> 6] >> (bit & 63)) & 1ULL) {
      out[s >> 6] |= 1ULL << (s & 63);
    }
  }
}

Index Index::build(const PackedHVs& database, const Config& config,
                   parallel::ThreadPool* pool, BuildStats* stats) {
  if (database.empty()) {
    throw std::invalid_argument("ann::build: empty database");
  }
  // One whole-database shard: the streamed core then runs the identical
  // arithmetic the dedicated in-memory build used to.
  const detail::BuildShard whole{
      0, database.rows(), database.row(0),
      database.rows() * database.words_per_row() * sizeof(std::uint64_t)};
  return build_impl(
      database.rows(), database.bits(), 1,
      [&whole](std::size_t) { return whole; }, config, pool, stats);
}

Index Index::build_sharded(const BitShardSource& source, const Config& config,
                           parallel::ThreadPool* pool, BuildStats* stats) {
  if (source.rows() == 0 || source.num_shards() == 0) {
    throw std::invalid_argument("ann::build: empty database");
  }
  return build_impl(
      source.rows(), source.cols(), source.num_shards(),
      [&source](std::size_t s) {
        const hv::BitMatrix& shard = source.shard(s);
        const std::size_t resident =
            (shard.cols() * shard.words_per_column() +
             shard.rows() * shard.words_per_row() +
             shard.valid().word_count()) * sizeof(std::uint64_t);
        return detail::BuildShard{source.shard_begin(s), shard.rows(),
                                  shard.row_bits(0), resident};
      },
      config, pool, stats);
}

Index Index::build_impl(
    std::size_t n, std::size_t bits, std::size_t num_shards,
    const std::function<detail::BuildShard(std::size_t)>& load_shard,
    const Config& config, parallel::ThreadPool* pool, BuildStats* stats) {
  if (n > kMaxRows) {
    throw std::invalid_argument("ann::build: database too large");
  }
  if (config.sketch_bits == 0 || config.sketch_bits > kMaxSketchBits) {
    throw std::invalid_argument("ann::build: sketch_bits out of range");
  }
  if (!(config.rerank_fraction >= 0.0 && config.rerank_fraction <= 1.0)) {
    throw std::invalid_argument("ann::build: rerank_fraction must be in [0,1]");
  }
  obs::Span span("hv.ann.build");
  // One kernel-table load per build pass (the hot loops below run the
  // hoisted pointer, not a per-call simd::active()).
  const auto hamming = simd::active().hamming;

  const std::size_t words = (bits + 63) / 64;

  Index index;
  index.config_ = config;
  index.bits_ = bits;
  index.words_per_row_ = words;
  index.rows_ = n;

  // Resolve the sizing knobs against this database; the resolved values are
  // what serialize, so a reloaded index behaves identically.
  Config& c = index.config_;
  c.sketch_bits = std::min(c.sketch_bits, index.bits_);
  if (c.cells == 0) {
    c.cells = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(n))));
  }
  c.cells = std::clamp<std::size_t>(c.cells, 1, n);
  if (c.lloyd_sample == 0) c.lloyd_sample = n;
  index.sketch_words_ = (c.sketch_bits + 63) / 64;

  // Deterministic sketch positions: seeded sample without replacement,
  // sorted so sketch extraction walks each row monotonically.
  util::Rng position_rng(util::mix_seed(c.seed, kSketchSeedStream));
  std::vector<std::size_t> sampled =
      position_rng.sample_without_replacement(index.bits_, c.sketch_bits);
  std::sort(sampled.begin(), sampled.end());
  index.positions_.assign(sampled.begin(), sampled.end());

  // Build-side memory accounting: the high-water of (live working
  // containers + resident shard), checkpointed at every allocation step.
  BuildStats accounting;
  accounting.shards = num_shards;
  std::size_t shard_bytes = 0;  // currently resident shard
  const auto note_peak = [&](std::size_t live_bytes) {
    accounting.bytes_peak =
        std::max<std::uint64_t>(accounting.bytes_peak, live_bytes + shard_bytes);
  };
  const auto enter_shard = [&](std::size_t s) {
    const detail::BuildShard shard = load_shard(s);
    shard_bytes = shard.resident_bytes;
    accounting.shard_bytes_max =
        std::max<std::uint64_t>(accounting.shard_bytes_max, shard_bytes);
    return shard;
  };

  // Pass 1: one shard-by-shard sweep collects the evenly strided initial
  // centroids, the strided Lloyd sample, and the database fingerprint —
  // each a pure function of global row order, so the collected bytes are
  // invariant to where the shard boundaries fall.
  const std::size_t stride = (n + c.lloyd_sample - 1) / c.lloyd_sample;
  const std::size_t sample_count = (n + stride - 1) / stride;
  std::vector<std::uint64_t> centroids(c.cells * words);
  std::vector<std::uint64_t> sample(sample_count * words);
  std::uint64_t fp = 0xcbf29ce484222325ULL;
  const auto eat = [&fp](std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      fp ^= (value >> (8 * b)) & 0xffULL;
      fp *= 0x100000001b3ULL;
    }
  };
  eat(index.bits_);
  eat(n);
  std::size_t next_centroid = 0;
  std::size_t next_sample = 0;
  std::size_t seen = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const detail::BuildShard shard = enter_shard(s);
    if (shard.begin != seen || shard.rows == 0 || shard.words == nullptr) {
      throw std::invalid_argument(
          "ann::build_sharded: shards must be non-empty, contiguous and "
          "ascending");
    }
    note_peak((centroids.size() + sample.size()) * sizeof(std::uint64_t));
    const std::size_t end = shard.begin + shard.rows;
    for (std::size_t w = 0; w < shard.rows * words; ++w) eat(shard.words[w]);
    while (next_centroid < c.cells &&
           next_centroid * n / c.cells < end) {
      const std::size_t row = next_centroid * n / c.cells;
      std::copy_n(shard.words + (row - shard.begin) * words, words,
                  centroids.data() + next_centroid * words);
      ++next_centroid;
    }
    while (next_sample < sample_count && next_sample * stride < end) {
      const std::size_t row = next_sample * stride;
      std::copy_n(shard.words + (row - shard.begin) * words, words,
                  sample.data() + next_sample * words);
      ++next_sample;
    }
    seen = end;
  }
  if (seen != n) {
    throw std::invalid_argument(
        "ann::build_sharded: shards do not cover the database rows");
  }
  index.fingerprint_ = fp;

  // Nearest centroid of one row (ties -> lowest cell id).
  const auto nearest_cell = [&](const std::uint64_t* row,
                                std::size_t n_cells) -> std::size_t {
    std::size_t best_cell = 0;
    std::size_t best_distance = index.bits_ + 1;
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
      const std::size_t d = hamming(row, centroids.data() + cell * words, words);
      if (d < best_distance) {
        best_distance = d;
        best_cell = cell;
      }
    }
    return best_cell;
  };

  // Lloyd refinement over the collected sample (assignments are
  // embarrassingly parallel; accumulation is a serial pass, so results are
  // thread-count-invariant by construction).
  {
    std::vector<std::uint32_t> sample_cell(sample_count);
    std::vector<std::uint32_t> counts(c.cells * index.bits_);
    std::vector<std::uint64_t> cell_sizes_lloyd(c.cells);
    note_peak((centroids.size() + sample.size()) * sizeof(std::uint64_t) +
              sample_cell.size() * sizeof(std::uint32_t) +
              counts.size() * sizeof(std::uint32_t) +
              cell_sizes_lloyd.size() * sizeof(std::uint64_t));
    for (std::size_t iter = 0; iter < c.lloyd_iterations; ++iter) {
      parallel::parallel_for(
          0, sample_count,
          [&](std::size_t s) {
            sample_cell[s] = static_cast<std::uint32_t>(
                nearest_cell(sample.data() + s * words, c.cells));
          },
          pool);
      std::fill(counts.begin(), counts.end(), 0);
      std::fill(cell_sizes_lloyd.begin(), cell_sizes_lloyd.end(), 0);
      for (std::size_t s = 0; s < sample_count; ++s) {
        const std::size_t cell = sample_cell[s];
        ++cell_sizes_lloyd[cell];
        std::uint32_t* cell_counts = counts.data() + cell * index.bits_;
        const std::uint64_t* row = sample.data() + s * words;
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t word = row[w];
          while (word != 0) {
            const auto b = static_cast<std::size_t>(std::countr_zero(word));
            ++cell_counts[w * 64 + b];
            word &= word - 1;
          }
        }
      }
      for (std::size_t cell = 0; cell < c.cells; ++cell) {
        const std::uint64_t size = cell_sizes_lloyd[cell];
        if (size == 0) continue;  // empty cell keeps its previous centroid
        std::uint64_t* centroid = centroids.data() + cell * words;
        const std::uint32_t* cell_counts = counts.data() + cell * index.bits_;
        std::fill_n(centroid, words, 0ULL);
        for (std::size_t bit = 0; bit < index.bits_; ++bit) {
          // Majority with ties -> 1, matching hv::TiePolicy::kOne.
          if (2ULL * cell_counts[bit] >= size) {
            centroid[bit >> 6] |= 1ULL << (bit & 63);
          }
        }
      }
    }
  }
  sample.clear();
  sample.shrink_to_fit();

  // Pass 2: final assignment covers every row, one shard resident at a
  // time, then empty cells are compacted away (probing an empty cell would
  // waste a probe budget slot).
  std::vector<std::uint32_t> assignment(n);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const detail::BuildShard shard = enter_shard(s);
    note_peak(centroids.size() * sizeof(std::uint64_t) +
              assignment.size() * sizeof(std::uint32_t));
    parallel::parallel_for(
        0, shard.rows,
        [&](std::size_t r) {
          assignment[shard.begin + r] = static_cast<std::uint32_t>(
              nearest_cell(shard.words + r * words, c.cells));
        },
        pool);
  }
  std::vector<std::uint64_t> cell_sizes(c.cells);
  for (std::size_t i = 0; i < n; ++i) ++cell_sizes[assignment[i]];
  std::vector<std::uint32_t> remap(c.cells);
  std::size_t kept = 0;
  for (std::size_t cell = 0; cell < c.cells; ++cell) {
    remap[cell] = static_cast<std::uint32_t>(kept);
    if (cell_sizes[cell] != 0) {
      if (kept != cell) {
        std::copy_n(centroids.data() + cell * words, words,
                    centroids.data() + kept * words);
      }
      ++kept;
    }
  }
  centroids.resize(kept * words);
  index.centroids_ = std::move(centroids);
  c.cells = kept;
  if (c.nprobe == 0) {
    // Floor the expected candidate count (nprobe * rows / cells) at
    // kAutoProbeRowFloor rows: small databases probe most of their cells,
    // which is what the golden-dataset recall@1 >= 0.999 gate needs, while
    // large databases stay on the max(8, cells/8) sub-linear profile.
    const std::size_t floor_probes =
        (kAutoProbeRowFloor * c.cells + n - 1) / n;
    c.nprobe = std::max({std::size_t{8}, c.cells / 8, floor_probes});
  }
  c.nprobe = std::clamp<std::size_t>(c.nprobe, 1, c.cells);

  // Counting sort by (cell, row): rows ascend within each cell, the order
  // the rerank tie rule depends on.
  index.offsets_.assign(kept + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++index.offsets_[remap[assignment[i]] + 1];
  }
  for (std::size_t cell = 0; cell < kept; ++cell) {
    index.offsets_[cell + 1] += index.offsets_[cell];
  }
  index.members_.resize(n);
  {
    std::vector<std::uint64_t> cursor(index.offsets_.begin(),
                                      index.offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      index.members_[cursor[remap[assignment[i]]]++] = i;
    }
  }

  // Pass 3: sketches in member (cell-grouped) order, written straight into
  // their final slots while each shard is resident. Replaying the counting
  // sort's cursor walk in ascending global row order lands row i exactly
  // where members_ says it lives, so no row-ordered staging buffer (which
  // would break the one-shard memory bound) is ever allocated.
  index.sketches_.resize(n * index.sketch_words_);
  {
    std::vector<std::uint64_t> cursor(index.offsets_.begin(),
                                      index.offsets_.end() - 1);
    std::vector<std::uint64_t> slots;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const detail::BuildShard shard = enter_shard(s);
      slots.resize(shard.rows);
      for (std::size_t r = 0; r < shard.rows; ++r) {
        slots[r] = cursor[remap[assignment[shard.begin + r]]]++;
      }
      note_peak(index.centroids_.size() * sizeof(std::uint64_t) +
                assignment.size() * sizeof(std::uint32_t) +
                (index.offsets_.size() + index.members_.size() +
                 index.sketches_.size() + cursor.size() + slots.size()) *
                    sizeof(std::uint64_t));
      parallel::parallel_for(
          0, shard.rows,
          [&](std::size_t r) {
            index.sketch_row(shard.words + r * words,
                             index.sketches_.data() +
                                 slots[r] * index.sketch_words_);
          },
          pool);
    }
  }

  accounting.index_bytes = index.storage_bytes();
  // High-water gauge across all builds in this process (same pattern as
  // data.shard_bytes_peak).
  obs::Gauge& peak_gauge = obs::gauge("hv.ann.build_bytes_peak");
  if (static_cast<std::int64_t>(accounting.bytes_peak) > peak_gauge.value()) {
    peak_gauge.set(static_cast<std::int64_t>(accounting.bytes_peak));
  }
  if (stats != nullptr) *stats = accounting;
  return index;
}

void Index::check_database(const PackedHVs& database) const {
  if (empty()) throw std::logic_error("ann: index is empty");
  if (database.rows() != rows_ || database.bits() != bits_) {
    throw std::invalid_argument("ann: database shape does not match the index");
  }
  const std::uint64_t fp = fingerprint_words(
      database.row(0), rows_ * words_per_row_, bits_, rows_);
  if (fp != fingerprint_) {
    throw std::invalid_argument(
        "ann: database fingerprint mismatch (index was built over different "
        "vectors)");
  }
}

std::vector<Neighbor> Index::nearest(const PackedHVs& queries,
                                     const PackedHVs& database,
                                     const SearchOptions& options,
                                     SearchStats* stats) const {
  std::vector<std::vector<Neighbor>> lists =
      top_k(queries, database, 1, options, stats);
  std::vector<Neighbor> out;
  out.reserve(lists.size());
  for (const auto& list : lists) out.push_back(list.front());
  return out;
}

std::vector<std::vector<Neighbor>> Index::top_k(const PackedHVs& queries,
                                                const PackedHVs& database,
                                                std::size_t k,
                                                const SearchOptions& options,
                                                SearchStats* stats) const {
  if (k == 0) throw std::invalid_argument("ann: k must be >= 1");
  if (options.exact) {
    // Fallback contract: byte-identical to the exact tiled kernels.
    hv::SearchOptions exact_options;
    exact_options.exclude_same_index = options.exclude_same_index;
    exact_options.pool = options.pool;
    if (k == 1) {
      const std::vector<Neighbor> flat =
          nearest_neighbors(queries, database, exact_options);
      std::vector<std::vector<Neighbor>> out;
      out.reserve(flat.size());
      for (const Neighbor& n : flat) out.push_back({n});
      return out;
    }
    return top_k_neighbors(queries, database, k, exact_options);
  }

  if (empty()) throw std::logic_error("ann: index is empty");
  if (queries.empty()) throw std::invalid_argument("ann: empty queries");
  if (queries.bits() != bits_) {
    throw std::invalid_argument("ann: query dimensionality mismatch");
  }
  if (database.rows() != rows_ || database.bits() != bits_) {
    throw std::invalid_argument("ann: database shape does not match the index");
  }
  if (options.exclude_same_index && queries.rows() != rows_) {
    throw std::invalid_argument(
        "ann: exclude_same_index needs queries == database");
  }
  const std::size_t n_cells = cells();
  const std::size_t nprobe = std::clamp<std::size_t>(
      options.nprobe != 0 ? options.nprobe : config_.nprobe, 1, n_cells);
  const std::size_t words = words_per_row_;

  std::vector<std::vector<Neighbor>> out(queries.rows());
  SearchStats totals;
  std::mutex totals_mutex;
  // One kernel-table load per query pass, shared by every chunk (the per-row
  // loops below never re-resolve the dispatch table).
  const simd::Kernels& kernels = simd::active();

  parallel::parallel_for_chunks(
      0, queries.rows(),
      [&](std::size_t q_lo, std::size_t q_hi) {
        obs::Span span("hv.ann.chunk");
        const auto hamming = kernels.hamming;
        const auto sketch_scan = kernels.sketch_scan;
        SearchStats local;
        std::vector<SketchCandidate> candidates;
        std::vector<std::size_t> cell_order(n_cells);
        std::vector<std::size_t> cell_distance(n_cells);
        std::vector<std::uint64_t> query_sketch(sketch_words_);
        std::vector<std::uint32_t> sketch_distance;
        std::vector<Neighbor> reranked;
        for (std::size_t q = q_lo; q < q_hi; ++q) {
          const std::uint64_t* qrow = queries.row(q);
          // 1. Rank all cells by exact centroid distance (ties -> lowest
          // cell id via stable sort over ascending ids).
          for (std::size_t cell = 0; cell < n_cells; ++cell) {
            cell_order[cell] = cell;
            cell_distance[cell] =
                hamming(qrow, centroids_.data() + cell * words, words);
          }
          local.word_ops += n_cells * words;
          std::stable_sort(cell_order.begin(), cell_order.end(),
                           [&](std::size_t a, std::size_t b) {
                             return cell_distance[a] < cell_distance[b];
                           });

          // 2. Sketch-scan the members of the nprobe closest cells. Each
          // cell's sketches are one contiguous span, so the whole cell goes
          // through the batched sketch_scan kernel in one call.
          sketch_row(qrow, query_sketch.data());
          candidates.clear();
          std::uint64_t scanned = 0;
          for (std::size_t p = 0; p < nprobe; ++p) {
            const std::size_t cell = cell_order[p];
            const std::uint64_t lo = offsets_[cell];
            const std::uint64_t hi = offsets_[cell + 1];
            const std::size_t span_rows = static_cast<std::size_t>(hi - lo);
            sketch_distance.resize(span_rows);
            sketch_scan(query_sketch.data(),
                        sketches_.data() + lo * sketch_words_, span_rows,
                        sketch_words_, sketch_distance.data());
            ++local.sketch_blocks;
            scanned += span_rows;
            for (std::uint64_t m = lo; m < hi; ++m) {
              const std::uint64_t row = members_[m];
              if (options.exclude_same_index && row == q) continue;
              candidates.push_back(SketchCandidate{
                  static_cast<std::size_t>(sketch_distance[m - lo]), row});
            }
          }
          local.probes += nprobe;
          local.candidates += candidates.size();
          local.word_ops += scanned * sketch_words_;

          std::vector<Neighbor>& result = out[q];
          if (candidates.empty()) {
            // Degenerate probe set (e.g. leave-one-out removed the only
            // member): answer exactly over the whole database.
            result.reserve(std::min(k, rows_));
            for (std::size_t j = 0; j < rows_; ++j) {
              if (options.exclude_same_index && j == q) continue;
              const Neighbor cand{j, hamming(qrow, database.row(j), words)};
              if (result.size() == k && !neighbor_less(cand, result.back())) {
                continue;
              }
              auto pos = std::upper_bound(result.begin(), result.end(), cand,
                                          neighbor_less);
              result.insert(pos, cand);
              if (result.size() > k) result.pop_back();
            }
            local.reranked += rows_;
            local.word_ops += rows_ * words;
            ++local.queries;
            continue;
          }

          // 3. Exact rerank of the sketch-filtered survivors.
          std::size_t rerank = std::max(
              {config_.min_rerank, k,
               static_cast<std::size_t>(std::ceil(
                   config_.rerank_fraction *
                   static_cast<double>(candidates.size())))});
          rerank = std::min(rerank, candidates.size());
          if (rerank < candidates.size()) {
            std::nth_element(candidates.begin(),
                             candidates.begin() +
                                 static_cast<std::ptrdiff_t>(rerank - 1),
                             candidates.end(), sketch_less);
          }
          reranked.clear();
          reranked.reserve(rerank);
          for (std::size_t i = 0; i < rerank; ++i) {
            const std::uint64_t row = candidates[i].row;
            reranked.push_back(
                Neighbor{row, hamming(qrow, database.row(row), words)});
          }
          std::sort(reranked.begin(), reranked.end(), neighbor_less);
          if (reranked.size() > k) reranked.resize(k);
          result = reranked;
          local.reranked += rerank;
          local.word_ops += rerank * words;
          ++local.queries;
        }
        if (obs::enabled()) {
          AnnMetrics& metrics = AnnMetrics::get();
          metrics.queries.add(local.queries);
          metrics.probes.add(local.probes);
          metrics.candidates.add(local.candidates);
          metrics.reranked.add(local.reranked);
          metrics.word_ops.add(local.word_ops);
          metrics.sketch_blocks.add(local.sketch_blocks);
        }
        const std::lock_guard<std::mutex> lock(totals_mutex);
        totals.queries += local.queries;
        totals.probes += local.probes;
        totals.candidates += local.candidates;
        totals.reranked += local.reranked;
        totals.word_ops += local.word_ops;
        totals.sketch_blocks += local.sketch_blocks;
      },
      options.pool);

  if (stats != nullptr) *stats = totals;
  return out;
}

void Index::save(std::ostream& out) const {
  if (empty()) throw std::logic_error("ann: save of an empty index");
  util::serde::Writer w(out);
  w.tag("hv.ann").tag("v1").nl();
  w.u64(bits_).u64(rows_).u64(config_.sketch_bits).u64(config_.cells)
      .u64(config_.nprobe).nl();
  w.u64(config_.lloyd_iterations).u64(config_.lloyd_sample)
      .f64(config_.rerank_fraction).u64(config_.min_rerank)
      .u64(config_.seed).nl();
  w.u64(fingerprint_).nl();
  w.words(centroids_).nl();
  w.vec_u64(offsets_).nl();
  w.vec_u64(members_).nl();
  w.words(sketches_).nl();
}

Index Index::load(std::istream& in) {
  util::serde::Reader r(in, "load hv.ann");
  r.expect("hv.ann", "index tag");
  r.expect("v1", "format version");
  Index index;
  index.bits_ = r.count("bits", 1ULL << 26);
  index.rows_ = r.count("rows", kMaxRows);
  index.config_.sketch_bits = r.count("sketch_bits", kMaxSketchBits);
  index.config_.cells = r.count("cells", kMaxRows);
  index.config_.nprobe = r.count("nprobe", kMaxRows);
  index.config_.lloyd_iterations = r.count("lloyd_iterations", 1ULL << 16);
  index.config_.lloyd_sample = r.count("lloyd_sample", kMaxRows);
  index.config_.rerank_fraction = r.f64("rerank_fraction");
  index.config_.min_rerank = r.count("min_rerank", kMaxRows);
  index.config_.seed = r.u64("seed");
  index.fingerprint_ = r.u64("fingerprint");

  if (index.bits_ == 0 || index.rows_ == 0) {
    throw r.error("empty index");
  }
  const Config& c = index.config_;
  if (c.sketch_bits == 0 || c.sketch_bits > index.bits_) {
    throw r.error("sketch_bits out of range");
  }
  if (c.cells == 0 || c.cells > index.rows_) {
    throw r.error("cell count out of range");
  }
  if (c.nprobe == 0 || c.nprobe > c.cells) {
    throw r.error("nprobe out of range");
  }
  if (!(c.rerank_fraction >= 0.0 && c.rerank_fraction <= 1.0)) {
    throw r.error("rerank_fraction out of range");
  }
  index.words_per_row_ = (index.bits_ + 63) / 64;
  index.sketch_words_ = (c.sketch_bits + 63) / 64;

  index.centroids_ = r.read_words("centroids", c.cells * index.words_per_row_);
  if (index.centroids_.size() != c.cells * index.words_per_row_) {
    throw r.error("centroid word count mismatch");
  }
  index.offsets_ = r.vec_u64("cell offsets", c.cells + 1);
  if (index.offsets_.size() != c.cells + 1 || index.offsets_.front() != 0 ||
      index.offsets_.back() != index.rows_) {
    throw r.error("bad cell offsets");
  }
  for (std::size_t cell = 0; cell < c.cells; ++cell) {
    if (index.offsets_[cell + 1] <= index.offsets_[cell]) {
      throw r.error("cell offsets must be strictly increasing (no empty cells)");
    }
  }
  index.members_ = r.vec_u64("cell members", index.rows_);
  if (index.members_.size() != index.rows_) {
    throw r.error("member count mismatch");
  }
  std::vector<bool> seen(index.rows_, false);
  for (std::size_t cell = 0; cell < c.cells; ++cell) {
    for (std::uint64_t m = index.offsets_[cell]; m < index.offsets_[cell + 1];
         ++m) {
      const std::uint64_t row = index.members_[m];
      if (row >= index.rows_ || seen[row]) {
        throw r.error("cell members are not a permutation of the rows");
      }
      seen[row] = true;
      if (m > index.offsets_[cell] && index.members_[m - 1] >= row) {
        throw r.error("cell members must ascend within a cell");
      }
    }
  }
  index.sketches_ =
      r.read_words("sketches", index.rows_ * index.sketch_words_);
  if (index.sketches_.size() != index.rows_ * index.sketch_words_) {
    throw r.error("sketch word count mismatch");
  }

  // Sketch positions are a pure function of (seed, bits, sketch_bits);
  // recomputing them keeps the serialized body small and tamper-evident.
  util::Rng position_rng(util::mix_seed(c.seed, kSketchSeedStream));
  std::vector<std::size_t> sampled =
      position_rng.sample_without_replacement(index.bits_, c.sketch_bits);
  std::sort(sampled.begin(), sampled.end());
  index.positions_.assign(sampled.begin(), sampled.end());
  return index;
}

}  // namespace hdc::hv::ann
