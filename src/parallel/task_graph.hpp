// Dependency-aware task scheduler with per-worker work-stealing deques.
//
// A TaskGraph holds a DAG of tasks (add() with explicit dependency lists)
// and executes it on a ThreadPool: run() seeds every dependency-free task
// into per-worker deques, then the calling thread plus one driver task per
// remaining pool worker drain them. Each worker pops its own deque LIFO
// (completion of a task pushes its newly-ready children onto the finishing
// worker's deque, so chains stay cache-hot) and steals FIFO from the other
// deques when its own runs dry.
//
// Blocking is always cooperative: wait(id) called from inside a running
// task executes other pending tasks until the awaited one completes, so a
// task may submit follow-up work and wait on it without stalling the pool —
// the hazard ThreadPool::wait_idle() now refuses outright. add() is legal
// from inside a running task (the new task is scheduled as soon as its
// dependencies allow).
//
// Determinism contract: the scheduler chooses *when and where* tasks run,
// never *what they compute*. Tasks communicate only through their explicit
// dependency edges, and any randomness inside a task must come from seeds
// fixed at add() time, so results are identical for every worker count —
// the grid runner (core/grid) relies on this to stay bit-identical to its
// serial reference.
//
// Observability: graph.tasks_executed / graph.steals counters and the
// graph.ready_depth gauge feed the process-wide obs registry; each task body
// runs under an obs::Span named by the task's `name` argument (which must be
// a string literal, same contract as Span itself).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace hdc::parallel {

class ThreadPool;

class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Opaque per-run scheduling state (worker deques, sleep bookkeeping).
  /// Public only so the implementation's thread-local worker context can
  /// name it; defined in task_graph.cpp.
  struct RunState;

  TaskGraph();
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Register a task. `name` labels the task's trace span and must be a
  /// string literal (or otherwise outlive the process trace). `deps` lists
  /// tasks that must complete before this one may start; every id must come
  /// from an earlier add() on this graph. Tasks must not throw. Thread-safe;
  /// callable from inside a running task.
  TaskId add(const char* name, std::function<void()> fn,
             std::span<const TaskId> deps = {});
  TaskId add(const char* name, std::function<void()> fn,
             std::initializer_list<TaskId> deps);

  /// Execute the whole graph and block until every task (including any added
  /// mid-run) has completed. The calling thread participates as a worker;
  /// pool->size() - 1 driver tasks are submitted so the total worker count
  /// equals the pool size (nullptr = process-wide pool). A pool of size 1
  /// runs the graph entirely on the calling thread. Must not be called
  /// concurrently with itself or from inside one of this graph's tasks.
  void run(ThreadPool* pool = nullptr);

  /// Block until task `id` completes. From inside one of this graph's
  /// workers this cooperatively executes other pending tasks instead of
  /// sleeping, so waiting on a dependency can never deadlock the pool.
  void wait(TaskId id);

  /// True once task `id` has finished executing.
  [[nodiscard]] bool done(TaskId id) const;

  [[nodiscard]] std::size_t task_count() const;

  /// Tasks executed / deque steals during run() calls so far.
  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Task;

  void execute(RunState* state, std::size_t worker, TaskId id);
  bool try_run_one(RunState* state, std::size_t worker);
  void worker_drain(RunState* state, std::size_t worker);

  mutable std::mutex mutex_;           // guards tasks_ and scheduling state
  std::condition_variable cv_;         // "ready work or graph finished"
  std::deque<Task> tasks_;             // stable addresses; grows only
  std::size_t remaining_ = 0;          // added but not yet completed
  std::shared_ptr<RunState> state_;    // non-null while run() is active
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace hdc::parallel
