// Work-queue thread pool with a deterministic parallel_for wrapper.
//
// Results of all library algorithms are independent of thread count: parallel
// loops partition the index space statically and any per-item randomness is
// derived by hashing (seed, item index) rather than by sharing a generator.
//
// Every pool feeds the process-wide obs registry (pool.tasks_submitted /
// pool.tasks_completed counters, pool.queue_depth gauge, pool.task_seconds
// histogram) when obs::enabled(); the per-instance stats accessors below are
// always live and cost one relaxed atomic each.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hdc::parallel {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  /// Submitting from inside a worker of this pool is allowed (the task is
  /// queued normally) — but see wait_idle() for the blocking hazard.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  ///
  /// Calling this from inside a worker of the *same* pool throws
  /// std::logic_error instead of deadlocking: the waiting worker would
  /// occupy the very slot the queued tasks need (with every worker waiting,
  /// the pool stalls forever). Code that must block on other tasks from
  /// inside a task should use parallel::TaskGraph, whose wait() cooperatively
  /// executes pending work instead of sleeping.
  void wait_idle();

  /// The pool whose worker loop is running on the calling thread, or
  /// nullptr when called from any non-worker thread.
  [[nodiscard]] static ThreadPool* current() noexcept;

  /// Lifetime totals for this pool instance. After wait_idle() returns,
  /// tasks_submitted() == tasks_completed() and queue_depth() == 0.
  [[nodiscard]] std::uint64_t tasks_submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Tasks queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
};

/// Invoke fn(i) for i in [begin, end). Splits the range into contiguous
/// chunks, one per worker. Blocks until complete. `fn` must be thread-safe
/// for distinct indices. Grain below which the loop runs inline: 256.
/// Called from inside a worker of `pool` itself, the loop runs inline on the
/// calling thread (same results, no nested wait_idle()).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr);

/// Chunked variant: fn(chunk_begin, chunk_end) once per chunk. Useful when
/// per-iteration dispatch overhead matters (e.g. Hamming all-pairs rows).
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         ThreadPool* pool = nullptr);

/// std::thread::hardware_concurrency() clamped to at least 1 — the worker
/// count a default-constructed ThreadPool ends up with.
[[nodiscard]] std::size_t hardware_threads() noexcept;

}  // namespace hdc::parallel
