#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace hdc::parallel {

namespace {

/// Set for the lifetime of each worker loop; lets wait_idle() detect the
/// self-deadlock case and parallel_for() fall back to inline execution.
thread_local ThreadPool* t_current_pool = nullptr;

/// Registry handles resolved once; all pool instances share these.
struct PoolMetrics {
  obs::Counter& submitted = obs::counter("pool.tasks_submitted");
  obs::Counter& completed = obs::counter("pool.tasks_completed");
  obs::Gauge& queue_depth = obs::gauge("pool.queue_depth");
  obs::Histogram& task_seconds = obs::histogram("pool.task_seconds");

  static PoolMetrics& get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (obs::trace_enabled()) {
    // Capture the submitter's span context and open a flow arrow, so the
    // worker-side execution parents back to (and is visually linked with)
    // the code that scheduled it.
    const obs::SpanContext context = obs::current_span_context();
    const std::uint64_t flow = obs::flow_begin("pool.submit");
    task = [context, flow, inner = std::move(task)] {
      obs::ContextGuard guard(context);
      obs::flow_end("pool.submit", flow);
      obs::Span span("pool.task");
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    PoolMetrics& metrics = PoolMetrics::get();
    metrics.submitted.increment();
    metrics.queue_depth.add(1);
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (t_current_pool == this) {
    throw std::logic_error(
        "ThreadPool::wait_idle() called from inside a worker of the same "
        "pool: this deadlocks once every worker waits. Use "
        "parallel::TaskGraph for blocking dependencies inside tasks.");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool* ThreadPool::current() noexcept { return t_current_pool; }

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::size_t hardware_threads() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::enabled()) {
      PoolMetrics& metrics = PoolMetrics::get();
      metrics.queue_depth.add(-1);
      util::Timer timer;
      task();
      metrics.task_seconds.record(timer.seconds());
      metrics.completed.increment();
    } else {
      task();
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {
constexpr std::size_t kInlineGrain = 256;
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t workers = pool->size();
  // Inline when the range is small, the pool is serial, or we are already on
  // a worker of this pool (a nested wait_idle() would deadlock; the chunk
  // results are identical either way).
  if (n < kInlineGrain || workers <= 1 || ThreadPool::current() == pool) {
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers * 4, n);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::size_t cursor = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t lo = cursor;
    const std::size_t hi = cursor + len;
    cursor = hi;
    pool->submit([&fn, lo, hi] { fn(lo, hi); });
  }
  pool->wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, ThreadPool* pool) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      pool);
}

}  // namespace hdc::parallel
