#include "parallel/task_graph.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace hdc::parallel {

namespace {

struct GraphMetrics {
  obs::Counter& executed = obs::counter("graph.tasks_executed");
  obs::Counter& steals = obs::counter("graph.steals");
  obs::Gauge& ready_depth = obs::gauge("graph.ready_depth");
  obs::Histogram& task_seconds = obs::histogram("graph.task_seconds");

  static GraphMetrics& get() {
    static GraphMetrics metrics;
    return metrics;
  }
};

}  // namespace

struct TaskGraph::Task {
  const char* name = nullptr;
  std::function<void()> fn;
  std::size_t pending = 0;  // dependencies not yet completed
  bool queued = false;      // currently sitting in some worker deque
  bool done = false;
  std::vector<TaskId> children;
  // Trace causality, captured at add(): the submitter's span becomes the
  // parent of this task's span, and the flow id links add → execute with a
  // Chrome flow arrow. Both are 0 when tracing was off at add time.
  obs::SpanContext trace_parent{};
  std::uint64_t trace_flow = 0;
};

struct TaskGraph::RunState {
  // One deque per worker, each behind its own mutex so task hand-off never
  // touches the graph-wide lock: owners push/pop the back (LIFO keeps a
  // finished task's children hot), thieves pop the front (FIFO steals the
  // oldest — usually largest-subtree — entry).
  struct WorkerDeque {
    std::mutex m;
    std::deque<TaskId> q;
  };

  explicit RunState(std::size_t workers) : deques(workers) {}

  std::vector<WorkerDeque> deques;
  // Queued-but-unclaimed tasks, guarded by the graph mutex (it is the
  // sleep/wake predicate). Transiently negative when a thief pops a task
  // before its push is counted, hence signed.
  std::ptrdiff_t ready = 0;
  std::size_t drivers_active = 0;
};

namespace {

/// Innermost graph worker context for the calling thread; `prev` chains
/// outer contexts so nested graphs (a task running a private sub-graph)
/// resolve wait() against the right one.
struct WorkerCtx {
  const TaskGraph* graph = nullptr;
  TaskGraph::RunState* state = nullptr;
  std::size_t worker = 0;
  WorkerCtx* prev = nullptr;
};

thread_local WorkerCtx* t_worker_ctx = nullptr;

class CtxGuard {
 public:
  CtxGuard(const TaskGraph* graph, TaskGraph::RunState* state, std::size_t worker)
      : ctx_{graph, state, worker, t_worker_ctx} {
    t_worker_ctx = &ctx_;
  }
  ~CtxGuard() { t_worker_ctx = ctx_.prev; }

  CtxGuard(const CtxGuard&) = delete;
  CtxGuard& operator=(const CtxGuard&) = delete;

 private:
  WorkerCtx ctx_;
};

/// The calling thread's context for `graph`, or nullptr if this thread is
/// not currently one of its workers.
WorkerCtx* find_ctx(const TaskGraph* graph) {
  for (WorkerCtx* c = t_worker_ctx; c != nullptr; c = c->prev) {
    if (c->graph == graph) return c;
  }
  return nullptr;
}

}  // namespace

TaskGraph::TaskGraph() = default;
TaskGraph::~TaskGraph() = default;

TaskGraph::TaskId TaskGraph::add(const char* name, std::function<void()> fn,
                                 std::span<const TaskId> deps) {
  RunState* state = nullptr;
  std::size_t push_worker = 0;
  TaskId id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = tasks_.size();
    for (const TaskId dep : deps) {
      if (dep >= id) throw std::invalid_argument("TaskGraph::add: unknown dep");
    }
    tasks_.emplace_back();
    Task& task = tasks_.back();
    task.name = name;
    task.fn = std::move(fn);
    if (obs::trace_enabled()) {
      task.trace_parent = obs::current_span_context();
      task.trace_flow = obs::flow_begin("graph.submit");
    }
    for (const TaskId dep : deps) {
      if (!tasks_[dep].done) {
        tasks_[dep].children.push_back(id);
        ++task.pending;
      }
    }
    ++remaining_;
    if (state_ != nullptr && task.pending == 0) {
      // Added mid-run with all dependencies met: queue it right away, on the
      // submitting worker's own deque when we are one.
      task.queued = true;
      state = state_.get();
      const WorkerCtx* ctx = find_ctx(this);
      if (ctx != nullptr) push_worker = ctx->worker;
    }
  }
  if (state != nullptr) {
    {
      std::lock_guard<std::mutex> qlock(state->deques[push_worker].m);
      state->deques[push_worker].q.push_back(id);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++state->ready;
    if (obs::enabled()) GraphMetrics::get().ready_depth.add(1);
    cv_.notify_one();
  }
  return id;
}

TaskGraph::TaskId TaskGraph::add(const char* name, std::function<void()> fn,
                                 std::initializer_list<TaskId> deps) {
  return add(name, std::move(fn), std::span<const TaskId>(deps.begin(), deps.size()));
}

void TaskGraph::execute(RunState* state, std::size_t worker, TaskId id) {
  Task* task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task = &tasks_[id];  // deque addresses are stable across add()
  }
  {
    // Adopt the submitter's span as parent and close the flow arrow before
    // opening this task's span, so the span parents across the thread
    // boundary. The Span itself is trace-gated, so this also covers the
    // trace-on / metrics-off configuration.
    obs::ContextGuard context_guard(task->trace_parent);
    obs::flow_end("graph.submit", task->trace_flow);
    if (obs::enabled()) {
      GraphMetrics& metrics = GraphMetrics::get();
      util::Timer timer;
      {
        obs::Span span(task->name);
        task->fn();
      }
      metrics.task_seconds.record(timer.seconds());
      metrics.executed.increment();
    } else {
      obs::Span span(task->name);
      task->fn();
    }
  }
  executed_.fetch_add(1, std::memory_order_relaxed);

  // Completion: unblock children, queue the newly ready ones on this
  // worker's deque, and wake sleepers (both idle workers and wait() callers).
  std::vector<TaskId> ready_children;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task->done = true;
    task->fn = nullptr;  // release captures eagerly (cache refs, datasets)
    for (const TaskId child : task->children) {
      if (--tasks_[child].pending == 0) {
        tasks_[child].queued = true;
        ready_children.push_back(child);
      }
    }
    --remaining_;
  }
  if (!ready_children.empty()) {
    {
      std::lock_guard<std::mutex> qlock(state->deques[worker].m);
      for (const TaskId child : ready_children) {
        state->deques[worker].q.push_back(child);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    state->ready += static_cast<std::ptrdiff_t>(ready_children.size());
    if (obs::enabled()) {
      GraphMetrics::get().ready_depth.add(
          static_cast<std::int64_t>(ready_children.size()));
    }
  }
  cv_.notify_all();
}

bool TaskGraph::try_run_one(RunState* state, std::size_t worker) {
  const std::size_t n = state->deques.size();
  TaskId id = 0;
  bool got = false;
  bool stolen = false;
  {
    // Own deque first, newest entry (LIFO).
    RunState::WorkerDeque& own = state->deques[worker];
    std::lock_guard<std::mutex> qlock(own.m);
    if (!own.q.empty()) {
      id = own.q.back();
      own.q.pop_back();
      got = true;
    }
  }
  if (!got) {
    // Steal the oldest entry (FIFO) from the next non-empty victim.
    for (std::size_t i = 1; i < n && !got; ++i) {
      RunState::WorkerDeque& victim = state->deques[(worker + i) % n];
      std::lock_guard<std::mutex> qlock(victim.m);
      if (!victim.q.empty()) {
        id = victim.q.front();
        victim.q.pop_front();
        got = true;
        stolen = true;
      }
    }
  }
  if (!got) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --state->ready;
  }
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    GraphMetrics& metrics = GraphMetrics::get();
    metrics.ready_depth.add(-1);
    if (stolen) metrics.steals.increment();
  }
  execute(state, worker, id);
  return true;
}

void TaskGraph::worker_drain(RunState* state, std::size_t worker) {
  CtxGuard guard(this, state, worker);
  for (;;) {
    if (try_run_one(state, worker)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (remaining_ == 0) return;
    cv_.wait(lock, [&] { return state->ready > 0 || remaining_ == 0; });
    if (remaining_ == 0) return;
  }
}

void TaskGraph::run(ThreadPool* pool) {
  if (pool == nullptr) pool = &ThreadPool::global();
  std::shared_ptr<RunState> state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != nullptr) {
      throw std::logic_error("TaskGraph::run: already running");
    }
    state = std::make_shared<RunState>(pool->size());
    state_ = state;
    // Seed every runnable task round-robin across the worker deques.
    std::size_t w = 0;
    std::ptrdiff_t seeded = 0;
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      Task& task = tasks_[id];
      if (task.done || task.queued || task.pending != 0) continue;
      task.queued = true;
      state->deques[w].q.push_back(id);  // no contention before drivers start
      w = (w + 1) % state->deques.size();
      ++seeded;
    }
    state->ready = seeded;
    if (obs::enabled() && seeded > 0) {
      GraphMetrics::get().ready_depth.add(static_cast<std::int64_t>(seeded));
    }
    state->drivers_active = state->deques.size() - 1;
  }

  // One driver per remaining pool worker; the caller is worker 0. Drivers
  // keep the state alive on their own, so a driver that the pool only gets
  // to after the graph finished still exits cleanly.
  for (std::size_t w = 1; w < state->deques.size(); ++w) {
    pool->submit([this, state, w] {
      worker_drain(state.get(), w);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--state->drivers_active == 0) cv_.notify_all();
    });
  }
  worker_drain(state.get(), 0);

  // The graph is done; wait for every driver to leave our member functions
  // before releasing the run state (they may still be waking up).
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return state->drivers_active == 0; });
  state_ = nullptr;
}

void TaskGraph::wait(TaskId id) {
  WorkerCtx* ctx = find_ctx(this);
  if (ctx == nullptr) {
    // Plain external wait (e.g. another thread watching progress).
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return id < tasks_.size() && tasks_[id].done; });
    return;
  }
  // Cooperative wait: execute pending tasks until the target completes. If
  // nothing is runnable (the target is mid-flight on another worker), sleep
  // until any task completes and re-check.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (tasks_[id].done) return;
    }
    if (try_run_one(ctx->state, ctx->worker)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return tasks_[id].done || ctx->state->ready > 0 || remaining_ == 0;
    });
    if (tasks_[id].done) return;
    if (remaining_ == 0) {
      throw std::logic_error("TaskGraph::wait: task can no longer run");
    }
  }
}

bool TaskGraph::done(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return id < tasks_.size() && tasks_[id].done;
}

std::size_t TaskGraph::task_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

}  // namespace hdc::parallel
