// obs::WindowedHistogram — streaming latency quantiles over rotating time
// windows.
//
// A fixed-bucket obs::Histogram accumulates forever, so its distribution is
// dominated by ancient samples; a long-running serve process wants "p99 over
// the last minute". WindowedHistogram keeps `windows` log-bucketed sketches,
// each covering `window_ns` of wall time; record() lands in the window of
// the current epoch (rotating a stale slot in place, so memory is bounded at
// windows x shards x buckets cells forever), and sample() aggregates the
// retained windows into streaming p50/p90/p99 estimates.
//
// Buckets are exponential: bucket 0 holds values <= min_value, bucket b
// holds (min_value*2^(b-1), min_value*2^b], plus one overflow bucket — so a
// quantile estimate is within one 2x bucket of the exact order statistic
// (linear interpolation inside the bucket tightens typical error well below
// that bound; obs_quantile_test pins the envelope against an exact oracle).
//
// Recording follows the same discipline as Counter/Histogram: sharded
// relaxed atomics (no locks, no cache-line ping-pong), gated on the same
// obs::enabled() flag, compiled out with -DHDC_OBS_DISABLE, and never
// feeding back into any computation. Window rotation is approximate at the
// boundary: a record racing the thread that rotates a slot may land in the
// cleared window or be discarded with it — bounded telemetry slop, never a
// data race (every cell is atomic). Lifetime count/sum are exact.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace hdc::obs {

struct WindowedOptions {
  /// Upper edge of the first bucket; every later edge doubles.
  double min_value = 1e-6;
  /// Log buckets above min_value (plus an implicit overflow bucket).
  /// 36 doubling buckets span 1 µs .. ~19 h of latency.
  std::size_t buckets = 36;
  /// Wall-time covered by one window before it rotates.
  std::uint64_t window_ns = 15'000'000'000ULL;
  /// Windows retained; quantiles aggregate over windows * window_ns of
  /// history. Must be >= 2 (the current window is always partial).
  std::size_t windows = 4;
};

class WindowedHistogram {
 public:
  /// Create through Registry::windowed_histogram(); public for emplace.
  WindowedHistogram(std::string name, const WindowedOptions& options);
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Record one value (seconds for latency instruments) into the current
  /// window. Lock-free; a single relaxed load when recording is off.
  void record(double value) noexcept;

  /// Aggregate the retained windows into a point-in-time sample.
  [[nodiscard]] WindowedSample sample() const;

  /// Zero every window and the lifetime totals (name stays registered).
  void reset() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const WindowedOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;
  void rotate_slot(std::size_t slot) noexcept;

  std::string name_;
  WindowedOptions options_;
  std::size_t n_buckets_;  // options_.buckets + 2 (underflow-at-min + overflow)
  // Per-window epoch tag (epoch + 1; 0 = never written) and per-window
  // exact count/sum for the aggregate sample.
  std::unique_ptr<std::atomic<std::uint64_t>[]> epochs_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> window_counts_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> window_sum_bits_;
  // windows x kShards x n_buckets_ cells, window-major then shard-major.
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  std::atomic<std::uint64_t> total_count_{0};
  std::atomic<std::uint64_t> total_sum_bits_{0};
};

/// Global-registry convenience, mirroring counter()/histogram(). Options are
/// fixed at first registration; later calls with the same name ignore them.
[[nodiscard]] WindowedHistogram& windowed_histogram(std::string_view name,
                                                    const WindowedOptions& options = {});

}  // namespace hdc::obs
