#include "obs/quantile.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

namespace hdc::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void cas_add_double(std::atomic<std::uint64_t>& bits, double delta) noexcept {
  std::uint64_t seen = bits.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next =
        std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + delta);
    if (bits.compare_exchange_weak(seen, next, std::memory_order_relaxed)) {
      break;
    }
  }
}

}  // namespace

WindowedHistogram::WindowedHistogram(std::string name, const WindowedOptions& options)
    : name_(std::move(name)), options_(options) {
  if (options_.min_value <= 0.0) options_.min_value = 1e-6;
  if (options_.buckets == 0) options_.buckets = 1;
  if (options_.window_ns == 0) options_.window_ns = 1'000'000'000ULL;
  if (options_.windows < 2) options_.windows = 2;
  n_buckets_ = options_.buckets + 2;
  const std::size_t n_windows = options_.windows;
  epochs_.reset(new std::atomic<std::uint64_t>[n_windows]);
  window_counts_.reset(new std::atomic<std::uint64_t>[n_windows]);
  window_sum_bits_.reset(new std::atomic<std::uint64_t>[n_windows]);
  cells_.reset(new std::atomic<std::uint64_t>[n_windows * kShards * n_buckets_]);
  for (std::size_t w = 0; w < n_windows; ++w) {
    epochs_[w] = 0;
    window_counts_[w] = 0;
    window_sum_bits_[w] = std::bit_cast<std::uint64_t>(0.0);
  }
  for (std::size_t i = 0; i < n_windows * kShards * n_buckets_; ++i) cells_[i] = 0;
}

std::size_t WindowedHistogram::bucket_index(double value) const noexcept {
  if (!(value > options_.min_value)) return 0;  // NaN and <= min land in 0
  // bucket b covers (min*2^(b-1), min*2^b]; overflow is the last bucket.
  const double ratio = value / options_.min_value;
  const int exp = static_cast<int>(std::ceil(std::log2(ratio)));
  if (exp < 1) return 1;
  const std::size_t b = static_cast<std::size_t>(exp);
  return std::min(b, n_buckets_ - 1);
}

void WindowedHistogram::rotate_slot(std::size_t slot) noexcept {
  // Called after winning the epoch CAS: clear the slot's cells for reuse.
  // Records racing the rotation may land in the cleared window or vanish
  // with it — bounded telemetry slop at the window boundary, never a race.
  window_counts_[slot].store(0, std::memory_order_relaxed);
  window_sum_bits_[slot].store(std::bit_cast<std::uint64_t>(0.0),
                               std::memory_order_relaxed);
  std::atomic<std::uint64_t>* base = cells_.get() + slot * kShards * n_buckets_;
  for (std::size_t i = 0; i < kShards * n_buckets_; ++i) {
    base[i].store(0, std::memory_order_relaxed);
  }
}

void WindowedHistogram::record(double value) noexcept {
  if (!enabled()) return;
  // Epoch tag is epoch + 1 so 0 unambiguously means "never written".
  const std::uint64_t epoch = now_ns() / options_.window_ns + 1;
  const std::size_t slot = static_cast<std::size_t>(epoch % options_.windows);
  std::uint64_t tag = epochs_[slot].load(std::memory_order_relaxed);
  if (tag != epoch) {
    if (epochs_[slot].compare_exchange_strong(tag, epoch,
                                              std::memory_order_relaxed)) {
      rotate_slot(slot);
    }
    // Losing the CAS means another thread rotated (or a record from a past
    // epoch arrived late); either way the slot now belongs to some epoch
    // and we record into it.
  }
  const std::size_t bucket = bucket_index(value);
  cells_[(slot * kShards + detail::shard_index()) * n_buckets_ + bucket]
      .fetch_add(1, std::memory_order_relaxed);
  window_counts_[slot].fetch_add(1, std::memory_order_relaxed);
  cas_add_double(window_sum_bits_[slot], value);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  cas_add_double(total_sum_bits_, value);
}

WindowedSample WindowedHistogram::sample() const {
  WindowedSample out;
  out.name = name_;
  out.total_count = total_count_.load(std::memory_order_relaxed);
  out.total_sum =
      std::bit_cast<double>(total_sum_bits_.load(std::memory_order_relaxed));
  out.span_seconds = static_cast<double>(options_.windows) *
                     static_cast<double>(options_.window_ns) * 1e-9;
  out.bounds.resize(n_buckets_ - 1);
  double edge = options_.min_value;
  for (std::size_t b = 0; b + 1 < n_buckets_; ++b) {
    out.bounds[b] = edge;
    edge *= 2.0;
  }
  out.bucket_counts.assign(n_buckets_, 0);
  const std::uint64_t current_epoch = now_ns() / options_.window_ns + 1;
  const std::uint64_t oldest_valid =
      current_epoch >= options_.windows ? current_epoch - options_.windows + 1 : 1;
  for (std::size_t w = 0; w < options_.windows; ++w) {
    const std::uint64_t tag = epochs_[w].load(std::memory_order_relaxed);
    if (tag == 0 || tag < oldest_valid || tag > current_epoch) continue;
    out.window_count += window_counts_[w].load(std::memory_order_relaxed);
    out.window_sum += std::bit_cast<double>(
        window_sum_bits_[w].load(std::memory_order_relaxed));
    const std::atomic<std::uint64_t>* base =
        cells_.get() + w * kShards * n_buckets_;
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::size_t b = 0; b < n_buckets_; ++b) {
        out.bucket_counts[b] += base[s * n_buckets_ + b].load(std::memory_order_relaxed);
      }
    }
  }
  out.p50 = out.quantile(0.50);
  out.p90 = out.quantile(0.90);
  out.p99 = out.quantile(0.99);
  return out;
}

void WindowedHistogram::reset() noexcept {
  for (std::size_t w = 0; w < options_.windows; ++w) {
    epochs_[w].store(0, std::memory_order_relaxed);
    rotate_slot(w);
  }
  total_count_.store(0, std::memory_order_relaxed);
  total_sum_bits_.store(std::bit_cast<std::uint64_t>(0.0),
                        std::memory_order_relaxed);
}

WindowedHistogram& windowed_histogram(std::string_view name,
                                      const WindowedOptions& options) {
  return Registry::global().windowed_histogram(name, options);
}

}  // namespace hdc::obs
