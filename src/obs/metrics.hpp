// hdc::obs metrics registry — named counters, gauges, and fixed-bucket
// histograms for the encode / search / train pipeline.
//
// Hot paths (per-row encode, per-tile Hamming block, pool dispatch) record
// through sharded std::atomic cells: each thread lands on a fixed shard, so
// concurrent adds never contend on one cache line and never take a lock.
// Reads (snapshot) sum the shards. Recording is gated on a process-wide
// enabled flag — a single relaxed load when off — and the whole layer can be
// compiled out with -DHDC_OBS_DISABLE.
//
// Instruments are registered once by name and live for the process lifetime
// (the registry is intentionally leaked so worker threads may record during
// static destruction). Metrics never feed back into results: the library's
// determinism contract is independent of whether recording is on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hdc::obs {

/// Compile-time kill switch: with -DHDC_OBS_DISABLE every record call is a
/// constant-false branch the optimiser removes.
#ifdef HDC_OBS_DISABLE
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Process-wide runtime switch (default off). Cheap to flip at any time.
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Shard count for counter / histogram cells (power of two).
inline constexpr std::size_t kShards = 16;

namespace detail {

struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread shard index in [0, kShards).
[[nodiscard]] std::size_t shard_index() noexcept;

}  // namespace detail

/// Monotonically increasing sharded counter.
class Counter {
 public:
  /// Create through Registry::counter(); public only for container emplace.
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) noexcept {
    if (!enabled()) return;
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum across shards (approximate only while writers are mid-add).
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  detail::Shard shards_[kShards];
};

/// Up/down instantaneous value with a high-water mark (e.g. queue depth).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t delta) noexcept;
  void set(std::int64_t value) noexcept;

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Highest value observed since construction / reset().
  [[nodiscard]] std::int64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  void raise_max(std::int64_t candidate) noexcept;

  std::string name_;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-boundary histogram. Bucket b counts values <= bounds[b]; one extra
/// overflow bucket counts everything above the last bound. Cells are sharded
/// like Counter so concurrent record() calls stay lock-free.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket totals (bounds().size() + 1 entries, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  void reset() noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::size_t n_buckets_;
  // kShards * n_buckets_ cells, shard-major.
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored via bit_cast CAS
};

/// Exponential latency boundaries in seconds: 1 µs .. ~8.4 s, ×2 per bucket.
[[nodiscard]] std::span<const double> default_latency_bounds() noexcept;

/// Windowed-quantile sketch over rotating time windows; see obs/quantile.hpp.
class WindowedHistogram;
struct WindowedOptions;

// -- Snapshot -----------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Aggregate of a WindowedHistogram's retained windows. Quantiles are NaN
/// when the windows are empty; lifetime totals keep accumulating across
/// rotations.
struct WindowedSample {
  std::string name;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::uint64_t window_count = 0;  // events inside the retained windows
  double window_sum = 0.0;
  std::uint64_t total_count = 0;   // lifetime events
  double total_sum = 0.0;
  double span_seconds = 0.0;       // windows * window_ns of history
  std::vector<double> bounds;      // bucket upper edges (log-spaced)
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1, aggregated

  /// Streaming quantile estimate over the aggregated buckets (NaN when
  /// window_count == 0). p50/p90/p99 above are quantile(0.5/0.9/0.99).
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Point-in-time copy of every registered instrument, in registration order.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<WindowedSample> windowed;

  /// Counter value by name (0 if absent) — convenience for tests/benches.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  [[nodiscard]] std::int64_t gauge_max(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSample* histogram(std::string_view name) const noexcept;
  [[nodiscard]] const WindowedSample* windowed_sample(std::string_view name) const noexcept;
};

// -- Registry -----------------------------------------------------------

/// Named instrument registry. Lookup takes a mutex; call sites cache the
/// returned reference (function-local static), so the hot path never locks.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Empty bounds = default_latency_bounds(). Bounds are fixed at first
  /// registration; later calls with the same name ignore them.
  Histogram& histogram(std::string_view name, std::span<const double> bounds = {});
  /// Windowed-quantile sketch (obs/quantile.hpp); options fixed at first
  /// registration, like histogram bounds.
  WindowedHistogram& windowed_histogram(std::string_view name,
                                        const WindowedOptions& options);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every instrument (names stay registered).
  void reset();

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // leaked with the registry — never destroyed
};

/// Global-registry conveniences used by instrumentation sites.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name,
                                   std::span<const double> bounds = {});
[[nodiscard]] MetricsSnapshot snapshot();
void reset_metrics();

}  // namespace hdc::obs
