// Live telemetry endpoints for long-running processes (`hdc_cli serve`).
//
// MetricsServer is a deliberately minimal embedded HTTP/1.1 listener: one
// blocking accept loop on its own thread, serving exactly GET /metrics
// (Prometheus text exposition of the global registry snapshot) and GET
// /healthz ("ok"). No keep-alive, no TLS, no routing table — a scrape
// target, not a web framework. Binding 127.0.0.1:0 picks an ephemeral port
// (reported by port()) so tests never collide. stop() shuts the listen
// socket down and joins the thread; the destructor stops implicitly.
//
// SnapshotJsonlWriter covers headless runs with no scraper: a background
// thread appends one JSON line per interval — {"unix_ms":...,"metrics":{...}}
// — to a file, plus a final line on stop, so a run's telemetry trajectory
// survives the process.
//
// Both are observability-only: they read snapshots, never influence any
// computation, and serving while recording is off simply exposes zeros.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include <condition_variable>
#include <mutex>
#include <thread>

namespace hdc::obs {

class MetricsServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral, see port()
  };

  /// Binds and starts the accept thread. On failure ok() is false and
  /// error() describes why (the process keeps running — telemetry must
  /// never take down serving).
  explicit MetricsServer(const Options& options);
  MetricsServer() : MetricsServer(Options{}) {}
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Actual bound port (resolves ephemeral 0); 0 when !ok().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Idempotent: shut down the listener and join the accept thread.
  void stop();

 private:
  void accept_loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  std::thread thread_;
};

class SnapshotJsonlWriter {
 public:
  /// Appends a snapshot line to `path` every `interval`, and once more on
  /// stop. On open failure ok() is false and no thread is started.
  SnapshotJsonlWriter(std::string path, std::chrono::milliseconds interval);
  ~SnapshotJsonlWriter();

  SnapshotJsonlWriter(const SnapshotJsonlWriter&) = delete;
  SnapshotJsonlWriter& operator=(const SnapshotJsonlWriter&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// Lines written so far (including the final flush after stop()).
  [[nodiscard]] std::size_t lines_written() const noexcept;

  /// Idempotent: write the final snapshot line and join the writer thread.
  void stop();

 private:
  void writer_loop();
  void append_snapshot_line();

  std::string path_;
  std::chrono::milliseconds interval_;
  bool ok_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::size_t lines_ = 0;
  std::thread thread_;
};

}  // namespace hdc::obs
