#include "obs/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace hdc::obs {

namespace {

void append_double(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

void append_i64(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out += buf;
}

void append_type_line(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "hdc_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    append_type_line(out, name, "counter");
    out += name;
    out.push_back(' ');
    append_u64(out, c.value);
    out.push_back('\n');
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    append_type_line(out, name, "gauge");
    out += name;
    out.push_back(' ');
    append_i64(out, g.value);
    out.push_back('\n');
    const std::string max_name = name + "_max";
    append_type_line(out, max_name, "gauge");
    out += max_name;
    out.push_back(' ');
    append_i64(out, g.max);
    out.push_back('\n');
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    append_type_line(out, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += b < h.bucket_counts.size() ? h.bucket_counts[b] : 0;
      out += name;
      out += "_bucket{le=\"";
      append_double(out, h.bounds[b]);
      out += "\"} ";
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out.push_back('\n');
    out += name;
    out += "_sum ";
    append_double(out, h.sum);
    out.push_back('\n');
    out += name;
    out += "_count ";
    append_u64(out, h.count);
    out.push_back('\n');
  }
  for (const WindowedSample& w : snapshot.windowed) {
    const std::string name = prometheus_name(w.name);
    append_type_line(out, name, "summary");
    static constexpr struct {
      const char* label;
      double q;
    } kQuantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
    for (const auto& [label, q] : kQuantiles) {
      out += name;
      out += "{quantile=\"";
      out += label;
      out += "\"} ";
      append_double(out, w.quantile(q));
      out.push_back('\n');
    }
    out += name;
    out += "_sum ";
    append_double(out, w.total_sum);
    out.push_back('\n');
    out += name;
    out += "_count ";
    append_u64(out, w.total_count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace hdc::obs
