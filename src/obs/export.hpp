// Serialisation of metrics snapshots: JSON (machine-readable, embedded in
// bench artefacts / written by --metrics-out) and plain-text tables (human
// inspection, log flushes).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace hdc::obs {

/// One JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...},
/// "windowed": {...}}. Gauges carry {"value", "max"}; histograms carry
/// bounds, per-bucket counts, total count, and sum; windowed sketches carry
/// p50/p90/p99 plus their bucket bounds and counts.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Aligned plain-text table (one instrument per line).
[[nodiscard]] std::string to_text(const MetricsSnapshot& snapshot);

/// Snapshot the global registry and write to_json() to `path`; false on I/O
/// failure. Logs a structured info line on success.
bool write_metrics_json(const std::string& path);

}  // namespace hdc::obs
