#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/log.hpp"

namespace hdc::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_number(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

void append_number(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out += buf;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, snapshot.counters[i].name);
    out.push_back(':');
    append_number(out, snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, snapshot.gauges[i].name);
    out += ":{\"value\":";
    append_number(out, snapshot.gauges[i].value);
    out += ",\"max\":";
    append_number(out, snapshot.gauges[i].max);
    out.push_back('}');
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i > 0) out.push_back(',');
    append_json_string(out, h.name);
    out += ":{\"count\":";
    append_number(out, h.count);
    out += ",\"sum\":";
    append_number(out, h.sum);
    out += ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      append_number(out, h.bounds[b]);
    }
    out += "],\"bucket_counts\":[";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) out.push_back(',');
      append_number(out, h.bucket_counts[b]);
    }
    out += "]}";
  }
  out += "},\"windowed\":{";
  for (std::size_t i = 0; i < snapshot.windowed.size(); ++i) {
    const WindowedSample& w = snapshot.windowed[i];
    if (i > 0) out.push_back(',');
    append_json_string(out, w.name);
    out += ":{\"p50\":";
    append_number(out, w.p50);
    out += ",\"p90\":";
    append_number(out, w.p90);
    out += ",\"p99\":";
    append_number(out, w.p99);
    out += ",\"window_count\":";
    append_number(out, w.window_count);
    out += ",\"window_sum\":";
    append_number(out, w.window_sum);
    out += ",\"total_count\":";
    append_number(out, w.total_count);
    out += ",\"total_sum\":";
    append_number(out, w.total_sum);
    out += ",\"span_seconds\":";
    append_number(out, w.span_seconds);
    out += ",\"bounds\":[";
    for (std::size_t b = 0; b < w.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      append_number(out, w.bounds[b]);
    }
    out += "],\"bucket_counts\":[";
    for (std::size_t b = 0; b < w.bucket_counts.size(); ++b) {
      if (b > 0) out.push_back(',');
      append_number(out, w.bucket_counts[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[160];
  for (const CounterSample& c : snapshot.counters) {
    std::snprintf(line, sizeof(line), "counter    %-36s %20" PRIu64 "\n",
                  c.name.c_str(), c.value);
    out += line;
  }
  for (const GaugeSample& g : snapshot.gauges) {
    std::snprintf(line, sizeof(line),
                  "gauge      %-36s %20" PRId64 "  (max %" PRId64 ")\n",
                  g.name.c_str(), g.value, g.max);
    out += line;
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const double mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    std::snprintf(line, sizeof(line),
                  "histogram  %-36s count=%-10" PRIu64 " sum=%-12.6g mean=%.6g\n",
                  h.name.c_str(), h.count, h.sum, mean);
    out += line;
  }
  for (const WindowedSample& w : snapshot.windowed) {
    std::snprintf(line, sizeof(line),
                  "windowed   %-36s count=%-10" PRIu64
                  " p50=%-10.4g p90=%-10.4g p99=%.4g\n",
                  w.name.c_str(), w.window_count, w.p50, w.p90, w.p99);
    out += line;
  }
  return out;
}

bool write_metrics_json(const std::string& path) {
  const std::string json = to_json(snapshot());
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  if (wrote && closed) {
    util::log_fields(util::LogLevel::kInfo, "obs: metrics flushed",
                     {{"path", path}, {"bytes", std::to_string(json.size())}});
  }
  return wrote && closed;
}

}  // namespace hdc::obs
