#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "obs/quantile.hpp"
#include "obs/trace.hpp"

namespace hdc::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept {
  if constexpr (!kCompiledIn) return false;
  return g_enabled.load(std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() noexcept {
  // One shard per thread, assigned round-robin at first use. A fixed
  // assignment keeps the hot path to a single thread_local read.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return index;
}

}  // namespace detail

// -- Counter ------------------------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const detail::Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (detail::Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// -- Gauge --------------------------------------------------------------

void Gauge::add(std::int64_t delta) noexcept {
  if (!enabled()) return;
  const std::int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_max(now);
}

void Gauge::set(std::int64_t value) noexcept {
  if (!enabled()) return;
  value_.store(value, std::memory_order_relaxed);
  raise_max(value);
}

void Gauge::raise_max(std::int64_t candidate) noexcept {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() noexcept {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -- Histogram ----------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)),
      n_buckets_(bounds_.size() + 1),
      cells_(new std::atomic<std::uint64_t>[kShards * n_buckets_]) {
  for (std::size_t i = 0; i < kShards * n_buckets_; ++i) cells_[i] = 0;
}

void Histogram::record(double value) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  cells_[detail::shard_index() * n_buckets_ + bucket].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // double sum via bit-cast CAS (atomic<double>::fetch_add is not universal).
  std::uint64_t seen = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next =
        std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + value);
    if (sum_bits_.compare_exchange_weak(seen, next, std::memory_order_relaxed)) {
      break;
    }
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(n_buckets_, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < n_buckets_; ++b) {
      out[b] += cells_[s * n_buckets_ + b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < kShards * n_buckets_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
}

std::span<const double> default_latency_bounds() noexcept {
  // 1 µs .. ~8.4 s doubling per bucket (24 bounds + overflow).
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double v = 1e-6;
    for (int i = 0; i < 24; ++i) {
      b.push_back(v);
      v *= 2.0;
    }
    return b;
  }();
  return bounds;
}

// -- Snapshot -----------------------------------------------------------

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const noexcept {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_max(std::string_view name) const noexcept {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.max;
  }
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram(std::string_view name) const noexcept {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const WindowedSample* MetricsSnapshot::windowed_sample(std::string_view name) const noexcept {
  for (const WindowedSample& w : windowed) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

double WindowedSample::quantile(double q) const noexcept {
  if (window_count == 0 || bucket_counts.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(window_count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bucket_counts.size(); ++b) {
    const double in_bucket = static_cast<double>(bucket_counts[b]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Linear interpolation between the bucket's edges; the overflow
      // bucket has no upper edge, so report its lower edge.
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double upper = bounds[b];
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// -- Registry -----------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // deques keep element addresses stable across registration.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::deque<WindowedHistogram> windowed;
  std::map<std::string, Counter*, std::less<>> counter_by_name;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name;
  std::map<std::string, WindowedHistogram*, std::less<>> windowed_by_name;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::global() {
  // Leaked on purpose: pool workers and Span destructors may record during
  // static destruction, after a function-local static would have died.
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->counter_by_name.find(name);
      it != impl_->counter_by_name.end()) {
    return *it->second;
  }
  Counter& created = impl_->counters.emplace_back(std::string(name));
  impl_->counter_by_name.emplace(created.name(), &created);
  return created;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->gauge_by_name.find(name);
      it != impl_->gauge_by_name.end()) {
    return *it->second;
  }
  Gauge& created = impl_->gauges.emplace_back(std::string(name));
  impl_->gauge_by_name.emplace(created.name(), &created);
  return created;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->histogram_by_name.find(name);
      it != impl_->histogram_by_name.end()) {
    return *it->second;
  }
  if (bounds.empty()) bounds = default_latency_bounds();
  Histogram& created = impl_->histograms.emplace_back(
      std::string(name), std::vector<double>(bounds.begin(), bounds.end()));
  impl_->histogram_by_name.emplace(created.name(), &created);
  return created;
}

WindowedHistogram& Registry::windowed_histogram(std::string_view name,
                                                const WindowedOptions& options) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->windowed_by_name.find(name);
      it != impl_->windowed_by_name.end()) {
    return *it->second;
  }
  WindowedHistogram& created =
      impl_->windowed.emplace_back(std::string(name), options);
  impl_->windowed_by_name.emplace(created.name(), &created);
  return created;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const Counter& c : impl_->counters) {
    snap.counters.push_back({c.name(), c.value()});
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const Gauge& g : impl_->gauges) {
    snap.gauges.push_back({g.name(), g.value(), g.max_value()});
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const Histogram& h : impl_->histograms) {
    snap.histograms.push_back(
        {h.name(), h.bounds(), h.bucket_counts(), h.count(), h.sum()});
  }
  snap.windowed.reserve(impl_->windowed.size());
  for (const WindowedHistogram& w : impl_->windowed) {
    snap.windowed.push_back(w.sample());
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (Counter& c : impl_->counters) c.reset();
  for (Gauge& g : impl_->gauges) g.reset();
  for (Histogram& h : impl_->histograms) h.reset();
  for (WindowedHistogram& w : impl_->windowed) w.reset();
}

Counter& counter(std::string_view name) { return Registry::global().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::global().gauge(name); }
Histogram& histogram(std::string_view name, std::span<const double> bounds) {
  return Registry::global().histogram(name, bounds);
}
MetricsSnapshot snapshot() {
  MetricsSnapshot snap = Registry::global().snapshot();
  // Trace ring-buffer health rides along as synthetic gauges so overflow is
  // visible in every snapshot / scrape instead of silently counted.
  const auto buffered = static_cast<std::int64_t>(trace_event_count());
  const auto dropped = static_cast<std::int64_t>(trace_dropped_count());
  snap.gauges.push_back({"trace.buffered_events", buffered, buffered});
  snap.gauges.push_back({"trace.dropped_events", dropped, dropped});
  return snap;
}
void reset_metrics() { Registry::global().reset(); }

}  // namespace hdc::obs
