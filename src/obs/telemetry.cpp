#include "obs/telemetry.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace hdc::obs {

namespace {

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // peer went away — nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

// -- MetricsServer -------------------------------------------------------

MetricsServer::MetricsServer(const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "invalid host: " + options.host;
    ::close(fd);
    return;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return;
  }
  if (::listen(fd, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { accept_loop(); });
  util::log_fields(util::LogLevel::kInfo, "obs: metrics server listening",
                   {{"host", options.host}, {"port", std::to_string(port_)}});
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (listen_fd_ < 0) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept(); the loop then sees the error
  // and exits. close() afterwards releases the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or unrecoverable) — exit the thread
    }
    // Read the request head; we only need the request line. A scraper
    // sends a few hundred bytes at most, so one bounded read suffices.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      const std::string_view head(buf, static_cast<std::size_t>(n));
      std::string response;
      if (head.starts_with("GET /metrics ") || head.starts_with("GET /metrics?")) {
        response = http_response("200 OK", kPrometheusContentType,
                                 to_prometheus(snapshot()));
      } else if (head.starts_with("GET /healthz ")) {
        response = http_response("200 OK", "text/plain; charset=utf-8", "ok\n");
      } else if (head.starts_with("GET ")) {
        response = http_response("404 Not Found", "text/plain; charset=utf-8",
                                 "not found\n");
      } else {
        response = http_response("405 Method Not Allowed",
                                 "text/plain; charset=utf-8",
                                 "only GET is supported\n");
      }
      send_all(client, response);
    }
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

// -- SnapshotJsonlWriter -------------------------------------------------

SnapshotJsonlWriter::SnapshotJsonlWriter(std::string path,
                                         std::chrono::milliseconds interval)
    : path_(std::move(path)),
      interval_(interval < std::chrono::milliseconds(1)
                    ? std::chrono::milliseconds(1)
                    : interval) {
  // Truncate up front so one run yields one file; the loop appends.
  std::FILE* file = std::fopen(path_.c_str(), "w");
  if (file == nullptr) {
    util::log_fields(util::LogLevel::kWarn, "obs: cannot open metrics JSONL",
                     {{"path", path_}});
    return;
  }
  std::fclose(file);
  ok_ = true;
  thread_ = std::thread([this] { writer_loop(); });
}

SnapshotJsonlWriter::~SnapshotJsonlWriter() { stop(); }

std::size_t SnapshotJsonlWriter::lines_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void SnapshotJsonlWriter::stop() {
  if (!ok_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopped; just make sure the thread is joined.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SnapshotJsonlWriter::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) break;
    lock.unlock();
    append_snapshot_line();
    lock.lock();
  }
  lock.unlock();
  append_snapshot_line();  // final flush so short runs still record one line
}

void SnapshotJsonlWriter::append_snapshot_line() {
  const auto unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  std::string line = "{\"unix_ms\":";
  line += std::to_string(unix_ms);
  line += ",\"metrics\":";
  line += to_json(snapshot());
  line += "}\n";
  std::FILE* file = std::fopen(path_.c_str(), "a");
  if (file == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file);
  std::fclose(file);
  std::lock_guard<std::mutex> lock(mutex_);
  ++lines_;
}

}  // namespace hdc::obs
