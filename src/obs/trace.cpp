#include "obs/trace.hpp"

#include "obs/metrics.hpp"  // kCompiledIn
#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace hdc::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

// Process-unique ids for spans and flows (0 = "none").
std::atomic<std::uint64_t> g_next_id{1};

// Innermost active span on this thread; tasks adopt a submitter's span via
// ContextGuard so the chain crosses thread boundaries.
thread_local std::uint64_t t_current_span = 0;

std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

enum class EventKind : std::uint8_t { kComplete, kFlowStart, kFlowEnd };

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t dur_ns;   // 0 for flow events
  std::uint64_t span;     // complete: span id; flow: flow id
  std::uint64_t parent;   // complete only: enclosing span id (0 = root)
  EventKind kind;
};

// Per-thread buffer; the mutex is uncontended on the hot path (only the
// owning thread appends; flush/clear from other threads is rare).
struct TraceBuffer {
  std::mutex mutex;
  std::uint32_t tid;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& buffer_registry() {
  // Leaked: spans in pool workers may fire during static destruction.
  static BufferRegistry* registry = new BufferRegistry;
  return *registry;
}

TraceBuffer& local_buffer() {
  thread_local const std::shared_ptr<TraceBuffer> buffer = [] {
    auto created = std::make_shared<TraceBuffer>();
    created->events.reserve(1024);
    BufferRegistry& registry = buffer_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    created->tid = registry.next_tid++;
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

void record_event(const TraceEvent& event) {
  TraceBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kTraceCapacity) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

void set_trace_enabled(bool on) noexcept {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  if constexpr (!kCompiledIn) return false;
  return g_trace_enabled.load(std::memory_order_relaxed);
}

Span::Span(const char* name) noexcept {
  if (!trace_enabled()) return;
  name_ = name;
  begin_ns_ = now_ns();
  id_ = g_next_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
}

Span::~Span() {
  if (name_ == nullptr) return;
  t_current_span = parent_;
  record_event({name_, begin_ns_, now_ns() - begin_ns_, id_, parent_,
                EventKind::kComplete});
}

SpanContext current_span_context() noexcept {
  if constexpr (!kCompiledIn) return {};
  return {t_current_span};
}

ContextGuard::ContextGuard(SpanContext context) noexcept {
  if constexpr (!kCompiledIn) return;
  saved_ = t_current_span;
  t_current_span = context.span_id;
}

ContextGuard::~ContextGuard() {
  if constexpr (!kCompiledIn) return;
  t_current_span = saved_;
}

std::uint64_t flow_begin(const char* name) noexcept {
  if (!trace_enabled()) return 0;
  const std::uint64_t id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  record_event({name, now_ns(), 0, id, t_current_span, EventKind::kFlowStart});
  return id;
}

void flow_end(const char* name, std::uint64_t id) noexcept {
  if (id == 0 || !trace_enabled()) return;
  record_event({name, now_ns(), 0, id, t_current_span, EventKind::kFlowEnd});
}

std::size_t trace_event_count() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::size_t trace_dropped_count() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void clear_trace() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::string chrome_trace_json() {
  // Complete events ("ph":"X") carry begin + duration in microseconds, so
  // span nesting is expressed by interval containment — no begin/end pairing
  // for viewers to lose. Flow events ("ph":"s"/"f") share an "id" and draw
  // the submit→execute arrow across threads.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out.push_back(',');
      first = false;
      char fields[224];
      out += "{\"name\":\"";
      append_json_escaped(out, event.name);
      switch (event.kind) {
        case EventKind::kComplete:
          std::snprintf(fields, sizeof(fields),
                        "\",\"cat\":\"hdc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                        "\"pid\":1,\"tid\":%u,\"args\":{\"span\":%llu,"
                        "\"parent\":%llu}}",
                        static_cast<double>(event.begin_ns) / 1e3,
                        static_cast<double>(event.dur_ns) / 1e3, buffer->tid,
                        static_cast<unsigned long long>(event.span),
                        static_cast<unsigned long long>(event.parent));
          break;
        case EventKind::kFlowStart:
          std::snprintf(fields, sizeof(fields),
                        "\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":%.3f,"
                        "\"pid\":1,\"tid\":%u,\"id\":%llu}",
                        static_cast<double>(event.begin_ns) / 1e3, buffer->tid,
                        static_cast<unsigned long long>(event.span));
          break;
        case EventKind::kFlowEnd:
          std::snprintf(fields, sizeof(fields),
                        "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
                        "\"ts\":%.3f,\"pid\":1,\"tid\":%u,\"id\":%llu}",
                        static_cast<double>(event.begin_ns) / 1e3, buffer->tid,
                        static_cast<unsigned long long>(event.span));
          break;
      }
      out += fields;
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::size_t dropped = trace_dropped_count();
  if (dropped > 0) {
    util::log_fields(util::LogLevel::kWarn,
                     "obs: trace ring buffers overflowed; events were dropped",
                     {{"dropped", std::to_string(dropped)},
                      {"capacity_per_thread", std::to_string(kTraceCapacity)}});
  }
  const std::string json = chrome_trace_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  return wrote && closed;
}

std::string collapsed_stacks() {
  // Gather every complete event, then fold each span's parent chain into a
  // root;...;leaf line weighted by self-time (duration minus the durations
  // of direct children). Ids are process-unique, so chains cross threads.
  struct Node {
    const char* name;
    std::uint64_t dur_ns;
    std::uint64_t parent;
    std::uint64_t child_ns = 0;
  };
  std::unordered_map<std::uint64_t, Node> nodes;
  {
    BufferRegistry& registry = buffer_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& buffer : registry.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      for (const TraceEvent& event : buffer->events) {
        if (event.kind != EventKind::kComplete || event.span == 0) continue;
        nodes.emplace(event.span,
                      Node{event.name, event.dur_ns, event.parent});
      }
    }
  }
  for (const auto& [id, node] : nodes) {
    if (node.parent == 0) continue;
    if (const auto it = nodes.find(node.parent); it != nodes.end()) {
      it->second.child_ns += node.dur_ns;
    }
  }
  std::map<std::string, std::uint64_t> folded;
  for (const auto& [id, node] : nodes) {
    const std::uint64_t self_ns =
        node.dur_ns > node.child_ns ? node.dur_ns - node.child_ns : 0;
    if (self_ns == 0) continue;
    // Walk root-ward, then reverse; depth-capped as a cycle backstop.
    std::vector<const char*> chain{node.name};
    std::uint64_t cursor = node.parent;
    for (int depth = 0; cursor != 0 && depth < 64; ++depth) {
      const auto it = nodes.find(cursor);
      if (it == nodes.end()) break;  // parent dropped to overflow
      chain.push_back(it->second.name);
      cursor = it->second.parent;
    }
    std::string line;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!line.empty()) line.push_back(';');
      line += *it;
    }
    folded[line] += self_ns;
  }
  std::string out;
  for (const auto& [stack, weight] : folded) {
    out += stack;
    out.push_back(' ');
    out += std::to_string(weight);
    out.push_back('\n');
  }
  return out;
}

bool write_collapsed_stacks(const std::string& path) {
  const std::string text = collapsed_stacks();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const bool closed = std::fclose(file) == 0;
  return wrote && closed;
}

}  // namespace hdc::obs
