#include "obs/trace.hpp"

#include "obs/metrics.hpp"  // kCompiledIn

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace hdc::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t dur_ns;
};

// Per-thread buffer; the mutex is uncontended on the hot path (only the
// owning thread appends; flush/clear from other threads is rare).
struct TraceBuffer {
  std::mutex mutex;
  std::uint32_t tid;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& buffer_registry() {
  // Leaked: spans in pool workers may fire during static destruction.
  static BufferRegistry* registry = new BufferRegistry;
  return *registry;
}

TraceBuffer& local_buffer() {
  thread_local const std::shared_ptr<TraceBuffer> buffer = [] {
    auto created = std::make_shared<TraceBuffer>();
    created->events.reserve(1024);
    BufferRegistry& registry = buffer_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    created->tid = registry.next_tid++;
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

void record_event(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  TraceBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kTraceCapacity) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back({name, begin_ns, end_ns - begin_ns});
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

void set_trace_enabled(bool on) noexcept {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  if constexpr (!kCompiledIn) return false;
  return g_trace_enabled.load(std::memory_order_relaxed);
}

Span::Span(const char* name) noexcept {
  if (!trace_enabled()) return;
  name_ = name;
  begin_ns_ = now_ns();
}

Span::~Span() {
  if (name_ == nullptr) return;
  record_event(name_, begin_ns_, now_ns());
}

std::size_t trace_event_count() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::size_t trace_dropped_count() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void clear_trace() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::string chrome_trace_json() {
  // Complete events ("ph":"X") carry begin + duration in microseconds, so
  // span nesting is expressed by interval containment — no begin/end pairing
  // for viewers to lose.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out.push_back(',');
      first = false;
      char fields[160];
      out += "{\"name\":\"";
      append_json_escaped(out, event.name);
      std::snprintf(fields, sizeof(fields),
                    "\",\"cat\":\"hdc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u}",
                    static_cast<double>(event.begin_ns) / 1e3,
                    static_cast<double>(event.dur_ns) / 1e3, buffer->tid);
      out += fields;
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  return wrote && closed;
}

}  // namespace hdc::obs
