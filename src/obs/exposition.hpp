// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot.
//
// Mapping: Counter → counter; Gauge → gauge (plus a companion `<name>_max`
// gauge for the high-water mark); Histogram → histogram with cumulative
// `le`-labelled buckets, `+Inf`, `_sum` and `_count`; WindowedHistogram →
// summary with quantile labels 0.5 / 0.9 / 0.99 over the retained windows
// (NaN while empty, per the exposition spec) and lifetime `_sum`/`_count`.
// Instrument names are sanitised (characters outside [a-zA-Z0-9_:] become
// '_') and prefixed `hdc_`, so `serve.latency_seconds` scrapes as
// `hdc_serve_latency_seconds`.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace hdc::obs {

/// Content-Type for HTTP responses carrying to_prometheus() output.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Render `snapshot` in Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Sanitised metric name as it appears in the exposition ("hdc_" prefix,
/// invalid characters replaced by '_'). Exposed for tests and tooling.
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace hdc::obs
