// hdc::obs tracing — RAII spans recorded into thread-local ring buffers and
// flushed on demand as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// A Span stamps steady-clock begin/end timestamps around a scope; the
// completed event (name, thread, begin, duration) is appended to the calling
// thread's buffer. Buffers hold kTraceCapacity events each; overflow drops
// new events and counts them (pairing is never corrupted). Timestamps are
// observability output only — they never feed back into any computation, so
// tracing cannot perturb the library's determinism guarantees.
//
// Span names must be string literals (or otherwise outlive the trace); the
// buffer stores the pointer, not a copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hdc::obs {

/// Process-wide tracing switch (default off). Spans constructed while the
/// switch is off record nothing, ever; flipping it mid-span is safe.
void set_trace_enabled(bool on) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;

/// Events each thread's ring buffer can hold before dropping.
inline constexpr std::size_t kTraceCapacity = 1 << 16;

class Span {
 public:
  /// `name` must point at storage that outlives the trace (string literal).
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True if this span is recording (tracing was enabled at construction).
  [[nodiscard]] bool active() const noexcept { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

/// Total buffered events / events dropped to overflow, across all threads.
[[nodiscard]] std::size_t trace_event_count();
[[nodiscard]] std::size_t trace_dropped_count();

/// Discard all buffered events (buffers stay registered).
void clear_trace();

/// Serialise every buffered event to Chrome trace-event JSON.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace hdc::obs
