// hdc::obs tracing — RAII spans recorded into thread-local ring buffers and
// flushed on demand as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// A Span stamps steady-clock begin/end timestamps around a scope; the
// completed event (name, thread, begin, duration) is appended to the calling
// thread's buffer. Buffers hold kTraceCapacity events each; overflow drops
// new events and counts them (pairing is never corrupted). Timestamps are
// observability output only — they never feed back into any computation, so
// tracing cannot perturb the library's determinism guarantees.
//
// Causality across threads: every active Span gets a process-unique id and
// records the id of the span it was opened under (same thread, or adopted
// from another thread via ContextGuard). ThreadPool / TaskGraph capture
// current_span_context() at submit time and re-enter it on the worker, so a
// task's spans parent back to the code that scheduled it; flow_begin() /
// flow_end() additionally emit Chrome flow events ("ph":"s"/"f") drawing
// submit→execute arrows in the viewer. collapsed_stacks() folds the same
// parent chains into flamegraph ("folded stacks") lines weighted by
// self-time.
//
// Span names must be string literals (or otherwise outlive the trace); the
// buffer stores the pointer, not a copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hdc::obs {

/// Process-wide tracing switch (default off). Spans constructed while the
/// switch is off record nothing, ever; flipping it mid-span is safe.
void set_trace_enabled(bool on) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;

/// Events each thread's ring buffer can hold before dropping.
inline constexpr std::size_t kTraceCapacity = 1 << 16;

class Span {
 public:
  /// `name` must point at storage that outlives the trace (string literal).
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True if this span is recording (tracing was enabled at construction).
  [[nodiscard]] bool active() const noexcept { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
};

/// Snapshot of the calling thread's innermost active span (0 = none).
/// Capture at task-submit time; re-enter on the worker with ContextGuard.
struct SpanContext {
  std::uint64_t span_id = 0;
};

[[nodiscard]] SpanContext current_span_context() noexcept;

/// Adopts `context` as the calling thread's parent span for the guard's
/// scope, so spans opened inside parent back across the thread boundary.
/// Restores the previous context on destruction. Safe (and near-free) when
/// tracing is off.
class ContextGuard {
 public:
  explicit ContextGuard(SpanContext context) noexcept;
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  std::uint64_t saved_ = 0;
};

/// Start a Chrome flow arrow on the calling thread (e.g. at task submit).
/// Returns the flow id to pass to flow_end() where the work executes, or 0
/// when tracing is off (flow_end ignores id 0). `name` must outlive the
/// trace, and both ends must use the same name for viewers to bind them.
[[nodiscard]] std::uint64_t flow_begin(const char* name) noexcept;
void flow_end(const char* name, std::uint64_t id) noexcept;

/// Total buffered events / events dropped to overflow, across all threads.
[[nodiscard]] std::size_t trace_event_count();
[[nodiscard]] std::size_t trace_dropped_count();

/// Discard all buffered events (buffers stay registered).
void clear_trace();

/// Serialise every buffered event to Chrome trace-event JSON. Complete
/// events carry {"args":{"span":id,"parent":id}}; flow events are emitted
/// as "ph":"s" / "ph":"f" pairs sharing an "id".
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; false on I/O failure. Logs a WARN
/// line if any thread dropped events to ring-buffer overflow.
bool write_chrome_trace(const std::string& path);

/// Fold span parent chains into flamegraph "collapsed stacks": one line per
/// unique root;...;leaf chain, weighted by self-time in nanoseconds (span
/// duration minus child spans' durations), sorted lexicographically. Feed to
/// flamegraph.pl / speedscope as folded format.
[[nodiscard]] std::string collapsed_stacks();

/// Write collapsed_stacks() to `path`; false on I/O failure.
bool write_collapsed_stacks(const std::string& path);

}  // namespace hdc::obs
