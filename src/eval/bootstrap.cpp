#include "eval/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace hdc::eval {

BootstrapInterval bootstrap_metric(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    const std::function<double(const std::vector<int>&, const std::vector<int>&)>&
        metric,
    std::size_t resamples, double confidence, std::uint64_t seed) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    throw std::invalid_argument("bootstrap: bad input sizes");
  }
  if (resamples == 0) throw std::invalid_argument("bootstrap: zero resamples");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap: confidence must be in (0, 1)");
  }

  BootstrapInterval interval;
  interval.point = metric(y_true, y_pred);
  interval.resamples = resamples;

  const std::size_t n = y_true.size();
  util::Rng rng(seed);
  std::vector<double> values;
  values.reserve(resamples);
  std::vector<int> re_true(n);
  std::vector<int> re_pred(n);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(rng.below(n));
      re_true[i] = y_true[k];
      re_pred[i] = y_pred[k];
    }
    values.push_back(metric(re_true, re_pred));
  }
  std::sort(values.begin(), values.end());
  const double alpha = 1.0 - confidence;
  const auto index_at = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    return values[static_cast<std::size_t>(std::llround(pos))];
  };
  interval.lo = index_at(alpha / 2.0);
  interval.hi = index_at(1.0 - alpha / 2.0);
  return interval;
}

BootstrapInterval bootstrap_accuracy(const std::vector<int>& y_true,
                                     const std::vector<int>& y_pred,
                                     std::size_t resamples, double confidence,
                                     std::uint64_t seed) {
  return bootstrap_metric(
      y_true, y_pred,
      [](const std::vector<int>& t, const std::vector<int>& p) {
        return accuracy(t, p);
      },
      resamples, confidence, seed);
}

BootstrapInterval bootstrap_f1(const std::vector<int>& y_true,
                               const std::vector<int>& y_pred,
                               std::size_t resamples, double confidence,
                               std::uint64_t seed) {
  return bootstrap_metric(
      y_true, y_pred,
      [](const std::vector<int>& t, const std::vector<int>& p) {
        return compute_metrics(t, p).f1;
      },
      resamples, confidence, seed);
}

}  // namespace hdc::eval
