#include "eval/curves.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hdc::eval {

namespace {

struct Counts {
  std::size_t n_pos = 0;
  std::size_t n_neg = 0;
  std::vector<std::size_t> order;  // indices sorted by descending score
};

Counts prepare(const std::vector<int>& y_true, const std::vector<double>& scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("curves: size mismatch");
  }
  if (y_true.empty()) throw std::invalid_argument("curves: empty input");
  Counts c;
  for (const int y : y_true) {
    if (y != 0 && y != 1) throw std::invalid_argument("curves: labels must be 0/1");
    (y == 1 ? c.n_pos : c.n_neg)++;
  }
  if (c.n_pos == 0 || c.n_neg == 0) {
    throw std::invalid_argument("curves: need both classes");
  }
  c.order.resize(y_true.size());
  for (std::size_t i = 0; i < c.order.size(); ++i) c.order[i] = i;
  std::sort(c.order.begin(), c.order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return c;
}

}  // namespace

std::vector<RocPoint> roc_curve(const std::vector<int>& y_true,
                                const std::vector<double>& scores) {
  const Counts c = prepare(y_true, scores);
  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t k = 0; k < c.order.size(); ++k) {
    const std::size_t i = c.order[k];
    (y_true[i] == 1 ? tp : fp)++;
    // Emit a point only when the next score differs (ties share a point).
    const bool last = k + 1 == c.order.size();
    if (last || scores[c.order[k + 1]] != scores[i]) {
      curve.push_back({scores[i],
                       static_cast<double>(tp) / static_cast<double>(c.n_pos),
                       static_cast<double>(fp) / static_cast<double>(c.n_neg)});
    }
  }
  return curve;
}

std::vector<PrPoint> pr_curve(const std::vector<int>& y_true,
                              const std::vector<double>& scores) {
  const Counts c = prepare(y_true, scores);
  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t k = 0; k < c.order.size(); ++k) {
    const std::size_t i = c.order[k];
    (y_true[i] == 1 ? tp : fp)++;
    const bool last = k + 1 == c.order.size();
    if (last || scores[c.order[k + 1]] != scores[i]) {
      curve.push_back({scores[i],
                       static_cast<double>(tp) / static_cast<double>(tp + fp),
                       static_cast<double>(tp) / static_cast<double>(c.n_pos)});
    }
  }
  return curve;
}

double average_precision(const std::vector<int>& y_true,
                         const std::vector<double>& scores) {
  const std::vector<PrPoint> curve = pr_curve(y_true, scores);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

std::vector<ReliabilityBin> reliability_diagram(const std::vector<int>& y_true,
                                                const std::vector<double>& scores,
                                                std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("reliability_diagram: zero bins");
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("curves: size mismatch");
  }
  std::vector<double> score_sum(bins, 0.0);
  std::vector<std::size_t> pos(bins, 0);
  std::vector<std::size_t> count(bins, 0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double s = std::clamp(scores[i], 0.0, 1.0);
    std::size_t b = static_cast<std::size_t>(s * static_cast<double>(bins));
    if (b == bins) b = bins - 1;  // score exactly 1.0
    score_sum[b] += s;
    pos[b] += y_true[i] == 1 ? 1 : 0;
    ++count[b];
  }
  std::vector<ReliabilityBin> out;
  for (std::size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    out.push_back({score_sum[b] / static_cast<double>(count[b]),
                   static_cast<double>(pos[b]) / static_cast<double>(count[b]),
                   count[b]});
  }
  return out;
}

double expected_calibration_error(const std::vector<int>& y_true,
                                  const std::vector<double>& scores,
                                  std::size_t bins) {
  const auto diagram = reliability_diagram(y_true, scores, bins);
  double ece = 0.0;
  for (const ReliabilityBin& bin : diagram) {
    ece += static_cast<double>(bin.count) *
           std::abs(bin.observed_rate - bin.mean_score);
  }
  return ece / static_cast<double>(y_true.size());
}

}  // namespace hdc::eval
