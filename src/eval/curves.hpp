// Threshold curves: ROC, precision-recall, and reliability (calibration)
// diagrams, computed from scores without binning artefacts (one point per
// distinct threshold). These back the clinical risk-score reporting the
// paper's §III-B motivates: a score is only useful to a clinician when its
// operating points are known.
#pragma once

#include <cstddef>
#include <vector>

namespace hdc::eval {

struct RocPoint {
  double threshold = 0.0;  // predict positive when score >= threshold
  double tpr = 0.0;        // recall / sensitivity
  double fpr = 0.0;        // 1 - specificity
};

struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

struct ReliabilityBin {
  double mean_score = 0.0;     // average predicted probability in the bin
  double observed_rate = 0.0;  // empirical positive rate in the bin
  std::size_t count = 0;
};

/// ROC curve, one point per distinct score plus the (0,0) and (1,1) anchors,
/// ordered by ascending FPR. Throws on size mismatch or single-class input.
[[nodiscard]] std::vector<RocPoint> roc_curve(const std::vector<int>& y_true,
                                              const std::vector<double>& scores);

/// Precision-recall curve ordered by descending threshold.
[[nodiscard]] std::vector<PrPoint> pr_curve(const std::vector<int>& y_true,
                                            const std::vector<double>& scores);

/// Area under the PR curve (average precision, step interpolation).
[[nodiscard]] double average_precision(const std::vector<int>& y_true,
                                       const std::vector<double>& scores);

/// Equal-width reliability bins over [0, 1]; empty bins are omitted.
[[nodiscard]] std::vector<ReliabilityBin> reliability_diagram(
    const std::vector<int>& y_true, const std::vector<double>& scores,
    std::size_t bins = 10);

/// Expected calibration error: count-weighted |observed - predicted| over
/// the reliability bins.
[[nodiscard]] double expected_calibration_error(const std::vector<int>& y_true,
                                                const std::vector<double>& scores,
                                                std::size_t bins = 10);

}  // namespace hdc::eval
