#include "eval/report.hpp"

#include "util/str.hpp"

namespace hdc::eval {

std::string format_ratio(double value) { return util::format_double(value, 3); }

std::string format_pct(double fraction) { return util::format_percent(fraction, 2); }

std::vector<std::string> metric_cells(const BinaryMetrics& m) {
  return {format_ratio(m.precision), format_ratio(m.recall),
          format_ratio(m.specificity), format_ratio(m.f1), format_pct(m.accuracy)};
}

std::vector<std::string> paired_metric_cells(const BinaryMetrics& features,
                                             const BinaryMetrics& hd) {
  const std::vector<std::string> f = metric_cells(features);
  const std::vector<std::string> h = metric_cells(hd);
  std::vector<std::string> out;
  out.reserve(f.size() * 2);
  for (std::size_t i = 0; i < f.size(); ++i) {
    out.push_back(f[i]);
    out.push_back(h[i]);
  }
  return out;
}

}  // namespace hdc::eval
