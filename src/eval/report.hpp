// Helpers for rendering metric values the way the paper's tables print them.
#pragma once

#include <string>
#include <vector>

#include "eval/metrics.hpp"

namespace hdc::eval {

/// "0.829" style three-decimal ratio.
[[nodiscard]] std::string format_ratio(double value);

/// "79.66%" style percentage with two decimals.
[[nodiscard]] std::string format_pct(double fraction);

/// Cells in the paper's Table IV/V column order:
/// precision, recall, specificity, F1, accuracy%.
[[nodiscard]] std::vector<std::string> metric_cells(const BinaryMetrics& m);

/// Interleave feature/HD metric cells the way Tables IV and V do:
/// {prec_f, prec_hd, rec_f, rec_hd, spec_f, spec_hd, f1_f, f1_hd, acc_f, acc_hd}.
[[nodiscard]] std::vector<std::string> paired_metric_cells(const BinaryMetrics& features,
                                                           const BinaryMetrics& hd);

}  // namespace hdc::eval
