#include "eval/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::eval {

ConfusionMatrix confusion_matrix(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const int t = y_true[i];
    const int p = y_pred[i];
    if ((t != 0 && t != 1) || (p != 0 && p != 1)) {
      throw std::invalid_argument("confusion_matrix: labels must be 0/1");
    }
    if (t == 1) {
      (p == 1 ? cm.tp : cm.fn)++;
    } else {
      (p == 0 ? cm.tn : cm.fp)++;
    }
  }
  return cm;
}

namespace {
double ratio(std::size_t num, std::size_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

BinaryMetrics metrics_from_confusion(const ConfusionMatrix& cm) {
  BinaryMetrics m;
  m.confusion = cm;
  m.accuracy = ratio(cm.tp + cm.tn, cm.total());
  m.precision = ratio(cm.tp, cm.tp + cm.fp);
  m.recall = ratio(cm.tp, cm.tp + cm.fn);
  m.specificity = ratio(cm.tn, cm.tn + cm.fp);
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

BinaryMetrics compute_metrics(const std::vector<int>& y_true,
                              const std::vector<int>& y_pred) {
  return metrics_from_confusion(confusion_matrix(y_true, y_pred));
}

double accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (y_true.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

double roc_auc(const std::vector<int>& y_true, const std::vector<double>& scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("roc_auc: size mismatch");
  }
  // Rank-sum (Mann-Whitney U) formulation with midranks for ties.
  std::vector<std::size_t> order(y_true.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (y_true[order[k]] == 1) {
        rank_sum_pos += midrank;
        ++n_pos;
      }
    }
    i = j + 1;
  }
  const std::size_t n_neg = y_true.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos - 0.5 * static_cast<double>(n_pos) *
                                      static_cast<double>(n_pos + 1);
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace hdc::eval
