// Cross-validation drivers.
//
// The generic `kfold_run` hands each fold's train/test index sets to a
// caller-provided runner, which lets the HDC experiments re-fit the feature
// extractor on each fold's training rows (no encoding leakage across folds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.hpp"

namespace hdc::eval {

using ModelFactory = std::function<std::unique_ptr<ml::Classifier>()>;

struct CvResult {
  std::vector<double> fold_accuracy;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
};

/// Stratified k-fold; `run_fold(train_indices, test_indices)` returns the
/// fold's accuracy (or any score to aggregate).
[[nodiscard]] CvResult kfold_run(
    const std::vector<int>& labels, std::size_t k, std::uint64_t seed,
    const std::function<double(std::span<const std::size_t>,
                               std::span<const std::size_t>)>& run_fold);

/// Plain k-fold accuracy of a model family on a fixed feature matrix.
[[nodiscard]] CvResult kfold_accuracy(const ModelFactory& factory,
                                      const ml::Matrix& X, const ml::Labels& y,
                                      std::size_t k, std::uint64_t seed);

}  // namespace hdc::eval
