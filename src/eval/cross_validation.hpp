// Cross-validation drivers.
//
// The generic `kfold_run` hands each fold's train/test index sets to a
// caller-provided runner, which lets the HDC experiments re-fit the feature
// extractor on each fold's training rows (no encoding leakage across folds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "eval/metrics.hpp"
#include "hv/bitvector.hpp"
#include "ml/classifier.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::eval {

using ModelFactory = std::function<std::unique_ptr<ml::Classifier>()>;

struct CvResult {
  std::vector<double> fold_accuracy;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
};

/// Aggregate per-fold scores into a CvResult (population stddev), summing in
/// the order given. kfold_run() and the grid runner's reduce tasks
/// (core/grid) both go through this, so their statistics are bit-identical
/// for the same fold scores.
[[nodiscard]] CvResult summarize_folds(std::vector<double> fold_accuracy);

/// Stratified k-fold; `run_fold(train_indices, test_indices)` returns the
/// fold's accuracy (or any score to aggregate).
[[nodiscard]] CvResult kfold_run(
    const std::vector<int>& labels, std::size_t k, std::uint64_t seed,
    const std::function<double(std::span<const std::size_t>,
                               std::span<const std::size_t>)>& run_fold);

/// Plain k-fold accuracy of a model family on a fixed feature matrix.
[[nodiscard]] CvResult kfold_accuracy(const ModelFactory& factory,
                                      const ml::Matrix& X, const ml::Labels& y,
                                      std::size_t k, std::uint64_t seed);

struct LoocvResult {
  std::vector<int> predictions;  // per-row 1-NN label among all other rows
  BinaryMetrics metrics;
};

/// Leave-one-out 1-NN Hamming cross-validation over precomputed patient
/// hypervectors (the paper's validation protocol for its pure HDC model),
/// run through the blocked search kernel in hv/search. Distance ties resolve
/// to the lowest row index; results are identical for any `pool`.
[[nodiscard]] LoocvResult hamming_loocv(const std::vector<hv::BitVector>& vectors,
                                        const std::vector<int>& labels,
                                        parallel::ThreadPool* pool = nullptr);

}  // namespace hdc::eval
