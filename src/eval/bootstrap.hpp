// Bootstrap confidence intervals for classification metrics. The paper's
// Tables IV/V rest on a single 90/10 holdout (a 52-78 row test set), where
// point estimates move by several points between seeds; resampling the test
// set quantifies that uncertainty.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "eval/metrics.hpp"

namespace hdc::eval {

struct BootstrapInterval {
  double point = 0.0;  // metric on the original sample
  double lo = 0.0;     // lower percentile bound
  double hi = 0.0;     // upper percentile bound
  std::size_t resamples = 0;
};

/// Percentile-bootstrap interval for an arbitrary metric of (y_true, y_pred).
/// `metric` is evaluated on index-resampled copies; `confidence` in (0, 1).
[[nodiscard]] BootstrapInterval bootstrap_metric(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    const std::function<double(const std::vector<int>&, const std::vector<int>&)>&
        metric,
    std::size_t resamples = 1000, double confidence = 0.95,
    std::uint64_t seed = 1234);

/// Convenience: bootstrap interval for plain accuracy.
[[nodiscard]] BootstrapInterval bootstrap_accuracy(const std::vector<int>& y_true,
                                                   const std::vector<int>& y_pred,
                                                   std::size_t resamples = 1000,
                                                   double confidence = 0.95,
                                                   std::uint64_t seed = 1234);

/// Convenience: bootstrap interval for F1.
[[nodiscard]] BootstrapInterval bootstrap_f1(const std::vector<int>& y_true,
                                             const std::vector<int>& y_pred,
                                             std::size_t resamples = 1000,
                                             double confidence = 0.95,
                                             std::uint64_t seed = 1234);

}  // namespace hdc::eval
