#include "eval/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "data/split.hpp"
#include "hv/search.hpp"

namespace hdc::eval {

CvResult summarize_folds(std::vector<double> fold_accuracy) {
  CvResult result;
  result.fold_accuracy = std::move(fold_accuracy);
  const double k = static_cast<double>(result.fold_accuracy.size());
  double sum = 0.0;
  for (const double a : result.fold_accuracy) sum += a;
  result.mean_accuracy = sum / k;
  double var = 0.0;
  for (const double a : result.fold_accuracy) {
    const double diff = a - result.mean_accuracy;
    var += diff * diff;
  }
  result.stddev_accuracy = std::sqrt(var / k);
  return result;
}

CvResult kfold_run(
    const std::vector<int>& labels, std::size_t k, std::uint64_t seed,
    const std::function<double(std::span<const std::size_t>,
                               std::span<const std::size_t>)>& run_fold) {
  const data::StratifiedKFold folds(labels, k, seed);
  std::vector<double> fold_accuracy;
  fold_accuracy.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    const std::vector<std::size_t> train = folds.fold_train(f);
    const std::vector<std::size_t>& test = folds.fold_test(f);
    fold_accuracy.push_back(run_fold(train, test));
  }
  return summarize_folds(std::move(fold_accuracy));
}

CvResult kfold_accuracy(const ModelFactory& factory, const ml::Matrix& X,
                        const ml::Labels& y, std::size_t k, std::uint64_t seed) {
  return kfold_run(y, k, seed,
                   [&](std::span<const std::size_t> train,
                       std::span<const std::size_t> test) {
                     ml::Matrix train_X;
                     ml::Labels train_y;
                     train_X.reserve(train.size());
                     for (const std::size_t i : train) {
                       train_X.push_back(X[i]);
                       train_y.push_back(y[i]);
                     }
                     const auto model = factory();
                     model->fit(train_X, train_y);
                     std::size_t hits = 0;
                     for (const std::size_t i : test) {
                       if (model->predict(X[i]) == y[i]) ++hits;
                     }
                     return static_cast<double>(hits) /
                            static_cast<double>(test.size());
                   });
}

LoocvResult hamming_loocv(const std::vector<hv::BitVector>& vectors,
                          const std::vector<int>& labels,
                          parallel::ThreadPool* pool) {
  if (vectors.size() != labels.size() || vectors.size() < 2) {
    throw std::invalid_argument("hamming_loocv: need >= 2 labelled vectors");
  }
  hv::SearchOptions options;
  options.pool = pool;
  const std::vector<hv::Neighbor> nearest = hv::loo_nearest_neighbors(vectors, options);
  LoocvResult result;
  result.predictions.reserve(nearest.size());
  for (const hv::Neighbor& n : nearest) result.predictions.push_back(labels[n.index]);
  result.metrics = compute_metrics(labels, result.predictions);
  return result;
}

}  // namespace hdc::eval
