// Binary classification metrics, matching the paper's Tables IV/V columns:
// precision, recall, specificity, F1 score, testing accuracy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hdc::eval {

struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t tn = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  [[nodiscard]] std::size_t total() const noexcept { return tp + tn + fp + fn; }
};

struct BinaryMetrics {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
  double precision = 0.0;    // tp / (tp + fp)
  double recall = 0.0;       // tp / (tp + fn), a.k.a. sensitivity
  double specificity = 0.0;  // tn / (tn + fp)
  double f1 = 0.0;           // harmonic mean of precision and recall
};

/// Tally a confusion matrix; labels/predictions must be 0/1 and same length.
[[nodiscard]] ConfusionMatrix confusion_matrix(const std::vector<int>& y_true,
                                               const std::vector<int>& y_pred);

/// Derive all metrics from a confusion matrix (0/0 ratios evaluate to 0).
[[nodiscard]] BinaryMetrics metrics_from_confusion(const ConfusionMatrix& cm);

/// Convenience: confusion + derived metrics in one call.
[[nodiscard]] BinaryMetrics compute_metrics(const std::vector<int>& y_true,
                                            const std::vector<int>& y_pred);

/// Fraction of equal entries.
[[nodiscard]] double accuracy(const std::vector<int>& y_true,
                              const std::vector<int>& y_pred);

/// Area under the ROC curve from scores (probability of ranking a random
/// positive above a random negative; ties count half).
[[nodiscard]] double roc_auc(const std::vector<int>& y_true,
                             const std::vector<double>& scores);

}  // namespace hdc::eval
