// Adam optimiser (Kingma & Ba). Each parameter tensor owns an AdamState;
// the shared Adam object carries the hyper-parameters and the step counter.
#pragma once

#include <cstddef>
#include <vector>

namespace hdc::nn {

struct AdamState {
  std::vector<double> m;  // first moment
  std::vector<double> v;  // second moment

  void ensure_size(std::size_t n) {
    if (m.size() != n) {
      m.assign(n, 0.0);
      v.assign(n, 0.0);
    }
  }
};

class Adam {
 public:
  explicit Adam(double learning_rate = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

  /// Advance the shared step counter; call once per optimisation step
  /// (i.e. once per batch), before updating any tensors for that batch.
  void begin_step() noexcept { ++t_; }

  [[nodiscard]] std::size_t step() const noexcept { return t_; }
  [[nodiscard]] double learning_rate() const noexcept { return lr_; }

  /// In-place Adam update of `params` given `grads` (same length).
  void update(double* params, const double* grads, std::size_t n,
              AdamState& state) const;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
};

}  // namespace hdc::nn
