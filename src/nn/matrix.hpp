// Dense row-major matrix for the neural-network substrate.
//
// The three product kernels (matmul / transposed_matmul / matmul_transposed)
// run cache-blocked and register-tiled: fixed block sizes chosen for L1/L2
// residency of the streamed panel, row-quads sharing each loaded b-row, and
// — crucially — a per-output-element accumulation order identical to the
// naive triple loop (k strictly ascending, no partial-sum reassociation
// across blocks, same zero-skip tests). Blocking therefore changes only the
// memory traffic, never a bit of the result: Sequential NN training loss is
// bit-identical with blocking on or off, and independent of thread count
// (the kernels are single-threaded by design — the experiment grid
// parallelises across folds/models instead).
//
// Kill switch: HDC_NN_BLOCKED=0 (or off/false) falls back to the naive
// loops; set_blocked_matmul() overrides programmatically (parity tests,
// benches). Mirrors the HDC_ML_PACKED / HDC_SIMD switch conventions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hdc::nn {

/// Current state of the blocked-kernel switch (HDC_NN_BLOCKED, default on).
[[nodiscard]] bool blocked_matmul_enabled() noexcept;

/// Force the switch for this process (tests, benches).
void set_blocked_matmul(bool enabled) noexcept;

/// Drop any programmatic override and return to HDC_NN_BLOCKED / default.
void reset_blocked_matmul() noexcept;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  void fill(double v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// out = this (m x k) * other (k x n); throws on shape mismatch.
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  /// out = this^T (k x m) * other (k x n) — used for weight gradients.
  [[nodiscard]] Matrix transposed_matmul(const Matrix& other) const;

  /// out = this (m x k) * other^T (n x k) — used for input gradients.
  [[nodiscard]] Matrix matmul_transposed(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hdc::nn
