// Dense row-major matrix for the neural-network substrate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hdc::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  void fill(double v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// out = this (m x k) * other (k x n); throws on shape mismatch.
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  /// out = this^T (k x m) * other (k x n) — used for weight gradients.
  [[nodiscard]] Matrix transposed_matmul(const Matrix& other) const;

  /// out = this (m x k) * other^T (n x k) — used for input gradients.
  [[nodiscard]] Matrix matmul_transposed(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hdc::nn
