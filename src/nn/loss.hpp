// Binary cross-entropy loss on a (batch x 1) sigmoid output.
#pragma once

#include <vector>

#include "nn/matrix.hpp"

namespace hdc::nn {

struct LossResult {
  double loss = 0.0;  // mean BCE over the batch
  Matrix grad;        // dLoss/dPred, same shape as predictions
};

/// predictions: (n x 1) in (0, 1); targets: n labels in {0, 1}.
[[nodiscard]] LossResult binary_cross_entropy(const Matrix& predictions,
                                              const std::vector<int>& targets);

/// Mean BCE only (no gradient) — used for validation-loss early stopping.
[[nodiscard]] double binary_cross_entropy_value(const Matrix& predictions,
                                                const std::vector<int>& targets);

}  // namespace hdc::nn
