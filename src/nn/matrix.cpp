#include "nn/matrix.hpp"

#include <stdexcept>

namespace hdc::nn {

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double* o = out.data() + i * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;  // hypervector inputs are ~50% zeros
      const double* b = other.data() + k * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) o[j] += av * b[j];
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  if (rows_ != other.rows_) {
    throw std::invalid_argument("transposed_matmul: shape mismatch");
  }
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a = data_.data() + k * cols_;
    const double* b = other.data() + k * other.cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double av = a[i];
      if (av == 0.0) continue;
      double* o = out.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) o[j] += av * b[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  if (cols_ != other.cols_) {
    throw std::invalid_argument("matmul_transposed: shape mismatch");
  }
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* b = other.data() + j * other.cols_;
      double sum = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
      out.at(i, j) = sum;
    }
  }
  return out;
}

}  // namespace hdc::nn
