#include "nn/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "util/log.hpp"

namespace hdc::nn {

namespace {

bool initial_blocked() {
  const char* env = std::getenv("HDC_NN_BLOCKED");
  if (env == nullptr || *env == '\0') return true;
  const std::string_view value(env);
  if (value == "1" || value == "on" || value == "true") return true;
  if (value == "0" || value == "off" || value == "false") return false;
  util::log_fields(util::LogLevel::kWarn,
                   "HDC_NN_BLOCKED: unknown value, keeping blocked kernels",
                   {{"value", env}});
  return true;
}

std::atomic<bool>& blocked_state() {
  static std::atomic<bool> state{initial_blocked()};
  return state;
}

// Block sizes, fixed regardless of shape or thread count so the iteration
// order — and with it every floating-point result — never depends on the
// environment. kRowBlock output rows share each streamed b-panel;
// kDepthBlock k-rows of b (× 32-64 columns in the NN shapes) sit in L1.
constexpr std::size_t kRowBlock = 64;
constexpr std::size_t kDepthBlock = 256;

}  // namespace

bool blocked_matmul_enabled() noexcept {
  return blocked_state().load(std::memory_order_relaxed);
}

void set_blocked_matmul(bool enabled) noexcept {
  blocked_state().store(enabled, std::memory_order_relaxed);
}

void reset_blocked_matmul() noexcept {
  blocked_state().store(initial_blocked(), std::memory_order_relaxed);
}

// -- matmul: out(m x n) = this(m x k) * other(k x n) ---------------------

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(rows_, other.cols_);
  const std::size_t n = other.cols_;

  if (!blocked_matmul_enabled()) {
    // Naive reference: i-k-j with a zero-skip (hypervector inputs are ~50%
    // zeros). Kept as the parity baseline for the blocked path.
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* a = data_.data() + i * cols_;
      double* o = out.data() + i * n;
      for (std::size_t k = 0; k < cols_; ++k) {
        const double av = a[k];
        if (av == 0.0) continue;
        const double* b = other.data() + k * n;
        for (std::size_t j = 0; j < n; ++j) o[j] += av * b[j];
      }
    }
    return out;
  }

  // Blocked: k-panels of b stay cache-resident while a row-block of `a`
  // streams against them; within the block, row-quads reuse each b-row load.
  // Per output element the k index still ascends monotonically (panels in
  // order, k in order inside each panel, accumulation in place), and the
  // zero-skip applies per (i, k) exactly as in the reference — bit-identical.
  for (std::size_t ib = 0; ib < rows_; ib += kRowBlock) {
    const std::size_t ie = std::min(ib + kRowBlock, rows_);
    for (std::size_t kb = 0; kb < cols_; kb += kDepthBlock) {
      const std::size_t ke = std::min(kb + kDepthBlock, cols_);
      std::size_t i = ib;
      for (; i + 4 <= ie; i += 4) {
        const double* a0 = data_.data() + i * cols_;
        const double* a1 = a0 + cols_;
        const double* a2 = a1 + cols_;
        const double* a3 = a2 + cols_;
        double* o0 = out.data() + i * n;
        double* o1 = o0 + n;
        double* o2 = o1 + n;
        double* o3 = o2 + n;
        for (std::size_t k = kb; k < ke; ++k) {
          const double* b = other.data() + k * n;
          const double v0 = a0[k];
          const double v1 = a1[k];
          const double v2 = a2[k];
          const double v3 = a3[k];
          if (v0 != 0.0) {
            for (std::size_t j = 0; j < n; ++j) o0[j] += v0 * b[j];
          }
          if (v1 != 0.0) {
            for (std::size_t j = 0; j < n; ++j) o1[j] += v1 * b[j];
          }
          if (v2 != 0.0) {
            for (std::size_t j = 0; j < n; ++j) o2[j] += v2 * b[j];
          }
          if (v3 != 0.0) {
            for (std::size_t j = 0; j < n; ++j) o3[j] += v3 * b[j];
          }
        }
      }
      for (; i < ie; ++i) {
        const double* a = data_.data() + i * cols_;
        double* o = out.data() + i * n;
        for (std::size_t k = kb; k < ke; ++k) {
          const double av = a[k];
          if (av == 0.0) continue;
          const double* b = other.data() + k * n;
          for (std::size_t j = 0; j < n; ++j) o[j] += av * b[j];
        }
      }
    }
  }
  return out;
}

// -- transposed_matmul: out(k x n) = this^T(cols x rows) * other(rows x n) --

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  if (rows_ != other.rows_) {
    throw std::invalid_argument("transposed_matmul: shape mismatch");
  }
  Matrix out(cols_, other.cols_);
  const std::size_t n = other.cols_;

  if (!blocked_matmul_enabled()) {
    for (std::size_t k = 0; k < rows_; ++k) {
      const double* a = data_.data() + k * cols_;
      const double* b = other.data() + k * n;
      for (std::size_t i = 0; i < cols_; ++i) {
        const double av = a[i];
        if (av == 0.0) continue;
        double* o = out.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) o[j] += av * b[j];
      }
    }
    return out;
  }

  // Blocked: restrict each sweep over k to a tile of output rows, so the
  // out-tile (kRowBlock x n doubles) stays hot instead of streaming the
  // whole (cols x n) gradient per k. k ascends per output element (outer
  // k-panels, inner k), zero-skip per (k, i) — reference order exactly.
  for (std::size_t ib = 0; ib < cols_; ib += kRowBlock) {
    const std::size_t ie = std::min(ib + kRowBlock, cols_);
    for (std::size_t kb = 0; kb < rows_; kb += kDepthBlock) {
      const std::size_t ke = std::min(kb + kDepthBlock, rows_);
      for (std::size_t k = kb; k < ke; ++k) {
        const double* a = data_.data() + k * cols_;
        const double* b = other.data() + k * n;
        for (std::size_t i = ib; i < ie; ++i) {
          const double av = a[i];
          if (av == 0.0) continue;
          double* o = out.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) o[j] += av * b[j];
        }
      }
    }
  }
  return out;
}

// -- matmul_transposed: out(m x p) = this(m x k) * other^T(p x k) --------

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  if (cols_ != other.cols_) {
    throw std::invalid_argument("matmul_transposed: shape mismatch");
  }
  Matrix out(rows_, other.rows_);

  if (!blocked_matmul_enabled()) {
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* a = data_.data() + i * cols_;
      for (std::size_t j = 0; j < other.rows_; ++j) {
        const double* b = other.data() + j * other.cols_;
        double sum = 0.0;
        for (std::size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
        out.at(i, j) = sum;
      }
    }
    return out;
  }

  // Register-tiled: four independent dot products share each streamed a-row,
  // each accumulating its own sum over the full k range in ascending order
  // (one accumulator per output element — no partial sums to reassociate).
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double* o = out.data() + i * other.rows_;
    std::size_t j = 0;
    for (; j + 4 <= other.rows_; j += 4) {
      const double* b0 = other.data() + j * other.cols_;
      const double* b1 = b0 + other.cols_;
      const double* b2 = b1 + other.cols_;
      const double* b3 = b2 + other.cols_;
      double s0 = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      double s3 = 0.0;
      for (std::size_t kk = 0; kk < cols_; ++kk) {
        const double av = a[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      o[j] = s0;
      o[j + 1] = s1;
      o[j + 2] = s2;
      o[j + 3] = s3;
    }
    for (; j < other.rows_; ++j) {
      const double* b = other.data() + j * other.cols_;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < cols_; ++kk) sum += a[kk] * b[kk];
      o[j] = sum;
    }
  }
  return out;
}

}  // namespace hdc::nn
