#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace hdc::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, std::uint64_t seed)
    : weights_(in_features, out_features), bias_(1, out_features) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
  util::Rng rng(seed);
  const double limit = std::sqrt(6.0 / static_cast<double>(in_features));
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_.data()[i] = rng.uniform(-limit, limit);
  }
}

Matrix Dense::forward(const Matrix& input) {
  if (input.cols() != weights_.rows()) {
    throw std::invalid_argument("Dense: input width mismatch");
  }
  cached_input_ = input;
  Matrix out = input.matmul(weights_);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) out.at(i, j) += bias_.at(0, j);
  }
  return out;
}

Matrix Dense::infer(const Matrix& input) const {
  if (input.cols() != weights_.rows()) {
    throw std::invalid_argument("Dense: input width mismatch");
  }
  Matrix out = input.matmul(weights_);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) out.at(i, j) += bias_.at(0, j);
  }
  return out;
}

Matrix Dense::backward(const Matrix& grad_output, Adam& opt) {
  const double inv_batch = 1.0 / static_cast<double>(grad_output.rows());
  // dW = X^T * dY / batch
  Matrix grad_w = cached_input_.transposed_matmul(grad_output);
  for (std::size_t i = 0; i < grad_w.size(); ++i) grad_w.data()[i] *= inv_batch;
  // db = column means of dY
  Matrix grad_b(1, grad_output.cols());
  for (std::size_t i = 0; i < grad_output.rows(); ++i) {
    for (std::size_t j = 0; j < grad_output.cols(); ++j) {
      grad_b.at(0, j) += grad_output.at(i, j) * inv_batch;
    }
  }
  // dX = dY * W^T
  Matrix grad_input = grad_output.matmul_transposed(weights_);

  opt.update(weights_.data(), grad_w.data(), weights_.size(), w_state_);
  opt.update(bias_.data(), grad_b.data(), bias_.size(), b_state_);
  return grad_input;
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
  }
  return out;
}

Matrix Relu::infer(const Matrix& input) const {
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
  }
  return out;
}

Matrix Relu::backward(const Matrix& grad_output, Adam& /*opt*/) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0 / (1.0 + std::exp(-out.data()[i]));
  }
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::infer(const Matrix& input) const {
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0 / (1.0 + std::exp(-out.data()[i]));
  }
  return out;
}

Matrix Sigmoid::backward(const Matrix& grad_output, Adam& /*opt*/) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double s = cached_output_.data()[i];
    grad.data()[i] *= s * (1.0 - s);
  }
  return grad;
}

void Dense::set_parameters(Matrix weights, Matrix bias) {
  if (weights.rows() != weights_.rows() || weights.cols() != weights_.cols() ||
      bias.rows() != bias_.rows() || bias.cols() != bias_.cols()) {
    throw std::invalid_argument("Dense::set_parameters: shape mismatch");
  }
  weights_ = std::move(weights);
  bias_ = std::move(bias);
}

}  // namespace hdc::nn
