#include "nn/optimizer.hpp"

#include <cmath>

namespace hdc::nn {

void Adam::update(double* params, const double* grads, std::size_t n,
                  AdamState& state) const {
  state.ensure_size(n);
  const double t = static_cast<double>(t_ == 0 ? 1 : t_);
  const double bc1 = 1.0 - std::pow(beta1_, t);
  const double bc2 = 1.0 - std::pow(beta2_, t);
  for (std::size_t i = 0; i < n; ++i) {
    const double g = grads[i];
    state.m[i] = beta1_ * state.m[i] + (1.0 - beta1_) * g;
    state.v[i] = beta2_ * state.v[i] + (1.0 - beta2_) * g * g;
    const double m_hat = state.m[i] / bc1;
    const double v_hat = state.v[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

}  // namespace hdc::nn
