// Sequential dense network with early stopping — the paper's "Sequential NN":
// two Dense(32)+ReLU blocks and a Dense(1)+Sigmoid head, trained with binary
// cross-entropy for up to 1000 epochs, stopping when the monitored loss has
// not improved for 20 consecutive epochs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace hdc::nn {

/// What early stopping watches. The paper stops "if the loss function
/// doesn't improve across 20 consecutive epochs" — i.e. the *training* loss
/// (Keras monitor='loss'), which matters: on raw unscaled features the
/// training loss keeps improving for hundreds of epochs while a noisy
/// validation loss would stop the run at ~40.
enum class EarlyStopMonitor { kTrainLoss, kValLoss };

struct SequentialConfig {
  std::vector<std::size_t> hidden = {32, 32};  // paper's architecture
  std::size_t max_epochs = 1000;               // paper's epoch cap
  std::size_t patience = 20;                   // paper's early stopping
  EarlyStopMonitor monitor = EarlyStopMonitor::kTrainLoss;
  double min_delta = 1e-4;  // smallest loss drop that counts as improvement
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  /// Fraction of fit() data held out for early stopping when no explicit
  /// validation set is supplied (the paper's protocol passes one).
  double internal_val_fraction = 0.15;
  std::uint64_t seed = 29;
};

struct TrainHistory {
  std::vector<double> train_loss;  // per epoch
  std::vector<double> val_loss;    // per epoch (monitored metric)
  std::size_t best_epoch = 0;
  bool early_stopped = false;
};

class Sequential final : public ml::Classifier {
 public:
  explicit Sequential(SequentialConfig config = {});

  /// ml::Classifier entry point; splits off an internal validation set.
  void fit(const ml::Matrix& X, const ml::Labels& y) override;

  /// Paper protocol: explicit validation set monitors early stopping.
  TrainHistory fit_with_validation(const ml::Matrix& train_X,
                                   const ml::Labels& train_y,
                                   const ml::Matrix& val_X, const ml::Labels& val_y);

  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::vector<double> predict_proba_batch(const ml::Matrix& X) const;
  [[nodiscard]] std::string name() const override { return "Sequential NN"; }

  /// Persist the fitted architecture + Dense parameters (not the optimiser
  /// state or training history); load rebuilds the layer stack and restores
  /// the weights, giving bit-identical predict_proba.
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] const TrainHistory& history() const noexcept { return history_; }
  [[nodiscard]] std::size_t parameter_count() const noexcept;

 private:
  void build(std::size_t input_dim);
  [[nodiscard]] Matrix forward_batch(const Matrix& input) const;

  SequentialConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
  TrainHistory history_;
  std::size_t input_dim_ = 0;
};

}  // namespace hdc::nn
