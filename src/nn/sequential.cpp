#include "nn/sequential.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "data/split.hpp"
#include "util/rng.hpp"

namespace hdc::nn {

Sequential::Sequential(SequentialConfig config) : config_(std::move(config)) {
  if (config_.hidden.empty()) throw std::invalid_argument("Sequential: no hidden layers");
  if (config_.max_epochs == 0) throw std::invalid_argument("Sequential: zero epochs");
  if (config_.batch_size == 0) throw std::invalid_argument("Sequential: zero batch");
}

void Sequential::build(std::size_t input_dim) {
  layers_.clear();
  input_dim_ = input_dim;
  std::size_t in = input_dim;
  std::uint64_t layer_seed = config_.seed;
  for (const std::size_t width : config_.hidden) {
    layers_.push_back(std::make_unique<Dense>(in, width, util::mix_seed(layer_seed, 1)));
    layers_.push_back(std::make_unique<Relu>());
    in = width;
    layer_seed = util::mix_seed(layer_seed, 2);
  }
  layers_.push_back(std::make_unique<Dense>(in, 1, util::mix_seed(layer_seed, 3)));
  layers_.push_back(std::make_unique<Sigmoid>());
}

std::size_t Sequential::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  return total;
}

namespace {
Matrix to_matrix(const ml::Matrix& X, const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), X.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& src = X[rows[i]];
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}
}  // namespace

void Sequential::fit(const ml::Matrix& X, const ml::Labels& y) {
  ml::validate_training_data(X, y);
  const auto split = data::stratified_split(y, config_.internal_val_fraction,
                                            util::mix_seed(config_.seed, 0x5a11d));
  ml::Matrix train_X;
  ml::Labels train_y;
  ml::Matrix val_X;
  ml::Labels val_y;
  for (const std::size_t i : split.train) {
    train_X.push_back(X[i]);
    train_y.push_back(y[i]);
  }
  for (const std::size_t i : split.test) {
    val_X.push_back(X[i]);
    val_y.push_back(y[i]);
  }
  fit_with_validation(train_X, train_y, val_X, val_y);
}

TrainHistory Sequential::fit_with_validation(const ml::Matrix& train_X,
                                             const ml::Labels& train_y,
                                             const ml::Matrix& val_X,
                                             const ml::Labels& val_y) {
  ml::validate_training_data(train_X, train_y);
  if (val_X.size() != val_y.size()) {
    throw std::invalid_argument("Sequential: val X/y size mismatch");
  }
  build(train_X.front().size());
  history_ = TrainHistory{};

  const std::size_t n = train_X.size();
  Matrix val_matrix;
  if (!val_X.empty()) {
    std::vector<std::size_t> all(val_X.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    val_matrix = to_matrix(val_X, all);
  }

  Adam opt(config_.learning_rate);
  util::Rng rng(util::mix_seed(config_.seed, 0xba7c4));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  double best_monitored = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      const std::vector<std::size_t> batch_rows(order.begin() + static_cast<std::ptrdiff_t>(start),
                                                order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix input = to_matrix(train_X, batch_rows);
      std::vector<int> targets(batch_rows.size());
      for (std::size_t i = 0; i < batch_rows.size(); ++i) targets[i] = train_y[batch_rows[i]];

      for (auto& layer : layers_) input = layer->forward(input);
      LossResult loss = binary_cross_entropy(input, targets);
      epoch_loss += loss.loss;
      ++batches;

      opt.begin_step();
      Matrix grad = std::move(loss.grad);
      for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        grad = (*it)->backward(grad, opt);
      }
    }
    history_.train_loss.push_back(epoch_loss / static_cast<double>(batches));

    // Record the validation loss when a validation set exists; early
    // stopping watches the configured monitor (training loss by default,
    // matching the paper's "the loss function didn't improve").
    double val_loss = history_.train_loss.back();
    if (!val_y.empty()) {
      const Matrix val_pred = forward_batch(val_matrix);
      val_loss = binary_cross_entropy_value(val_pred, val_y);
    }
    history_.val_loss.push_back(val_loss);
    const double monitored =
        (config_.monitor == EarlyStopMonitor::kValLoss && !val_y.empty())
            ? val_loss
            : history_.train_loss.back();

    if (monitored + config_.min_delta < best_monitored) {
      best_monitored = monitored;
      history_.best_epoch = epoch;
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      history_.early_stopped = true;
      break;
    }
  }
  return history_;
}

Matrix Sequential::forward_batch(const Matrix& input) const {
  Matrix out = input;
  for (const auto& layer : layers_) out = layer->infer(out);
  return out;
}

double Sequential::predict_proba(std::span<const double> x) const {
  if (layers_.empty()) throw std::logic_error("Sequential: not fitted");
  if (x.size() != input_dim_) {
    throw std::invalid_argument("Sequential: query arity mismatch");
  }
  Matrix input(1, x.size());
  std::copy(x.begin(), x.end(), input.row(0).begin());
  return forward_batch(input).at(0, 0);
}

std::vector<double> Sequential::predict_proba_batch(const ml::Matrix& X) const {
  if (layers_.empty()) throw std::logic_error("Sequential: not fitted");
  if (X.empty()) return {};
  std::vector<std::size_t> all(X.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const Matrix out = forward_batch(to_matrix(X, all));
  std::vector<double> probs(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) probs[i] = out.at(i, 0);
  return probs;
}

void Sequential::save_state(std::ostream& out) const {
  if (layers_.empty()) throw std::logic_error("Sequential: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("nn.sequential").tag("v1").nl();
  w.u64(config_.hidden.size());
  for (const std::size_t h : config_.hidden) w.u64(h);
  w.nl();
  w.u64(config_.max_epochs).u64(config_.patience);
  w.u64(config_.monitor == EarlyStopMonitor::kTrainLoss ? 0 : 1);
  w.f64(config_.min_delta).u64(config_.batch_size).f64(config_.learning_rate);
  w.f64(config_.internal_val_fraction).u64(config_.seed).nl();
  w.u64(input_dim_).nl();
  std::size_t dense_count = 0;
  for (const auto& layer : layers_) {
    if (dynamic_cast<const Dense*>(layer.get()) != nullptr) ++dense_count;
  }
  w.u64(dense_count).nl();
  for (const auto& layer : layers_) {
    const auto* dense = dynamic_cast<const Dense*>(layer.get());
    if (dense == nullptr) continue;
    for (const Matrix* m : {&dense->weights(), &dense->bias()}) {
      w.u64(m->rows()).u64(m->cols()).nl();
      for (std::size_t i = 0; i < m->rows(); ++i) {
        for (const double v : m->row(i)) w.f64(v);
        w.nl();
      }
    }
  }
}

void Sequential::load_state(std::istream& in) {
  util::serde::Reader r(in, "load nn.sequential");
  r.expect("nn.sequential", "model tag");
  r.expect("v1", "format version");
  const std::size_t n_hidden = r.count("hidden layer count", 64);
  config_.hidden.assign(n_hidden, 0);
  for (std::size_t& h : config_.hidden) {
    h = r.count("hidden width", 1ULL << 20);
    if (h == 0) throw r.error("zero-width hidden layer");
  }
  config_.max_epochs = r.u64("max_epochs");
  config_.patience = r.u64("patience");
  config_.monitor = r.u64("monitor") == 0 ? EarlyStopMonitor::kTrainLoss
                                          : EarlyStopMonitor::kValLoss;
  config_.min_delta = r.f64("min_delta");
  config_.batch_size = r.u64("batch_size");
  config_.learning_rate = r.f64("learning_rate");
  config_.internal_val_fraction = r.f64("internal_val_fraction");
  config_.seed = r.u64("seed");
  input_dim_ = r.count("input_dim", 1ULL << 24);
  if (input_dim_ == 0) throw r.error("zero input dimension");
  build(input_dim_);
  std::size_t dense_count = 0;
  for (const auto& layer : layers_) {
    if (dynamic_cast<Dense*>(layer.get()) != nullptr) ++dense_count;
  }
  const std::size_t stored = r.count("dense layer count", 4096);
  if (stored != dense_count) {
    throw r.error("dense layer count mismatch: stored " + std::to_string(stored) +
                  ", architecture has " + std::to_string(dense_count));
  }
  auto read_nn_matrix = [&r](const char* what) {
    const std::size_t rows = r.count(what, 1ULL << 24);
    const std::size_t cols = r.count(what, 1ULL << 24);
    if (rows * cols > (1ULL << 26)) throw r.error("matrix too large");
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (double& v : m.row(i)) v = r.f64(what);
    }
    return m;
  };
  for (auto& layer : layers_) {
    auto* dense = dynamic_cast<Dense*>(layer.get());
    if (dense == nullptr) continue;
    Matrix weights = read_nn_matrix("dense weights");
    Matrix bias = read_nn_matrix("dense bias");
    try {
      dense->set_parameters(std::move(weights), std::move(bias));
    } catch (const std::invalid_argument& e) {
      throw r.error(e.what());
    }
  }
  history_ = TrainHistory{};
}

}  // namespace hdc::nn
