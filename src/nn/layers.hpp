// Layers for the sequential network: dense (fully connected), ReLU, sigmoid.
// The paper's model is Dense(32)-ReLU, Dense(32)-ReLU, Dense(1)-Sigmoid.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"

namespace hdc::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch (rows = samples). Must cache what backward needs.
  [[nodiscard]] virtual Matrix forward(const Matrix& input) = 0;

  /// Inference-only forward pass: no caching, usable on a const model.
  [[nodiscard]] virtual Matrix infer(const Matrix& input) const = 0;

  /// Backward pass: gradient w.r.t. this layer's output -> gradient w.r.t.
  /// its input; parameter gradients are applied through `opt` immediately.
  [[nodiscard]] virtual Matrix backward(const Matrix& grad_output, Adam& opt) = 0;

  [[nodiscard]] virtual std::size_t parameter_count() const noexcept { return 0; }
};

class Dense final : public Layer {
 public:
  /// He-uniform initialisation, seeded.
  Dense(std::size_t in_features, std::size_t out_features, std::uint64_t seed);

  [[nodiscard]] Matrix forward(const Matrix& input) override;
  [[nodiscard]] Matrix infer(const Matrix& input) const override;
  [[nodiscard]] Matrix backward(const Matrix& grad_output, Adam& opt) override;
  [[nodiscard]] std::size_t parameter_count() const noexcept override {
    return weights_.size() + bias_.size();
  }

  [[nodiscard]] const Matrix& weights() const noexcept { return weights_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return bias_; }

  /// Replace the fitted parameters (bundle load). Shapes must match the
  /// layer's construction shapes; throws std::invalid_argument otherwise.
  void set_parameters(Matrix weights, Matrix bias);

 private:
  Matrix weights_;  // in x out
  Matrix bias_;     // 1 x out
  Matrix cached_input_;
  AdamState w_state_;
  AdamState b_state_;
};

class Relu final : public Layer {
 public:
  [[nodiscard]] Matrix forward(const Matrix& input) override;
  [[nodiscard]] Matrix infer(const Matrix& input) const override;
  [[nodiscard]] Matrix backward(const Matrix& grad_output, Adam& opt) override;

 private:
  Matrix cached_input_;
};

class Sigmoid final : public Layer {
 public:
  [[nodiscard]] Matrix forward(const Matrix& input) override;
  [[nodiscard]] Matrix infer(const Matrix& input) const override;
  [[nodiscard]] Matrix backward(const Matrix& grad_output, Adam& opt) override;

 private:
  Matrix cached_output_;
};

}  // namespace hdc::nn
