#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdc::nn {

namespace {
constexpr double kEps = 1e-12;

void check_shapes(const Matrix& predictions, const std::vector<int>& targets) {
  if (predictions.cols() != 1) {
    throw std::invalid_argument("BCE: predictions must be a column");
  }
  if (predictions.rows() != targets.size()) {
    throw std::invalid_argument("BCE: batch size mismatch");
  }
}
}  // namespace

LossResult binary_cross_entropy(const Matrix& predictions,
                                const std::vector<int>& targets) {
  check_shapes(predictions, targets);
  LossResult result;
  result.grad = Matrix(predictions.rows(), 1);
  double total = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double p = std::clamp(predictions.at(i, 0), kEps, 1.0 - kEps);
    const double t = static_cast<double>(targets[i]);
    total += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
    result.grad.at(i, 0) = (p - t) / (p * (1.0 - p));
  }
  result.loss = total / static_cast<double>(targets.size());
  return result;
}

double binary_cross_entropy_value(const Matrix& predictions,
                                  const std::vector<int>& targets) {
  check_shapes(predictions, targets);
  double total = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double p = std::clamp(predictions.at(i, 0), kEps, 1.0 - kEps);
    const double t = static_cast<double>(targets[i]);
    total += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
  }
  return total / static_cast<double>(targets.size());
}

}  // namespace hdc::nn
