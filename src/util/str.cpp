#include "util/str.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace hdc::util {

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace hdc::util
