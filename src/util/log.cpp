#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/str.hpp"

namespace hdc::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

/// First-use initialisation from HDC_LOG_LEVEL; explicit set_log_level()
/// afterwards wins because it stores after this ran.
void init_level_from_env_once() noexcept {
  static const bool initialised = [] {
    if (const char* env = std::getenv("HDC_LOG_LEVEL")) {
      if (const std::optional<LogLevel> parsed = parse_log_level(env)) {
        g_level.store(*parsed, std::memory_order_relaxed);
      }
    }
    return true;
  }();
  (void)initialised;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

bool needs_quoting(std::string_view value) noexcept {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '\t' || c == '=' || c == '"') return true;
  }
  return false;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  init_level_from_env_once();
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  init_level_from_env_once();
  return g_level.load(std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  const std::string lower = to_lower(trim(name));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void log_message(LogLevel level, std::string_view msg) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] %s %.*s\n", elapsed, level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

std::string format_fields(std::string_view msg, std::span<const LogField> fields) {
  std::string out(msg);
  for (const LogField& field : fields) {
    out.push_back(' ');
    out += field.key;
    out.push_back('=');
    if (!needs_quoting(field.value)) {
      out += field.value;
      continue;
    }
    out.push_back('"');
    for (const char c : field.value) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

void log_fields(LogLevel level, std::string_view msg,
                std::span<const LogField> fields) {
  if (log_level() > level || level == LogLevel::kOff) return;
  log_message(level, format_fields(msg, fields));
}

}  // namespace hdc::util
