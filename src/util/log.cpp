#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace hdc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view msg) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] %s %.*s\n", elapsed, level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace hdc::util
