#include "util/serde.hpp"

#include <bit>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace hdc::util::serde {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

[[nodiscard]] int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;  // uppercase is rejected on purpose: one canonical spelling
}

[[nodiscard]] bool needs_escape(unsigned char c) noexcept {
  return c <= 0x20 || c == '%' || c == '~' || c >= 0x7f;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (needs_escape(u)) {
      out.push_back('%');
      out.push_back(kHexDigits[u >> 4]);
      out.push_back(kHexDigits[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      throw std::runtime_error("serde: dangling percent escape");
    }
    const int hi = hex_value(escaped[i + 1]);
    const int lo = hex_value(escaped[i + 2]);
    if (hi < 0 || lo < 0) {
      throw std::runtime_error("serde: bad percent escape");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

// -- Writer -------------------------------------------------------------

void Writer::sep() {
  if (!at_line_start_) out_ << ' ';
  at_line_start_ = false;
}

Writer& Writer::tag(std::string_view token) {
  sep();
  out_ << token;
  return *this;
}

Writer& Writer::u64(std::uint64_t value) {
  sep();
  out_ << value;
  return *this;
}

Writer& Writer::i64(std::int64_t value) {
  sep();
  out_ << value;
  return *this;
}

Writer& Writer::f64(double value) {
  sep();
  out_ << hex16(std::bit_cast<std::uint64_t>(value));
  return *this;
}

Writer& Writer::str(std::string_view value) {
  sep();
  out_ << '~' << escape(value);
  return *this;
}

Writer& Writer::nl() {
  out_ << '\n';
  at_line_start_ = true;
  return *this;
}

Writer& Writer::vec_f64(std::span<const double> values) {
  u64(values.size());
  for (const double v : values) f64(v);
  return *this;
}

Writer& Writer::vec_i64(std::span<const std::int64_t> values) {
  u64(values.size());
  for (const std::int64_t v : values) i64(v);
  return *this;
}

Writer& Writer::vec_int(std::span<const int> values) {
  u64(values.size());
  for (const int v : values) i64(v);
  return *this;
}

Writer& Writer::vec_u32(std::span<const std::uint32_t> values) {
  u64(values.size());
  for (const std::uint32_t v : values) u64(v);
  return *this;
}

Writer& Writer::vec_u64(std::span<const std::uint64_t> values) {
  u64(values.size());
  for (const std::uint64_t v : values) u64(v);
  return *this;
}

Writer& Writer::words(std::span<const std::uint64_t> values) {
  u64(values.size());
  for (const std::uint64_t v : values) {
    sep();
    out_ << hex16(v);
  }
  return *this;
}

// -- Reader -------------------------------------------------------------

Reader::Reader(std::istream& in, std::string context)
    : in_(in), context_(std::move(context)) {}

std::runtime_error Reader::error(const std::string& message) const {
  return std::runtime_error(context_ + ": " + message);
}

std::string Reader::token(const char* what) {
  std::string tok;
  if (!(in_ >> tok)) {
    throw error(std::string("unexpected end of input at ") + what);
  }
  return tok;
}

void Reader::expect(std::string_view expected, const char* what) {
  const std::string tok = token(what);
  if (tok != expected) {
    throw error(std::string("expected '") + std::string(expected) + "' for " + what +
                ", got '" + tok + "'");
  }
}

std::uint64_t Reader::u64(const char* what) {
  const std::string tok = token(what);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value, 10);
  if (ec != std::errc() || ptr != tok.data() + tok.size()) {
    throw error(std::string("bad integer for ") + what + " ('" + tok + "')");
  }
  return value;
}

std::int64_t Reader::i64(const char* what) {
  const std::string tok = token(what);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value, 10);
  if (ec != std::errc() || ptr != tok.data() + tok.size()) {
    throw error(std::string("bad signed integer for ") + what + " ('" + tok + "')");
  }
  return value;
}

std::uint64_t Reader::word(const char* what) {
  const std::string tok = token(what);
  if (tok.size() != 16) {
    throw error(std::string("bad hex word for ") + what + " ('" + tok +
                "'): expected exactly 16 hex digits");
  }
  std::uint64_t value = 0;
  for (const char c : tok) {
    const int digit = hex_value(c);
    if (digit < 0) {
      throw error(std::string("bad hex word for ") + what + " ('" + tok + "')");
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

double Reader::f64(const char* what) {
  return std::bit_cast<double>(word(what));
}

std::string Reader::str(const char* what) {
  const std::string tok = token(what);
  if (tok.empty() || tok.front() != '~') {
    throw error(std::string("bad string token for ") + what + " ('" + tok + "')");
  }
  try {
    return unescape(std::string_view(tok).substr(1));
  } catch (const std::runtime_error& e) {
    throw error(std::string("bad string token for ") + what + ": " + e.what());
  }
}

std::uint64_t Reader::count(const char* what, std::uint64_t max) {
  const std::uint64_t value = u64(what);
  if (value > max) {
    throw error(std::string("count for ") + what + " out of range (" +
                std::to_string(value) + " > " + std::to_string(max) + ")");
  }
  return value;
}

std::vector<double> Reader::vec_f64(const char* what, std::uint64_t max) {
  const std::uint64_t n = count(what, max);
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64(what));
  return out;
}

std::vector<std::int64_t> Reader::vec_i64(const char* what, std::uint64_t max) {
  const std::uint64_t n = count(what, max);
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(i64(what));
  return out;
}

std::vector<int> Reader::vec_int(const char* what, std::uint64_t max) {
  const std::uint64_t n = count(what, max);
  std::vector<int> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(static_cast<int>(i64(what)));
  return out;
}

std::vector<std::uint32_t> Reader::vec_u32(const char* what, std::uint64_t max) {
  const std::uint64_t n = count(what, max);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint32_t>(u64(what)));
  }
  return out;
}

std::vector<std::uint64_t> Reader::vec_u64(const char* what, std::uint64_t max) {
  const std::uint64_t n = count(what, max);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(u64(what));
  return out;
}

std::vector<std::uint64_t> Reader::read_words(const char* what, std::uint64_t max) {
  const std::uint64_t n = count(what, max);
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(word(what));
  return out;
}

}  // namespace hdc::util::serde
