#include "util/cli.hpp"

#include <stdexcept>

#include "util/str.hpp"

namespace hdc::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      const std::size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        flags_.emplace_back(std::string(arg.substr(0, eq)),
                            std::string(arg.substr(eq + 1)));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        flags_.emplace_back(std::string(arg), std::string(argv[i + 1]));
        ++i;
      } else {
        flags_.emplace_back(std::string(arg), std::string());
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

const std::string* Cli::find(std::string_view name) const noexcept {
  for (const auto& [key, value] : flags_) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool Cli::has_flag(std::string_view name) const noexcept { return find(name) != nullptr; }

std::string Cli::get_string(std::string_view name, std::string fallback) const {
  const std::string* v = find(name);
  return v != nullptr ? *v : std::move(fallback);
}

long long Cli::get_int(std::string_view name, long long fallback) const {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_int(*v);
  if (!parsed) throw std::invalid_argument("Cli: bad integer for " + std::string(name));
  return *parsed;
}

std::uint64_t Cli::get_uint(std::string_view name, std::uint64_t fallback) const {
  const long long v = get_int(name, static_cast<long long>(fallback));
  if (v < 0) throw std::invalid_argument("Cli: negative value for " + std::string(name));
  return static_cast<std::uint64_t>(v);
}

double Cli::get_double(std::string_view name, double fallback) const {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_double(*v);
  if (!parsed) throw std::invalid_argument("Cli: bad double for " + std::string(name));
  return *parsed;
}

}  // namespace hdc::util
