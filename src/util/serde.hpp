// Token-stream serialization helpers for model persistence (core/bundle).
//
// The bundle format is line-oriented text built from whitespace-separated
// tokens: integers in decimal, doubles as their 16-hex-digit IEEE-754 bit
// pattern (exact round-trip, no locale / precision hazards), strings as a
// '~'-prefixed percent-escaped token. The Reader is strict: every token is
// validated in full (no silently ignored trailing characters) and every
// failure throws std::runtime_error carrying the reader's context string and
// the field name, so a corrupted bundle produces a diagnostic instead of UB.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hdc::util::serde {

/// FNV-1a 64-bit hash — the bundle's per-section checksum.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// 16-lowercase-hex-digit rendering of a 64-bit value (fixed width).
[[nodiscard]] std::string hex16(std::uint64_t value);

/// Percent-escape bytes so the result is one whitespace-free token.
[[nodiscard]] std::string escape(std::string_view raw);
/// Inverse of escape(); throws std::runtime_error on malformed input.
[[nodiscard]] std::string unescape(std::string_view escaped);

/// Emits whitespace-separated tokens. nl() breaks lines for readability;
/// readers never depend on line structure.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  Writer& tag(std::string_view token);   // literal token (no whitespace)
  Writer& u64(std::uint64_t value);
  Writer& i64(std::int64_t value);
  Writer& f64(double value);             // hex16 of the bit pattern
  Writer& str(std::string_view value);   // '~' + escape(value)
  Writer& nl();

  /// Length-prefixed vectors: "<n> v0 v1 ...".
  Writer& vec_f64(std::span<const double> values);
  Writer& vec_i64(std::span<const std::int64_t> values);
  Writer& vec_int(std::span<const int> values);
  Writer& vec_u32(std::span<const std::uint32_t> values);
  Writer& vec_u64(std::span<const std::uint64_t> values);
  /// Words as hex16 tokens (bit-exact, used for packed hypervector data).
  Writer& words(std::span<const std::uint64_t> values);

 private:
  void sep();

  std::ostream& out_;
  bool at_line_start_ = true;
};

/// Strict token reader; all failures throw std::runtime_error prefixed with
/// the context given at construction.
class Reader {
 public:
  Reader(std::istream& in, std::string context);

  /// Next token; throws on end of input.
  [[nodiscard]] std::string token(const char* what);
  /// Next token must equal `expected` exactly.
  void expect(std::string_view expected, const char* what);

  [[nodiscard]] std::uint64_t u64(const char* what);
  [[nodiscard]] std::int64_t i64(const char* what);
  [[nodiscard]] double f64(const char* what);
  [[nodiscard]] std::string str(const char* what);
  /// u64 with an upper bound — guards container reserves against corrupted
  /// counts (throws instead of attempting a huge allocation).
  [[nodiscard]] std::uint64_t count(const char* what, std::uint64_t max);
  /// Strict hex16 word.
  [[nodiscard]] std::uint64_t word(const char* what);

  [[nodiscard]] std::vector<double> vec_f64(const char* what, std::uint64_t max);
  [[nodiscard]] std::vector<std::int64_t> vec_i64(const char* what, std::uint64_t max);
  [[nodiscard]] std::vector<int> vec_int(const char* what, std::uint64_t max);
  [[nodiscard]] std::vector<std::uint32_t> vec_u32(const char* what, std::uint64_t max);
  [[nodiscard]] std::vector<std::uint64_t> vec_u64(const char* what, std::uint64_t max);
  [[nodiscard]] std::vector<std::uint64_t> read_words(const char* what,
                                                      std::uint64_t max);

  /// Build (not throw) a contextualised error for callers' own checks.
  [[nodiscard]] std::runtime_error error(const std::string& message) const;

 private:
  std::istream& in_;
  std::string context_;
};

}  // namespace hdc::util::serde
