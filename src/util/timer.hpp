// Wall-clock timer for coarse benchmark timing.
#pragma once

#include <chrono>

namespace hdc::util {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hdc::util
