// Tiny command-line flag parser for examples and benches.
//
//   Cli cli(argc, argv);
//   const auto dim  = cli.get_int("--dim", 10000);
//   const auto seed = cli.get_uint("--seed", 42);
//   const bool fast = cli.has_flag("--fast");
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hdc::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if `--name` is present (with or without a value).
  [[nodiscard]] bool has_flag(std::string_view name) const noexcept;

  /// Value of `--name value` or `--name=value`; fallback if absent.
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string fallback) const;
  [[nodiscard]] long long get_int(std::string_view name, long long fallback) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  [[nodiscard]] const std::string* find(std::string_view name) const noexcept;

  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hdc::util
