// Deterministic pseudo-random number generation.
//
// All stochastic components in the library take explicit 64-bit seeds so that
// every experiment is reproducible bit-for-bit, independent of thread count.
// The generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64
// so that low-entropy seeds (0, 1, 2, ...) still produce well-mixed streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace hdc::util {

/// splitmix64 step: used for seeding and for deriving per-item substreams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values; used to derive independent substream
/// seeds (e.g. per-row or per-tree) from a base seed. Deterministic and
/// order-independent w.r.t. parallel scheduling.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t seed,
                                               std::uint64_t stream) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL + (stream << 6) + (stream >> 2));
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies (most of) the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased (Lemire's method with rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Gamma(shape, scale) via Marsaglia–Tsang. shape > 0, scale > 0.
  [[nodiscard]] double gamma(double shape, double scale) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher–Yates).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hdc::util
