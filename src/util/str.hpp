// Small string helpers used by the CSV reader and CLI parsing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdc::util {

/// Remove leading/trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter; keeps empty fields. "a,,b" -> {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Parse a double; returns nullopt on failure or trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// Parse a non-negative integer; returns nullopt on failure.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

/// True if two strings are equal ignoring ASCII case.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// printf-style number formatting helpers used by report tables.
[[nodiscard]] std::string format_double(double value, int decimals);
[[nodiscard]] std::string format_percent(double fraction, int decimals = 1);

}  // namespace hdc::util
