// Minimal leveled logger. Thread-safe; writes to stderr.
//
// The minimum level is initialised from the HDC_LOG_LEVEL environment
// variable (debug | info | warn | error | off, case-insensitive) at first
// use; set_log_level() overrides it. Structured messages append `key=value`
// fields after the message text (values with spaces / '=' / '"' are quoted).
#pragma once

#include <initializer_list>
#include <mutex>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>

namespace hdc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Overrides any
/// HDC_LOG_LEVEL environment setting.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parse a level name ("debug", "info", "warn"/"warning", "error", "off"),
/// case-insensitive; nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// Emit a single log line (adds timestamp + level prefix).
void log_message(LogLevel level, std::string_view msg);

/// One structured key=value field.
struct LogField {
  std::string key;
  std::string value;
};

/// Render `msg key=value ...`; values containing spaces, '=', or '"' are
/// double-quoted with embedded quotes/backslashes escaped.
[[nodiscard]] std::string format_fields(std::string_view msg,
                                        std::span<const LogField> fields);

/// Structured emit: one line, message followed by key=value fields.
void log_fields(LogLevel level, std::string_view msg,
                std::span<const LogField> fields);
inline void log_fields(LogLevel level, std::string_view msg,
                       std::initializer_list<LogField> fields) {
  log_fields(level, msg, std::span<const LogField>(fields.begin(), fields.size()));
}

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace hdc::util
