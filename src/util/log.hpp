// Minimal leveled logger. Thread-safe; writes to stderr.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace hdc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a single log line (adds timestamp + level prefix).
void log_message(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) log_message(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) log_message(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) log_message(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace hdc::util
