#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace hdc::util {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace hdc::util
