// ASCII table renderer used by the bench binaries to print the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace hdc::util {

/// Column-aligned ASCII table. Usage:
///   Table t({"Model", "Features", "Hypervectors"});
///   t.add_row({"Random Forest", "78.4%", "78.5%"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with box-drawing padding. Each cell is left-aligned except cells
  /// that look numeric (start with digit/'-'/'.') which are right-aligned.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace hdc::util
