#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hdc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  const char c = s.front();
  return (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '+';
}
}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  std::ostringstream out;
  const auto hline = [&] {
    out << '+';
    for (std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = width[c] - cell.size();
      if (looks_numeric(cell)) {
        out << ' ' << std::string(pad, ' ') << cell << ' ';
      } else {
        out << ' ' << cell << std::string(pad, ' ') << ' ';
      }
      out << '|';
    }
    out << '\n';
  };

  hline();
  emit(header_);
  hline();
  for (const Row& r : rows_) {
    if (r.separator) {
      hline();
    } else {
      emit(r.cells);
    }
  }
  hline();
  return out.str();
}

}  // namespace hdc::util
