// Gradient boosting with oblivious (symmetric) decision trees — the CatBoost
// algorithm family. Every level of a tree applies ONE (feature, threshold)
// test to all nodes, so a depth-L tree is a lookup table with 2^L leaves
// indexed by the L test outcomes. Features are quantile-binned ("borders" in
// CatBoost terms).
//
// Simplification vs. the full CatBoost: we use plain (not ordered) boosting
// and no categorical target statistics — both datasets here are numeric /
// binary, where ordered boosting's benefit is leakage control on target
//-encoded categoricals. Documented in DESIGN.md §3.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace hdc::ml {

struct OrderedGbdtConfig {
  std::size_t n_rounds = 100;
  double learning_rate = 0.1;
  std::size_t depth = 6;      // CatBoost default
  double lambda = 3.0;        // CatBoost's l2_leaf_reg default
  std::size_t max_bins = 64;  // quantile borders per feature
  double min_child_weight = 1e-3;
};

class OrderedGbdtClassifier final : public Classifier {
 public:
  explicit OrderedGbdtClassifier(OrderedGbdtConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "CatBoost"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] std::size_t round_count() const noexcept { return trees_.size(); }

 private:
  struct ObliviousTree {
    std::vector<std::int32_t> features;   // one per level
    std::vector<double> thresholds;       // raw-value threshold per level
    std::vector<double> leaf_values;      // 2^levels entries
  };

  [[nodiscard]] static double tree_output(const ObliviousTree& tree,
                                          std::span<const double> x);

  OrderedGbdtConfig config_;
  std::vector<std::vector<double>> bin_edges_;
  std::vector<ObliviousTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace hdc::ml
