#include "ml/sharded.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace hdc::ml {

MaterializedShardSource::MaterializedShardSource(
    const hv::ShardedBitMatrix& bits, std::span<const int> labels)
    : bits_(&bits), labels_(labels) {
  if (labels.size() != bits.rows()) {
    throw std::invalid_argument(
        "MaterializedShardSource: " + std::to_string(labels.size()) +
        " labels for " + std::to_string(bits.rows()) + " rows");
  }
}

std::vector<std::size_t> strided_subsample(std::size_t n, std::size_t cap) {
  std::vector<std::size_t> indices;
  if (n <= cap) {
    indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = i;
    return indices;
  }
  indices.resize(cap);
  for (std::size_t i = 0; i < cap; ++i) indices[i] = i * n / cap;
  return indices;
}

hv::BitMatrix gather_rows(const ShardSource& src,
                          std::span<const std::size_t> indices) {
  hv::PackedHVs out(src.cols(), indices.size());
  std::size_t pos = 0;
  for (std::size_t s = 0; s < src.num_shards() && pos < indices.size(); ++s) {
    const std::size_t begin = src.shard_begin(s);
    const std::size_t end = begin + src.shard_rows(s);
    if (indices[pos] >= end) continue;  // nothing wanted here: stay streaming
    const hv::BitMatrix& shard = src.shard(s);
    const std::size_t wpr = shard.words_per_row();
    while (pos < indices.size() && indices[pos] < end) {
      const std::uint64_t* row = shard.row_bits(indices[pos] - begin);
      std::copy(row, row + wpr, out.row(pos));
      ++pos;
    }
  }
  if (pos != indices.size()) {
    throw std::out_of_range("gather_rows: index beyond the last shard");
  }
  return hv::BitMatrix::from_rows(std::move(out));
}

std::vector<int> gather_labels(std::span<const int> labels,
                               std::span<const std::size_t> indices) {
  std::vector<int> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(labels[i]);
  return out;
}

void note_hist_merge(std::size_t ops) {
  static obs::Counter& merges = obs::counter("ml.hist_merge_ops");
  merges.add(ops);
}

}  // namespace hdc::ml
