// Platt scaling: fit a logistic map sigma(a*s + b) from raw classifier
// scores to calibrated probabilities. Used to turn Hamming margins and SVC
// decision values into the kind of clinical risk score the paper's §III-B
// describes ("present a score to inform clinicians").
#pragma once

#include <cstddef>
#include <vector>

namespace hdc::ml {

class PlattCalibrator {
 public:
  /// Fit on held-out (score, label) pairs by Newton iterations on the
  /// log-likelihood (with Platt's label smoothing to avoid saturation).
  void fit(const std::vector<double>& scores, const std::vector<int>& labels,
           std::size_t max_iter = 100);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Calibrated probability for a raw score.
  [[nodiscard]] double transform(double score) const;
  [[nodiscard]] std::vector<double> transform(const std::vector<double>& scores) const;

  [[nodiscard]] double slope() const noexcept { return a_; }
  [[nodiscard]] double intercept() const noexcept { return b_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace hdc::ml
