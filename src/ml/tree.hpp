// CART classification tree (gini impurity, binary splits).
//
// Split search is exact: continuous columns are sorted per node; columns
// whose values are all 0/1 (hypervector inputs) skip sorting and use a
// two-bucket count, which keeps 10,000-column trees tractable.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace hdc::ml {

struct TreeConfig {
  std::size_t max_depth = 0;  // 0 = unlimited (capped internally at 64)
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of feature candidates per node; 0 = all features. Random forests
  /// set this to sqrt(d).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

/// A single fitted tree. Also exposes the internal fit-from-table entry point
/// used by RandomForest (bootstrapped row sets, per-node feature sampling).
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;

  /// Fit on a subset of a prepared table (rows may repeat = bootstrap).
  void fit_from_table(const ColumnTable& table, std::vector<std::uint32_t> rows,
                      std::uint64_t seed);

  /// Packed analogue of fit_from_table: `multiplicity[r]` is row r's
  /// bootstrap count (empty = every row once). Weighted node counts come
  /// from multiplicity bit-planes — count = sum_k 2^k * popcount(plane_k &
  /// mask) — so the fit is bit-identical to the dense fit on the
  /// equivalent row multiset.
  void fit_from_bits(const hv::BitMatrix& X, const Labels& y,
                     std::span<const std::uint32_t> multiplicity,
                     std::uint64_t seed);

  /// Out-of-core analogue of fit_from_bits: level-wise growth over a
  /// sharded source, with every node statistic (weighted counts and
  /// weighted positives per candidate feature) an integer popcount summed
  /// across shards — so the tree is bit-identical at any shard count.
  /// Candidate features are drawn from a per-node RNG keyed on
  /// (seed, node id); this is a different (still deterministic) stream
  /// from fit_from_bits' single depth-first RNG, so the two entry points
  /// agree only when max_features covers every column.
  void fit_streamed(const ShardSource& src, std::span<const int> y,
                    std::span<const std::uint32_t> multiplicity,
                    std::uint64_t seed);

  /// fit_streamed over all rows once (no bootstrap).
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;

  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::vector<int> predict_all_bits(const hv::BitMatrix& X) const override;
  /// predict_proba for one packed 0/1 row (words of a BitMatrix row).
  [[nodiscard]] double predict_proba_bits(const std::uint64_t* row_bits) const;
  [[nodiscard]] std::string name() const override { return "Decision Tree"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Gini importance per feature: total impurity decrease contributed by
  /// splits on that feature, normalised to sum to 1 (all-zero if the tree is
  /// a single leaf).
  [[nodiscard]] const std::vector<double>& feature_importances() const noexcept {
    return importances_;
  }

 private:
  struct Node {
    // Internal node: feature >= 0; leaf: feature == -1.
    std::int32_t feature = -1;
    double threshold = 0.0;  // go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double prob = 0.0;  // positive-class fraction at the node
  };

  std::int32_t build(const ColumnTable& table, std::vector<std::uint32_t>& rows,
                     std::size_t depth, util::Rng& rng);

  struct PackedTable;  // bitplane fit context, defined in tree.cpp
  std::int32_t build_packed(const PackedTable& table,
                            std::vector<std::uint64_t>& mask, std::size_t depth,
                            util::Rng& rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  std::size_t n_features_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace hdc::ml
