// Shard-at-a-time training inputs.
//
// A ShardSource hands a model one BitMatrix shard at a time — contiguous,
// ascending global row ranges, exactly the blocks a ShardedBitMatrix or the
// out-of-core encode path produces. Only one shard need be resident at once
// (the reference a shard() call returns is valid until the next call), so a
// model that trains through this interface never sees the full design
// matrix. Labels stay fully resident: 4 bytes/row is noise next to the
// bitplanes.
//
// The sharded fit paths lean on two exact merge mechanisms:
//   1. order-free integer addition — popcounts, class counts and quantized
//      gradient histograms are integers, so per-shard partials merged in any
//      order equal the single-shard statistic bit for bit;
//   2. carried sequential accumulation — a float accumulator carried across
//      shards in ascending global row order executes the identical IEEE op
//      sequence regardless of where the shard boundaries fall.
// Per-shard *float* partial sums merged afterwards are neither, and are
// deliberately absent from this API.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hv/sharded_bits.hpp"
#include "ml/classifier.hpp"  // ShardedFitOptions + the fit_shards entry point

namespace hdc::ml {

/// Sequence of bit-packed shards in ascending global row order: the shard
/// geometry and single-resident-shard contract of hv::BitShardSource, plus
/// the labels the supervised fit paths need. Labels stay fully resident:
/// 4 bytes/row is noise next to the bitplanes.
class ShardSource : public hv::BitShardSource {
 public:
  /// Labels for all rows in ascending global order (fully resident).
  [[nodiscard]] virtual std::span<const int> labels() const = 0;
};

/// ShardSource over an already-encoded ShardedBitMatrix (both borrowed).
class MaterializedShardSource final : public ShardSource {
 public:
  MaterializedShardSource(const hv::ShardedBitMatrix& bits,
                          std::span<const int> labels);

  [[nodiscard]] std::size_t rows() const override { return bits_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return bits_->cols(); }
  [[nodiscard]] std::size_t num_shards() const override {
    return bits_->num_shards();
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const override {
    return bits_->shard_begin(s);
  }
  [[nodiscard]] const hv::BitMatrix& shard(std::size_t s) const override {
    return bits_->shard(s);
  }
  [[nodiscard]] std::span<const int> labels() const override { return labels_; }

 private:
  const hv::ShardedBitMatrix* bits_;
  std::span<const int> labels_;
};

/// Deterministic strided subsample: n <= cap selects every row; otherwise
/// the cap indices i*n/cap — strictly ascending, distinct, and a pure
/// function of (n, cap), so the selection is shard-count-invariant.
[[nodiscard]] std::vector<std::size_t> strided_subsample(std::size_t n,
                                                         std::size_t cap);

/// Materialize the given ascending global row indices as one BitMatrix,
/// touching each shard at most once.
[[nodiscard]] hv::BitMatrix gather_rows(const ShardSource& src,
                                        std::span<const std::size_t> indices);

[[nodiscard]] std::vector<int> gather_labels(
    std::span<const int> labels, std::span<const std::size_t> indices);

/// Bump the `ml.hist_merge_ops` counter: one op per per-shard histogram /
/// popcount block merged by integer addition.
void note_hist_merge(std::size_t ops);

}  // namespace hdc::ml
