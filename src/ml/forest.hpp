// Random forest: bagged CART trees with per-node feature subsampling.
// Trees are trained in parallel; each tree derives its own RNG stream from
// (seed, tree index), so results are independent of thread scheduling.
#pragma once

#include <memory>

#include "ml/tree.hpp"

namespace hdc::ml {

struct ForestConfig {
  std::size_t n_trees = 100;  // scikit-learn default
  TreeConfig tree;            // tree.max_features == 0 selects sqrt(d)
  bool bootstrap = true;
  std::uint64_t seed = 17;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  /// Sharded fit: the same bootstrap draw sequence as fit_bits feeds each
  /// tree's DecisionTree::fit_streamed, whose node statistics are integer
  /// popcounts merged across shards — bit-identical at any shard count.
  /// Trees are fitted sequentially (a ShardSource's current shard is
  /// invalidated by the next shard() call, so it is not shareable across
  /// worker threads).
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::vector<int> predict_all_bits(const hv::BitMatrix& X) const override;
  [[nodiscard]] std::string name() const override { return "Random Forest"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Mean of the per-tree gini importances (normalised to sum to 1).
  [[nodiscard]] std::vector<double> feature_importances() const;

 private:
  void fit_packed(const hv::BitMatrix& X, const Labels& y);

  ForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace hdc::ml
