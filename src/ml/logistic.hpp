// L2-regularised logistic regression, full-batch gradient descent with
// momentum on internally standardised features (mimicking the behaviour of a
// well-conditioned second-order solver such as scikit-learn's lbfgs).
#pragma once

#include "ml/classifier.hpp"

namespace hdc::ml {

struct LogisticConfig {
  double c = 1.0;              // inverse regularisation strength (sklearn's C)
  std::size_t max_iter = 300;  // gradient steps
  double learning_rate = 0.5;
  double momentum = 0.9;
  double tol = 1e-6;  // stop when gradient norm falls below tol
  bool standardize = true;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  /// Exact sharded fit: moments come from integer popcounts merged across
  /// shards, and each gradient pass streams the shards in ascending global
  /// row order expanding rows through the same 2-entry z0/z1 table — the
  /// identical IEEE op sequence as fit_bits() on the concatenated matrix,
  /// so the result is bit-identical at any shard count.
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "Logistic Regression"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  /// Learned weights (in standardised space if standardize was on).
  [[nodiscard]] const std::vector<double>& weights() const noexcept { return w_; }
  [[nodiscard]] double bias() const noexcept { return b_; }

 private:
  void fit_packed(const hv::BitMatrix& X, const Labels& y);
  void run_gradient_descent(const std::vector<double>& Z, const Labels& y,
                            std::size_t n, std::size_t d);

  LogisticConfig config_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace hdc::ml
