#include "ml/hist_gbdt.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"

namespace hdc::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

HistGbdtClassifier::HistGbdtClassifier(HistGbdtConfig config) : config_(config) {
  if (config_.n_rounds == 0) throw std::invalid_argument("HistGBDT: zero rounds");
  if (config_.num_leaves < 2) throw std::invalid_argument("HistGBDT: num_leaves < 2");
  if (config_.max_bins < 2 || config_.max_bins > 255) {
    throw std::invalid_argument("HistGBDT: max_bins must be in [2, 255]");
  }
}

std::uint8_t HistGbdtClassifier::bin_of(std::size_t feature, double value) const {
  const std::vector<double>& edges = bin_edges_[feature];
  // Bin b holds values <= edges[b]; the last bin is unbounded above.
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<std::uint8_t>(it - edges.begin());
}

void HistGbdtClassifier::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  if (packed_enabled()) {
    if (const std::optional<hv::BitMatrix> bits = try_pack(X)) {
      fit_packed(*bits, y);
      return;
    }
  }
  obs::Span span("ml.hist_gbdt.fit");
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();
  n_features_ = d;
  base_margin_ = 0.0;

  // Quantile binning: edges are the values at evenly spaced ranks of the
  // sorted unique values. Bin count per feature <= max_bins.
  bin_edges_.assign(d, {});
  std::vector<double> column;
  for (std::size_t j = 0; j < d; ++j) {
    column.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) column[i] = X[i][j];
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());
    std::vector<double>& edges = bin_edges_[j];
    if (column.size() <= config_.max_bins) {
      // One bin per distinct value; edge = the value itself.
      edges.assign(column.begin(), column.end());
      if (!edges.empty()) edges.pop_back();  // last bin open-ended
    } else {
      for (std::size_t b = 1; b < config_.max_bins; ++b) {
        const std::size_t rank = b * column.size() / config_.max_bins;
        edges.push_back(column[rank - 1]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
  }

  // Pre-binned matrix (row-major u8).
  std::vector<std::uint8_t> bins(n * d);
  std::size_t max_bin_count = 2;
  for (std::size_t j = 0; j < d; ++j) {
    max_bin_count = std::max(max_bin_count, bin_edges_[j].size() + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) bins[i * d + j] = bin_of(j, X[i][j]);
  }

  std::vector<double> margin(n, base_margin_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  struct LeafCandidate {
    std::int32_t node_id = -1;
    std::vector<std::uint32_t> rows;
    double g_sum = 0.0;
    double h_sum = 0.0;
    // Best split found for this leaf.
    double gain = -1.0;
    std::int32_t feature = -1;
    std::int32_t bin = -1;
  };

  // Histogram scratch: one (g, h, count) triple per bin.
  std::vector<double> hg(max_bin_count);
  std::vector<double> hh(max_bin_count);
  std::vector<std::uint32_t> hc(max_bin_count);

  const auto find_best_split = [&](LeafCandidate& leaf) {
    leaf.gain = 0.0;
    leaf.feature = -1;
    const double parent_score =
        leaf.g_sum * leaf.g_sum / (leaf.h_sum + config_.lambda);
    for (std::size_t j = 0; j < d; ++j) {
      const std::size_t n_bins = bin_edges_[j].size() + 1;
      if (n_bins < 2) continue;
      std::fill(hg.begin(), hg.begin() + static_cast<std::ptrdiff_t>(n_bins), 0.0);
      std::fill(hh.begin(), hh.begin() + static_cast<std::ptrdiff_t>(n_bins), 0.0);
      std::fill(hc.begin(), hc.begin() + static_cast<std::ptrdiff_t>(n_bins), 0u);
      for (const std::uint32_t r : leaf.rows) {
        const std::uint8_t b = bins[r * d + j];
        hg[b] += grad[r];
        hh[b] += hess[r];
        ++hc[b];
      }
      double gl = 0.0;
      double hl = 0.0;
      std::uint32_t cl = 0;
      for (std::size_t b = 0; b + 1 < n_bins; ++b) {
        gl += hg[b];
        hl += hh[b];
        cl += hc[b];
        const std::uint32_t cr = static_cast<std::uint32_t>(leaf.rows.size()) - cl;
        if (cl < config_.min_data_in_leaf || cr < config_.min_data_in_leaf) continue;
        const double hr = leaf.h_sum - hl;
        if (hl < config_.min_child_weight || hr < config_.min_child_weight) continue;
        const double gr = leaf.g_sum - gl;
        const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                   gr * gr / (hr + config_.lambda) - parent_score);
        if (gain > leaf.gain + 1e-12) {
          leaf.gain = gain;
          leaf.feature = static_cast<std::int32_t>(j);
          leaf.bin = static_cast<std::int32_t>(b);
        }
      }
    }
  };

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-16, p * (1.0 - p));
    }

    Tree tree;
    std::vector<LeafCandidate> leaves;

    LeafCandidate root;
    root.node_id = 0;
    root.rows.resize(n);
    std::iota(root.rows.begin(), root.rows.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      root.g_sum += grad[i];
      root.h_sum += hess[i];
    }
    tree.emplace_back();
    tree[0].value = -root.g_sum / (root.h_sum + config_.lambda);
    find_best_split(root);
    leaves.push_back(std::move(root));

    // Leaf-wise growth: repeatedly split the leaf with the largest gain.
    while (leaves.size() < config_.num_leaves) {
      std::size_t best = leaves.size();
      double best_gain = 1e-12;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        if (leaves[l].feature >= 0 && leaves[l].gain > best_gain) {
          best_gain = leaves[l].gain;
          best = l;
        }
      }
      if (best == leaves.size()) break;  // nothing splittable

      LeafCandidate leaf = std::move(leaves[best]);
      leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(best));

      const std::size_t j = static_cast<std::size_t>(leaf.feature);
      LeafCandidate left;
      LeafCandidate right;
      for (const std::uint32_t r : leaf.rows) {
        if (bins[r * d + j] <= leaf.bin) {
          left.rows.push_back(r);
          left.g_sum += grad[r];
          left.h_sum += hess[r];
        } else {
          right.rows.push_back(r);
          right.g_sum += grad[r];
          right.h_sum += hess[r];
        }
      }

      // NOTE: take indices, not references — emplace_back below may
      // reallocate the node vector.
      const std::int32_t left_id = static_cast<std::int32_t>(tree.size());
      tree.emplace_back();
      tree.back().value = -left.g_sum / (left.h_sum + config_.lambda);
      const std::int32_t right_id = static_cast<std::int32_t>(tree.size());
      tree.emplace_back();
      tree.back().value = -right.g_sum / (right.h_sum + config_.lambda);

      Node& parent = tree[static_cast<std::size_t>(leaf.node_id)];
      parent.feature = leaf.feature;
      parent.bin = leaf.bin;
      parent.threshold = bin_edges_[j][static_cast<std::size_t>(leaf.bin)];
      parent.left = left_id;
      parent.right = right_id;
      left.node_id = left_id;
      right.node_id = right_id;

      find_best_split(left);
      find_best_split(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
    }

    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree_output(tree, X[i]);
    }
    trees_.push_back(std::move(tree));
  }
  obs::counter("ml.fit.boost_rounds").add(trees_.size());
}

void HistGbdtClassifier::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  fit_packed(X, y);
}

namespace {

/// Registry handles resolved once; every add() gates on obs::enabled().
struct PackedFitMetrics {
  obs::Counter& fits = obs::counter("ml.packed.fits");
  obs::Counter& node_popcounts = obs::counter("ml.hist.node_popcounts");
  obs::Counter& word_ops = obs::counter("ml.packed.word_ops");

  static PackedFitMetrics& get() {
    static PackedFitMetrics metrics;
    return metrics;
  }
};

/// Route a 0/1 row of packed bits through a fitted tree, applying the exact
/// dense rule "value <= threshold" to the expanded bit (thresholds are 0.0
/// for binary-trained trees, but a dense-trained tree may carry others).
template <typename Tree>
double tree_output_bits(const Tree& tree, const std::uint64_t* row_bits) {
  std::int32_t node = 0;
  while (tree[static_cast<std::size_t>(node)].feature >= 0) {
    const auto& nd = tree[static_cast<std::size_t>(node)];
    const std::size_t j = static_cast<std::size_t>(nd.feature);
    const double value = ((row_bits[j >> 6] >> (j & 63)) & 1ULL) != 0 ? 1.0 : 0.0;
    node = value <= nd.threshold ? nd.left : nd.right;
  }
  return tree[static_cast<std::size_t>(node)].value;
}

}  // namespace

void HistGbdtClassifier::fit_packed(const hv::BitMatrix& X, const Labels& y) {
  obs::Span span("ml.hist_gbdt.fit_packed");
  PackedFitMetrics& metrics = PackedFitMetrics::get();
  metrics.fits.increment();
  const std::size_t n = X.rows();
  const std::size_t d = X.cols();
  const std::size_t words = X.words_per_column();
  n_features_ = d;
  base_margin_ = 0.0;

  // Bin structure on 0/1 data: a mixed column gets edges {0.0} (two bins),
  // a constant column gets no edges (one bin — skipped by split search).
  // Matches the dense quantile binning applied to a binary column exactly.
  bin_edges_.assign(d, {});
  for (std::size_t j = 0; j < d; ++j) {
    const std::size_t ones = X.column_popcount(j);
    if (ones > 0 && ones < n) bin_edges_[j] = {0.0};
  }

  std::vector<double> margin(n, base_margin_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  struct LeafCandidate {
    std::int32_t node_id = -1;
    std::vector<std::uint64_t> mask;  // rows in this leaf, packed
    std::uint32_t count = 0;
    double g_sum = 0.0;
    double h_sum = 0.0;
    double gain = -1.0;
    std::int32_t feature = -1;
    std::int32_t bin = -1;
  };

  // Per-column gains land in a flat array from parallel workers; the winner
  // is then chosen in one sequential ascending-j scan that replicates the
  // dense loop's running-best epsilon tie-break exactly (a column's gain
  // never depends on the running best, so the two-phase split is lossless).
  constexpr double kSkip = -std::numeric_limits<double>::infinity();
  std::vector<double> gains(d);

  const auto find_best_split = [&](LeafCandidate& leaf) {
    leaf.gain = 0.0;
    leaf.feature = -1;
    const double parent_score =
        leaf.g_sum * leaf.g_sum / (leaf.h_sum + config_.lambda);
    const std::uint64_t* mask = leaf.mask.data();
    parallel::parallel_for_chunks(0, d, [&](std::size_t lo, std::size_t hi) {
      const simd::Kernels& kernels = simd::active();
      for (std::size_t j = lo; j < hi; ++j) {
        if (bin_edges_[j].empty()) {
          gains[j] = kSkip;
          continue;
        }
        const std::uint64_t* col = X.column(j);
        // Left = rows with bit 0: count first (cheap popcount), gradient
        // sums only when the count gate passes.
        const std::uint32_t cl =
            static_cast<std::uint32_t>(kernels.andnot_popcount(col, mask, words));
        const std::uint32_t cr = leaf.count - cl;
        if (cl < config_.min_data_in_leaf || cr < config_.min_data_in_leaf) {
          gains[j] = kSkip;
          continue;
        }
        double gl = 0.0;
        double hl = 0.0;
        masked_pair_sum_not(col, mask, words, grad.data(), hess.data(), gl, hl);
        const double hr = leaf.h_sum - hl;
        if (hl < config_.min_child_weight || hr < config_.min_child_weight) {
          gains[j] = kSkip;
          continue;
        }
        const double gr = leaf.g_sum - gl;
        gains[j] = 0.5 * (gl * gl / (hl + config_.lambda) +
                          gr * gr / (hr + config_.lambda) - parent_score);
      }
    });
    metrics.node_popcounts.add(d);
    metrics.word_ops.add(2 * d * words);
    for (std::size_t j = 0; j < d; ++j) {
      if (gains[j] > leaf.gain + 1e-12) {
        leaf.gain = gains[j];
        leaf.feature = static_cast<std::int32_t>(j);
        leaf.bin = 0;
      }
    }
  };

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-16, p * (1.0 - p));
    }

    Tree tree;
    std::vector<LeafCandidate> leaves;

    LeafCandidate root;
    root.node_id = 0;
    root.mask.assign(X.valid().words(), X.valid().words() + words);
    root.count = static_cast<std::uint32_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      root.g_sum += grad[i];
      root.h_sum += hess[i];
    }
    tree.emplace_back();
    tree[0].value = -root.g_sum / (root.h_sum + config_.lambda);
    find_best_split(root);
    leaves.push_back(std::move(root));

    while (leaves.size() < config_.num_leaves) {
      std::size_t best = leaves.size();
      double best_gain = 1e-12;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        if (leaves[l].feature >= 0 && leaves[l].gain > best_gain) {
          best_gain = leaves[l].gain;
          best = l;
        }
      }
      if (best == leaves.size()) break;  // nothing splittable

      LeafCandidate leaf = std::move(leaves[best]);
      leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(best));

      const std::size_t j = static_cast<std::size_t>(leaf.feature);
      const std::uint64_t* col = X.column(j);
      LeafCandidate left;
      LeafCandidate right;
      left.mask.resize(words);
      right.mask.resize(words);
      for (std::size_t w = 0; w < words; ++w) {
        left.mask[w] = leaf.mask[w] & ~col[w];
        right.mask[w] = leaf.mask[w] & col[w];
      }
      const simd::Kernels& kernels = simd::active();
      left.count = static_cast<std::uint32_t>(
          kernels.popcount(left.mask.data(), words));
      right.count = leaf.count - left.count;
      // Child gradient sums in ascending-row order, exactly as the dense
      // split partition accumulates them.
      masked_pair_sum_not(col, leaf.mask.data(), words, grad.data(),
                          hess.data(), left.g_sum, left.h_sum);
      masked_pair_sum(col, leaf.mask.data(), words, grad.data(), hess.data(),
                      right.g_sum, right.h_sum);

      const std::int32_t left_id = static_cast<std::int32_t>(tree.size());
      tree.emplace_back();
      tree.back().value = -left.g_sum / (left.h_sum + config_.lambda);
      const std::int32_t right_id = static_cast<std::int32_t>(tree.size());
      tree.emplace_back();
      tree.back().value = -right.g_sum / (right.h_sum + config_.lambda);

      Node& parent = tree[static_cast<std::size_t>(leaf.node_id)];
      parent.feature = leaf.feature;
      parent.bin = leaf.bin;
      parent.threshold = bin_edges_[j][static_cast<std::size_t>(leaf.bin)];
      parent.left = left_id;
      parent.right = right_id;
      left.node_id = left_id;
      right.node_id = right_id;

      find_best_split(left);
      find_best_split(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
    }

    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree_output_bits(tree, X.row_bits(i));
    }
    trees_.push_back(std::move(tree));
  }
  obs::counter("ml.fit.boost_rounds").add(trees_.size());
}

void HistGbdtClassifier::fit_shards(const ShardSource& src,
                                    const ShardedFitOptions& /*options*/) {
  obs::Span span("ml.hist_gbdt.fit_shards");
  const std::size_t n = src.rows();
  const std::size_t d = src.cols();
  const std::span<const int> y = src.labels();
  if (n == 0 || d == 0) throw std::invalid_argument("HistGBDT: empty training data");
  if (y.size() != n) throw std::invalid_argument("HistGBDT: label count mismatch");
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("HistGBDT: labels must be 0/1");
    }
  }
  n_features_ = d;
  base_margin_ = 0.0;

  // Fixed-point gradient scale. |grad| <= 1 and hess <= 0.25, so a per-row
  // quantized value fits in 32 bits and a sum over 2^20 rows stays below
  // 2^52 — far from int64 overflow. Every histogram cell is an integer, so
  // per-shard partials merge by addition with no rounding: the merged
  // histogram is *the same integer* at any shard count.
  constexpr double kScale = 2147483648.0;  // 2^31

  // Bin structure from whole-cohort popcounts, merged across shards as
  // integer sums (same rule as fit_packed: mixed column -> edges {0.0}).
  bin_edges_.assign(d, {});
  {
    std::vector<std::uint64_t> pop(d, 0);
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const hv::BitMatrix& shard = src.shard(s);
      for (std::size_t j = 0; j < d; ++j) pop[j] += shard.column_popcount(j);
      note_hist_merge(d);
    }
    for (std::size_t j = 0; j < d; ++j) {
      if (pop[j] > 0 && pop[j] < n) bin_edges_[j] = {0.0};
    }
  }

  // Resident per-row state: the boosting margin and the id of the leaf the
  // row currently sits in. Everything else lives in per-leaf integer
  // histograms of size O(features), never O(rows).
  std::vector<double> margin(n, base_margin_);
  std::vector<std::int32_t> leaf_of(n, 0);
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  // Quantized gradient/hessian of a row — a pure function of (margin, y),
  // so re-deriving it on every streaming pass within a round is exact.
  const auto quantized = [&](std::size_t row, std::int64_t& gq, std::int64_t& hq) {
    const double p = sigmoid(margin[row]);
    gq = std::llround((p - static_cast<double>(y[row])) * kScale);
    hq = std::llround(std::max(1e-16, p * (1.0 - p)) * kScale);
  };

  struct ShardLeaf {
    std::int32_t node_id = -1;
    std::uint64_t count = 0;
    std::int64_t gq = 0;  // quantized gradient sum over the leaf
    std::int64_t hq = 0;  // quantized hessian sum over the leaf
    // Per-feature bit=1 side of the histogram; the bit=0 side is the exact
    // integer difference from the leaf totals.
    std::vector<std::uint64_t> cnt1;
    std::vector<std::int64_t> gq1;
    std::vector<std::int64_t> hq1;
    double gain = -1.0;
    std::int32_t feature = -1;
    std::int32_t bin = -1;
  };

  const auto make_leaf = [d](std::int32_t node_id) {
    ShardLeaf leaf;
    leaf.node_id = node_id;
    leaf.cnt1.assign(d, 0);
    leaf.gq1.assign(d, 0);
    leaf.hq1.assign(d, 0);
    return leaf;
  };

  // Add one row's quantized (g, h) to a leaf histogram, walking the set
  // bits of its packed row.
  const auto add_row = [](ShardLeaf& leaf, const std::uint64_t* row,
                          std::size_t words, std::int64_t gq, std::int64_t hq) {
    ++leaf.count;
    leaf.gq += gq;
    leaf.hq += hq;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        const std::size_t j = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        ++leaf.cnt1[j];
        leaf.gq1[j] += gq;
        leaf.hq1[j] += hq;
        bits &= bits - 1;
      }
    }
  };

  // Split search is a pure scan of the merged integer histogram: dequantize
  // once per cell and apply the same gain formula, gates and ascending-j
  // epsilon tie-break as the other fit paths.
  const auto find_best_split = [&](ShardLeaf& leaf) {
    leaf.gain = 0.0;
    leaf.feature = -1;
    const double g_sum = static_cast<double>(leaf.gq) / kScale;
    const double h_sum = static_cast<double>(leaf.hq) / kScale;
    const double parent_score = g_sum * g_sum / (h_sum + config_.lambda);
    for (std::size_t j = 0; j < d; ++j) {
      if (bin_edges_[j].empty()) continue;
      const std::uint64_t cr = leaf.cnt1[j];      // bit 1 -> right child
      const std::uint64_t cl = leaf.count - cr;   // bit 0 -> left child
      if (cl < config_.min_data_in_leaf || cr < config_.min_data_in_leaf) continue;
      const double hl = static_cast<double>(leaf.hq - leaf.hq1[j]) / kScale;
      const double hr = static_cast<double>(leaf.hq1[j]) / kScale;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) continue;
      const double gl = static_cast<double>(leaf.gq - leaf.gq1[j]) / kScale;
      const double gr = static_cast<double>(leaf.gq1[j]) / kScale;
      const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                 gr * gr / (hr + config_.lambda) - parent_score);
      if (gain > leaf.gain + 1e-12) {
        leaf.gain = gain;
        leaf.feature = static_cast<std::int32_t>(j);
        leaf.bin = 0;
      }
    }
  };

  const auto leaf_value = [&](const ShardLeaf& leaf) {
    const double g_sum = static_cast<double>(leaf.gq) / kScale;
    const double h_sum = static_cast<double>(leaf.hq) / kScale;
    return -g_sum / (h_sum + config_.lambda);
  };

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    std::fill(leaf_of.begin(), leaf_of.end(), 0);

    // Root histogram: one streaming pass, shard partials merged by integer
    // addition in ascending shard order.
    ShardLeaf root = make_leaf(0);
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const hv::BitMatrix& shard = src.shard(s);
      const std::size_t begin = src.shard_begin(s);
      const std::size_t words = shard.words_per_row();
      for (std::size_t i = 0; i < shard.rows(); ++i) {
        std::int64_t gq = 0;
        std::int64_t hq = 0;
        quantized(begin + i, gq, hq);
        add_row(root, shard.row_bits(i), words, gq, hq);
      }
      note_hist_merge(3 * d);
    }

    Tree tree;
    tree.emplace_back();
    tree[0].value = leaf_value(root);
    find_best_split(root);
    std::vector<ShardLeaf> leaves;
    leaves.push_back(std::move(root));

    while (leaves.size() < config_.num_leaves) {
      std::size_t best = leaves.size();
      double best_gain = 1e-12;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        if (leaves[l].feature >= 0 && leaves[l].gain > best_gain) {
          best_gain = leaves[l].gain;
          best = l;
        }
      }
      if (best == leaves.size()) break;  // nothing splittable

      ShardLeaf leaf = std::move(leaves[best]);
      leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(best));

      const std::size_t j = static_cast<std::size_t>(leaf.feature);
      const std::int32_t left_id = static_cast<std::int32_t>(tree.size());
      tree.emplace_back();
      const std::int32_t right_id = static_cast<std::int32_t>(tree.size());
      tree.emplace_back();

      // One streaming pass: route the parent's rows to their child and
      // build the left-child histogram; the right child is the exact
      // integer difference parent - left.
      ShardLeaf left = make_leaf(left_id);
      for (std::size_t s = 0; s < src.num_shards(); ++s) {
        const hv::BitMatrix& shard = src.shard(s);
        const std::size_t begin = src.shard_begin(s);
        const std::uint64_t* col = shard.column(j);
        const std::size_t words = shard.words_per_row();
        for (std::size_t i = 0; i < shard.rows(); ++i) {
          const std::size_t row = begin + i;
          if (leaf_of[row] != leaf.node_id) continue;
          if ((col[i >> 6] >> (i & 63)) & 1ULL) {
            leaf_of[row] = right_id;
            continue;
          }
          leaf_of[row] = left_id;
          std::int64_t gq = 0;
          std::int64_t hq = 0;
          quantized(row, gq, hq);
          add_row(left, shard.row_bits(i), words, gq, hq);
        }
        note_hist_merge(3 * d);
      }

      ShardLeaf right = make_leaf(right_id);
      right.count = leaf.count - left.count;
      right.gq = leaf.gq - left.gq;
      right.hq = leaf.hq - left.hq;
      for (std::size_t f = 0; f < d; ++f) {
        right.cnt1[f] = leaf.cnt1[f] - left.cnt1[f];
        right.gq1[f] = leaf.gq1[f] - left.gq1[f];
        right.hq1[f] = leaf.hq1[f] - left.hq1[f];
      }

      tree[static_cast<std::size_t>(left_id)].value = leaf_value(left);
      tree[static_cast<std::size_t>(right_id)].value = leaf_value(right);
      Node& parent = tree[static_cast<std::size_t>(leaf.node_id)];
      parent.feature = leaf.feature;
      parent.bin = leaf.bin;
      parent.threshold = bin_edges_[j][static_cast<std::size_t>(leaf.bin)];
      parent.left = left_id;
      parent.right = right_id;

      find_best_split(left);
      find_best_split(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
    }

    // Every row already knows its leaf, so the margin update needs no
    // tree routing and no shard access at all.
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] +=
          config_.learning_rate * tree[static_cast<std::size_t>(leaf_of[i])].value;
    }
    trees_.push_back(std::move(tree));
  }
  obs::counter("ml.fit.boost_rounds").add(trees_.size());
}

double HistGbdtClassifier::tree_output(const Tree& tree, std::span<const double> x) {
  std::int32_t node = 0;
  while (tree[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = tree[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return tree[static_cast<std::size_t>(node)].value;
}

double HistGbdtClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("HistGBDT: not fitted");
  if (x.size() != n_features_) {
    throw std::invalid_argument("HistGBDT: query arity mismatch");
  }
  double margin = base_margin_;
  for (const Tree& tree : trees_) {
    margin += config_.learning_rate * tree_output(tree, x);
  }
  return sigmoid(margin);
}

std::vector<int> HistGbdtClassifier::predict_all_bits(const hv::BitMatrix& X) const {
  if (trees_.empty()) throw std::logic_error("HistGBDT: not fitted");
  if (X.cols() != n_features_) {
    throw std::invalid_argument("HistGBDT: query arity mismatch");
  }
  std::vector<int> out;
  out.reserve(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    const std::uint64_t* row = X.row_bits(i);
    // Same tree order and margin accumulation as predict_proba; the bit
    // routing is the "value <= 0.0 threshold" rule answered from the bit.
    double margin = base_margin_;
    for (const Tree& tree : trees_) {
      margin += config_.learning_rate * tree_output_bits(tree, row);
    }
    out.push_back(sigmoid(margin) >= 0.5 ? 1 : 0);
  }
  return out;
}


void HistGbdtClassifier::save_state(std::ostream& out) const {
  if (trees_.empty()) throw std::logic_error("HistGbdt: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.hist_gbdt").tag("v1").nl();
  w.u64(config_.n_rounds).f64(config_.learning_rate).u64(config_.num_leaves);
  w.u64(config_.max_bins).f64(config_.lambda).f64(config_.min_child_weight);
  w.u64(config_.min_data_in_leaf).nl();
  w.u64(n_features_).f64(base_margin_).nl();
  for (const std::vector<double>& edges : bin_edges_) w.vec_f64(edges).nl();
  w.u64(trees_.size()).nl();
  for (const Tree& tree : trees_) {
    w.u64(tree.size()).nl();
    for (const Node& nd : tree) {
      w.i64(nd.feature).i64(nd.bin).f64(nd.threshold);
      w.i64(nd.left).i64(nd.right).f64(nd.value).nl();
    }
  }
}

void HistGbdtClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.hist_gbdt");
  r.expect("ml.hist_gbdt", "model tag");
  r.expect("v1", "format version");
  config_.n_rounds = r.u64("n_rounds");
  config_.learning_rate = r.f64("learning_rate");
  config_.num_leaves = r.u64("num_leaves");
  config_.max_bins = r.u64("max_bins");
  config_.lambda = r.f64("lambda");
  config_.min_child_weight = r.f64("min_child_weight");
  config_.min_data_in_leaf = r.u64("min_data_in_leaf");
  n_features_ = r.count("n_features", 1ULL << 24);
  if (n_features_ == 0) throw r.error("zero features");
  base_margin_ = r.f64("base_margin");
  bin_edges_.assign(n_features_, {});
  for (std::vector<double>& edges : bin_edges_) {
    edges = r.vec_f64("bin edges", 1ULL << 20);
  }
  const std::size_t rounds = r.count("round count", 1ULL << 20);
  if (rounds == 0) throw r.error("empty ensemble");
  trees_.assign(rounds, Tree{});
  for (Tree& tree : trees_) {
    const std::size_t n = r.count("node count", 1ULL << 24);
    if (n == 0) throw r.error("empty tree");
    tree.assign(n, Node{});
    for (Node& nd : tree) {
      nd.feature = static_cast<std::int32_t>(r.i64("node feature"));
      nd.bin = static_cast<std::int32_t>(r.i64("node bin"));
      nd.threshold = r.f64("node threshold");
      nd.left = static_cast<std::int32_t>(r.i64("node left"));
      nd.right = static_cast<std::int32_t>(r.i64("node right"));
      nd.value = r.f64("node value");
      if (nd.feature >= 0) {
        if (static_cast<std::size_t>(nd.feature) >= n_features_) {
          throw r.error("node feature out of range");
        }
        if (nd.left < 0 || nd.right < 0 ||
            static_cast<std::size_t>(nd.left) >= n ||
            static_cast<std::size_t>(nd.right) >= n) {
          throw r.error("node child index out of range");
        }
      }
    }
  }
}

}  // namespace hdc::ml
