#include "ml/svm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace hdc::ml {

SvcClassifier::SvcClassifier(SvcConfig config) : config_(config) {
  if (config_.c <= 0.0) throw std::invalid_argument("SVC: C <= 0");
}

double SvcClassifier::kernel(std::span<const double> a,
                             std::span<const double> b) const {
  double dot_or_d2 = 0.0;
  if (config_.kernel == SvmKernel::kLinear) {
    for (std::size_t j = 0; j < a.size(); ++j) dot_or_d2 += a[j] * b[j];
    return dot_or_d2;
  }
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    dot_or_d2 += diff * diff;
  }
  return std::exp(-gamma_ * dot_or_d2);
}

std::vector<double> SvcClassifier::standardized(std::span<const double> x) const {
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

void SvcClassifier::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  if (packed_enabled()) {
    if (const std::optional<hv::BitMatrix> bits = try_pack(X)) {
      fit_packed(*bits, y);
      return;
    }
  }
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    std::vector<double> sum(d, 0.0);
    std::vector<double> sum_sq(d, 0.0);
    for (const auto& row : X) {
      for (std::size_t j = 0; j < d; ++j) {
        sum[j] += row[j];
        sum_sq[j] += row[j] * row[j];
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      mean_[j] = sum[j] / static_cast<double>(n);
      const double var = sum_sq[j] / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }
  train_X_.clear();
  train_X_.reserve(n);
  for (const auto& row : X) train_X_.push_back(standardized(row));
  targets_.resize(n);
  for (std::size_t i = 0; i < n; ++i) targets_[i] = y[i] == 1 ? 1.0 : -1.0;
  solve_smo(nullptr);
}

void SvcClassifier::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  fit_packed(X, y);
}

void SvcClassifier::fit_packed(const hv::BitMatrix& X, const Labels& y) {
  obs::Span span("ml.svc.fit_packed");
  const std::size_t n = X.rows();
  const std::size_t d = X.cols();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    // 0/1 columns: sum == sum_sq == popcount, and the dense accumulation of
    // +1.0 terms is integer-exact, so the moments match the dense pass.
    for (std::size_t j = 0; j < d; ++j) {
      const double sum = static_cast<double>(X.column_popcount(j));
      mean_[j] = sum / static_cast<double>(n);
      const double var = sum / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }
  // Each 0/1 feature standardises to one of two constants; expanding through
  // the 2-entry table reproduces the dense standardized() rows exactly.
  std::vector<double> z0(d);
  std::vector<double> z1(d);
  for (std::size_t j = 0; j < d; ++j) {
    z0[j] = (0.0 - mean_[j]) * inv_std_[j];
    z1[j] = (1.0 - mean_[j]) * inv_std_[j];
  }
  train_X_.assign(n, std::vector<double>(d));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* row = X.row_bits(i);
    std::vector<double>& out = train_X_[i];
    for (std::size_t j = 0; j < d; ++j) {
      out[j] = (row[j / 64] >> (j % 64)) & 1u ? z1[j] : z0[j];
    }
  }
  targets_.resize(n);
  for (std::size_t i = 0; i < n; ++i) targets_[i] = y[i] == 1 ? 1.0 : -1.0;
  solve_smo(&X);
}

void SvcClassifier::fit_shards(const ShardSource& src,
                               const ShardedFitOptions& options) {
  obs::Span span("ml.svc.fit_shards");
  const std::size_t n = src.rows();
  const std::size_t d = src.cols();
  const std::span<const int> y = src.labels();
  if (n == 0 || d == 0) throw std::invalid_argument("fit: empty training set");
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("fit: labels must be 0/1");
    }
  }

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    // Whole-cohort moments from integer popcounts merged across shards —
    // exactly the values fit_packed computes on the concatenated matrix.
    std::vector<std::size_t> pop(d, 0);
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const hv::BitMatrix& shard = src.shard(s);
      for (std::size_t j = 0; j < d; ++j) pop[j] += shard.column_popcount(j);
      note_hist_merge(d);
    }
    for (std::size_t j = 0; j < d; ++j) {
      const double sum = static_cast<double>(pop[j]);
      mean_[j] = sum / static_cast<double>(n);
      const double var = sum / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }

  // The kernel matrix is O(rows^2): train the SMO on a deterministic
  // strided subsample (every row when n <= cap).
  const std::vector<std::size_t> indices =
      strided_subsample(n, options.subsample_cap);
  const hv::BitMatrix sample = gather_rows(src, indices);

  std::vector<double> z0(d);
  std::vector<double> z1(d);
  for (std::size_t j = 0; j < d; ++j) {
    z0[j] = (0.0 - mean_[j]) * inv_std_[j];
    z1[j] = (1.0 - mean_[j]) * inv_std_[j];
  }
  const std::size_t m = sample.rows();
  train_X_.assign(m, std::vector<double>(d));
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t* row = sample.row_bits(i);
    std::vector<double>& out = train_X_[i];
    for (std::size_t j = 0; j < d; ++j) {
      out[j] = (row[j / 64] >> (j % 64)) & 1u ? z1[j] : z0[j];
    }
  }
  targets_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    targets_[i] = y[indices[i]] == 1 ? 1.0 : -1.0;
  }
  solve_smo(&sample);
}

void SvcClassifier::solve_smo(const hv::BitMatrix* bits) {
  const std::size_t n = train_X_.size();
  const std::size_t d = train_X_.front().size();

  // gamma = "scale": 1 / (d * var) over all entries of the (standardised)
  // training matrix, like scikit-learn's heuristic.
  if (config_.gamma > 0.0) {
    gamma_ = config_.gamma;
  } else {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto& row : train_X_) {
      for (const double v : row) {
        sum += v;
        sum_sq += v * v;
      }
    }
    const double count = static_cast<double>(n * d);
    const double mean = sum / count;
    const double var = std::max(1e-12, sum_sq / count - mean * mean);
    gamma_ = 1.0 / (static_cast<double>(d) * var);
  }

  // Precompute the kernel matrix (n is a few hundred in all experiments).
  std::vector<double> K(n * n);
  if (bits != nullptr && config_.kernel == SvmKernel::kRbf) {
    // Squared distance between two standardised 0/1 rows: equal coordinates
    // contribute an exact +0.0 to the dense sum, so accumulating the
    // per-column (z1-z0)^2 table over the XOR of the packed rows in
    // ascending column order is bit-identical ((a-b)^2 == (b-a)^2 in IEEE).
    std::vector<double> dz2(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double dz = (1.0 - mean_[j]) * inv_std_[j] - (0.0 - mean_[j]) * inv_std_[j];
      dz2[j] = dz * dz;
    }
    const std::size_t words = bits->words_per_row();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t* ri = bits->row_bits(i);
      for (std::size_t j = i; j < n; ++j) {
        const std::uint64_t* rj = bits->row_bits(j);
        double d2 = 0.0;
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t diff = ri[w] ^ rj[w];
          while (diff != 0) {
            d2 += dz2[w * 64 + static_cast<std::size_t>(std::countr_zero(diff))];
            diff &= diff - 1;
          }
        }
        const double k = std::exp(-gamma_ * d2);
        K[i * n + j] = k;
        K[j * n + i] = k;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double k = kernel(train_X_[i], train_X_[j]);
        K[i * n + j] = k;
        K[j * n + i] = k;
      }
    }
  }

  alphas_.assign(n, 0.0);
  b_ = 0.0;
  std::vector<double> errors(n);
  const auto decision_cached = [&](std::size_t i) {
    double f = b_;
    for (std::size_t k = 0; k < n; ++k) {
      if (alphas_[k] != 0.0) f += alphas_[k] * targets_[k] * K[k * n + i];
    }
    return f;
  };

  util::Rng rng(config_.seed);
  std::size_t passes = 0;
  std::size_t iter = 0;
  const double c = config_.c;
  while (passes < config_.max_passes && iter < config_.max_iter) {
    ++iter;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = decision_cached(i) - targets_[i];
      errors[i] = ei;
      const bool violates = (targets_[i] * ei < -config_.tol && alphas_[i] < c) ||
                            (targets_[i] * ei > config_.tol && alphas_[i] > 0.0);
      if (!violates) continue;

      // Pick j != i at random (simplified SMO heuristic).
      std::size_t j = static_cast<std::size_t>(rng.below(n - 1));
      if (j >= i) ++j;
      const double ej = decision_cached(j) - targets_[j];

      const double ai_old = alphas_[i];
      const double aj_old = alphas_[j];
      double lo = 0.0;
      double hi = 0.0;
      if (targets_[i] != targets_[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * K[i * n + j] - K[i * n + i] - K[j * n + j];
      if (eta >= 0.0) continue;

      double aj = aj_old - targets_[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + targets_[i] * targets_[j] * (aj_old - aj);

      alphas_[i] = ai;
      alphas_[j] = aj;

      const double b1 = b_ - ei - targets_[i] * (ai - ai_old) * K[i * n + i] -
                        targets_[j] * (aj - aj_old) * K[i * n + j];
      const double b2 = b_ - ej - targets_[i] * (ai - ai_old) * K[i * n + j] -
                        targets_[j] * (aj - aj_old) * K[j * n + j];
      if (ai > 0.0 && ai < c) {
        b_ = b1;
      } else if (aj > 0.0 && aj < c) {
        b_ = b2;
      } else {
        b_ = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
}

double SvcClassifier::decision(std::span<const double> x) const {
  if (train_X_.empty()) throw std::logic_error("SVC: not fitted");
  if (x.size() != train_X_.front().size()) {
    throw std::invalid_argument("SVC: query arity mismatch");
  }
  const std::vector<double> query = standardized(x);
  double f = b_;
  for (std::size_t i = 0; i < train_X_.size(); ++i) {
    if (alphas_[i] != 0.0) f += alphas_[i] * targets_[i] * kernel(train_X_[i], query);
  }
  return f;
}

std::size_t SvcClassifier::support_vector_count() const noexcept {
  std::size_t count = 0;
  for (const double a : alphas_) {
    if (a != 0.0) ++count;
  }
  return count;
}

double SvcClassifier::predict_proba(std::span<const double> x) const {
  return 1.0 / (1.0 + std::exp(-decision(x)));
}


void SvcClassifier::save_state(std::ostream& out) const {
  if (train_X_.empty()) throw std::logic_error("SVC: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.svc").tag("v1").nl();
  w.u64(config_.kernel == SvmKernel::kLinear ? 0 : 1).f64(config_.c);
  w.f64(config_.gamma).f64(config_.tol).u64(config_.max_passes);
  w.u64(config_.max_iter).u64(config_.standardize ? 1 : 0).u64(config_.seed).nl();
  w.f64(gamma_).f64(b_).nl();
  write_matrix(w, train_X_);
  w.vec_f64(targets_).nl();
  w.vec_f64(alphas_).nl();
  w.vec_f64(mean_).nl();
  w.vec_f64(inv_std_).nl();
}

void SvcClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.svc");
  r.expect("ml.svc", "model tag");
  r.expect("v1", "format version");
  const std::uint64_t kernel = r.u64("kernel");
  if (kernel > 1) throw r.error("unknown kernel id " + std::to_string(kernel));
  config_.kernel = kernel == 0 ? SvmKernel::kLinear : SvmKernel::kRbf;
  config_.c = r.f64("c");
  config_.gamma = r.f64("gamma");
  config_.tol = r.f64("tol");
  config_.max_passes = r.u64("max_passes");
  config_.max_iter = r.u64("max_iter");
  config_.standardize = r.u64("standardize") != 0;
  config_.seed = r.u64("seed");
  gamma_ = r.f64("fitted gamma");
  b_ = r.f64("bias");
  train_X_ = read_matrix(r, "support matrix");
  targets_ = r.vec_f64("targets", 1ULL << 24);
  alphas_ = r.vec_f64("alphas", 1ULL << 24);
  mean_ = r.vec_f64("mean", 1ULL << 24);
  inv_std_ = r.vec_f64("inv_std", 1ULL << 24);
  if (train_X_.empty()) throw r.error("empty support matrix");
  if (targets_.size() != train_X_.size() || alphas_.size() != train_X_.size()) {
    throw r.error("targets/alphas row-count mismatch");
  }
  const std::size_t d = train_X_.front().size();
  if (mean_.size() != d || inv_std_.size() != d) {
    throw r.error("mean/inv_std arity mismatch");
  }
}

}  // namespace hdc::ml
