#include "ml/classifier.hpp"

#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/sharded.hpp"

namespace hdc::ml {

void Classifier::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  Matrix dense;
  dense.reserve(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) dense.push_back(X.row_doubles(i));
  fit(dense, y);
}

std::vector<int> Classifier::predict_all_bits(const hv::BitMatrix& X) const {
  std::vector<int> out;
  out.reserve(X.rows());
  std::vector<double> row(X.cols());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    X.unpack_row(i, row);
    out.push_back(predict(row));
  }
  return out;
}

double Classifier::accuracy_bits(const hv::BitMatrix& X, const Labels& y) const {
  if (X.rows() == 0) return 0.0;
  const std::vector<int> predictions = predict_all_bits(X);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

void Classifier::fit_shards(const ShardSource& src,
                            const ShardedFitOptions& options) {
  // Fallback for models without an exact merge path: gather a deterministic
  // strided subsample (a pure function of rows and the cap, so identical
  // for every shard count) and train on it resident.
  const std::vector<std::size_t> indices =
      strided_subsample(src.rows(), options.subsample_cap);
  const hv::BitMatrix sample = gather_rows(src, indices);
  fit_bits(sample, gather_labels(src.labels(), indices));
}

std::vector<int> Classifier::predict_all_shards(const ShardSource& src) const {
  std::vector<int> out;
  out.reserve(src.rows());
  for (std::size_t s = 0; s < src.num_shards(); ++s) {
    const std::vector<int> block = predict_all_bits(src.shard(s));
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

void Classifier::save_state(std::ostream& out) const {
  (void)out;
  throw std::runtime_error(name() + ": save_state not supported");
}

void Classifier::load_state(std::istream& in) {
  (void)in;
  throw std::runtime_error(name() + ": load_state not supported");
}

namespace {
// Caps applied to counts read from untrusted streams. A corrupted length
// field throws before any allocation is attempted. kMaxCells bounds both
// matrix cells and packed words; kMaxDim bounds row/column arities.
constexpr std::uint64_t kMaxDim = 1ULL << 24;
constexpr std::uint64_t kMaxCells = 1ULL << 30;
}  // namespace

void write_matrix(util::serde::Writer& out, const Matrix& X) {
  out.u64(X.size()).u64(X.empty() ? 0 : X.front().size()).nl();
  for (const auto& row : X) out.vec_f64(row).nl();
}

Matrix read_matrix(util::serde::Reader& in, const char* what) {
  const std::uint64_t rows = in.count(what, kMaxDim);
  const std::uint64_t cols = in.count(what, kMaxDim);
  if (rows * cols > kMaxCells) throw in.error(std::string(what) + ": matrix too large");
  Matrix X;
  X.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    X.push_back(in.vec_f64(what, cols));
    if (X.back().size() != cols) {
      throw in.error(std::string(what) + ": ragged matrix row");
    }
  }
  return X;
}

void write_bit_matrix(util::serde::Writer& out, const hv::BitMatrix& X) {
  const hv::PackedHVs& rows = X.row_major();
  out.u64(X.rows()).u64(X.cols()).nl();
  for (std::size_t i = 0; i < X.rows(); ++i) {
    out.words({rows.row(i), rows.words_per_row()}).nl();
  }
}

hv::BitMatrix read_bit_matrix(util::serde::Reader& in, const char* what) {
  const std::uint64_t rows = in.count(what, kMaxDim);
  const std::uint64_t cols = in.count(what, kMaxDim);
  const std::uint64_t wpr = (cols + 63) / 64;
  if (rows * wpr > kMaxCells) {
    throw in.error(std::string(what) + ": bit matrix too large");
  }
  hv::PackedHVs packed(cols, rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    const std::vector<std::uint64_t> row_words = in.read_words(what, wpr);
    if (row_words.size() != wpr) {
      throw in.error(std::string(what) + ": bit matrix row word-count mismatch");
    }
    std::uint64_t* dst = packed.row(i);
    for (std::uint64_t w = 0; w < wpr; ++w) dst[w] = row_words[w];
    // Trailing padding bits must stay zero (BitMatrix invariant).
    if (cols % 64 != 0 && wpr > 0) {
      const std::uint64_t pad_mask = ~0ULL << (cols % 64);
      if ((dst[wpr - 1] & pad_mask) != 0) {
        throw in.error(std::string(what) + ": nonzero padding bits in bit matrix");
      }
    }
  }
  return hv::BitMatrix::from_rows(std::move(packed));
}

void validate_training_bits(const hv::BitMatrix& X, const Labels& y) {
  if (X.rows() == 0 || X.cols() == 0) {
    throw std::invalid_argument("fit: empty training set");
  }
  if (X.rows() != y.size()) throw std::invalid_argument("fit: X/y size mismatch");
  for (const int label : y) {
    if (label != 0 && label != 1) throw std::invalid_argument("fit: labels must be 0/1");
  }
}

void validate_training_data(const Matrix& X, const Labels& y) {
  if (X.empty()) throw std::invalid_argument("fit: empty training set");
  if (X.size() != y.size()) throw std::invalid_argument("fit: X/y size mismatch");
  const std::size_t d = X.front().size();
  if (d == 0) throw std::invalid_argument("fit: zero-width rows");
  for (const auto& row : X) {
    if (row.size() != d) throw std::invalid_argument("fit: ragged matrix");
  }
  for (const int label : y) {
    if (label != 0 && label != 1) throw std::invalid_argument("fit: labels must be 0/1");
  }
}

ColumnTable::ColumnTable(const Matrix& X, const Labels& y) : labels_(y) {
  validate_training_data(X, y);
  n_rows_ = X.size();
  n_cols_ = X.front().size();
  data_.resize(n_rows_ * n_cols_);
  binary_.assign(n_cols_, true);
  for (std::size_t i = 0; i < n_rows_; ++i) {
    for (std::size_t j = 0; j < n_cols_; ++j) {
      const double v = X[i][j];
      data_[j * n_rows_ + i] = v;
      if (v != 0.0 && v != 1.0) binary_[j] = false;
    }
  }
}

}  // namespace hdc::ml
