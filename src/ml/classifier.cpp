#include "ml/classifier.hpp"

#include <stdexcept>

#include "hv/bit_matrix.hpp"

namespace hdc::ml {

void Classifier::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  Matrix dense;
  dense.reserve(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) dense.push_back(X.row_doubles(i));
  fit(dense, y);
}

std::vector<int> Classifier::predict_all_bits(const hv::BitMatrix& X) const {
  std::vector<int> out;
  out.reserve(X.rows());
  std::vector<double> row(X.cols());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    X.unpack_row(i, row);
    out.push_back(predict(row));
  }
  return out;
}

double Classifier::accuracy_bits(const hv::BitMatrix& X, const Labels& y) const {
  if (X.rows() == 0) return 0.0;
  const std::vector<int> predictions = predict_all_bits(X);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

void validate_training_bits(const hv::BitMatrix& X, const Labels& y) {
  if (X.rows() == 0 || X.cols() == 0) {
    throw std::invalid_argument("fit: empty training set");
  }
  if (X.rows() != y.size()) throw std::invalid_argument("fit: X/y size mismatch");
  for (const int label : y) {
    if (label != 0 && label != 1) throw std::invalid_argument("fit: labels must be 0/1");
  }
}

void validate_training_data(const Matrix& X, const Labels& y) {
  if (X.empty()) throw std::invalid_argument("fit: empty training set");
  if (X.size() != y.size()) throw std::invalid_argument("fit: X/y size mismatch");
  const std::size_t d = X.front().size();
  if (d == 0) throw std::invalid_argument("fit: zero-width rows");
  for (const auto& row : X) {
    if (row.size() != d) throw std::invalid_argument("fit: ragged matrix");
  }
  for (const int label : y) {
    if (label != 0 && label != 1) throw std::invalid_argument("fit: labels must be 0/1");
  }
}

ColumnTable::ColumnTable(const Matrix& X, const Labels& y) : labels_(y) {
  validate_training_data(X, y);
  n_rows_ = X.size();
  n_cols_ = X.front().size();
  data_.resize(n_rows_ * n_cols_);
  binary_.assign(n_cols_, true);
  for (std::size_t i = 0; i < n_rows_; ++i) {
    for (std::size_t j = 0; j < n_cols_; ++j) {
      const double v = X[i][j];
      data_[j * n_rows_ + i] = v;
      if (v != 0.0 && v != 1.0) binary_[j] = false;
    }
  }
}

}  // namespace hdc::ml
