// Histogram-based gradient boosting with leaf-wise tree growth — the
// LightGBM algorithm family. Continuous features are quantile-binned once at
// fit time (max_bins buckets); split search then sums gradient/hessian
// histograms per bin instead of sorting, and trees grow by repeatedly
// splitting the leaf with the globally best gain until num_leaves is reached.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace hdc::ml {

struct HistGbdtConfig {
  std::size_t n_rounds = 100;   // LightGBM default n_estimators
  double learning_rate = 0.1;   // LightGBM default
  std::size_t num_leaves = 31;  // LightGBM default
  std::size_t max_bins = 63;
  double lambda = 1.0;
  double min_child_weight = 1e-3;
  std::size_t min_data_in_leaf = 20;  // LightGBM default
};

class HistGbdtClassifier final : public Classifier {
 public:
  explicit HistGbdtClassifier(HistGbdtConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  /// Data-parallel sharded fit (the LightGBM data-parallel learner shape):
  /// per-row gradients/hessians are quantized to int64 at a fixed scale, so
  /// every per-leaf, per-feature histogram is a vector of integers whose
  /// per-shard partials merge by addition — *exactly* equal to single-shard
  /// histograms by construction, making the fit bit-identical at any shard
  /// count. Resident state is O(rows) scalars (margin + leaf id) plus one
  /// shard of bitplanes; the full design matrix is never materialized.
  /// Quantization means the fitted trees may differ from fit_bits() in the
  /// last float bits — the identity contract here is across shard counts.
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::vector<int> predict_all_bits(const hv::BitMatrix& X) const override;
  [[nodiscard]] std::string name() const override { return "LGBM"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] std::size_t round_count() const noexcept { return trees_.size(); }

 private:
  struct Node {
    std::int32_t feature = -1;  // -1 = leaf
    std::int32_t bin = 0;       // go left if bin(x) <= bin
    double threshold = 0.0;     // raw-value threshold for prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
  };
  using Tree = std::vector<Node>;

  [[nodiscard]] std::uint8_t bin_of(std::size_t feature, double value) const;
  [[nodiscard]] static double tree_output(const Tree& tree, std::span<const double> x);

  /// Packed fit: split gains from per-node mask × column-bitplane popcount
  /// reductions instead of per-row binning. Bit-identical to the dense fit
  /// on any all-0/1 matrix (same accumulation order, same tie-breaks).
  void fit_packed(const hv::BitMatrix& X, const Labels& y);

  HistGbdtConfig config_;
  std::vector<std::vector<double>> bin_edges_;  // per feature, ascending
  std::vector<Tree> trees_;
  double base_margin_ = 0.0;
  std::size_t n_features_ = 0;
};

}  // namespace hdc::ml
