// Linear classifier trained by stochastic gradient descent, after
// scikit-learn's SGDClassifier. Deliberately does NOT standardise its inputs:
// SGD on raw, unscaled clinical features is poorly conditioned, which is
// exactly why the paper's Tables III-V show the largest hypervector gains for
// SGD (hypervector inputs are uniformly 0/1 and thus well scaled).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace hdc::ml {

enum class SgdLoss { kHinge, kLog };

struct SgdConfig {
  SgdLoss loss = SgdLoss::kHinge;     // sklearn default
  double alpha = 1e-4;                // L2 strength (sklearn default)
  std::size_t epochs = 20;
  /// Base step of the 1/t decay. Calibrated so that on raw (unscaled)
  /// clinical features the model lands near the majority-class accuracy —
  /// the behaviour scikit-learn's SGDClassifier shows in the paper's Table
  /// III — while still fitting homogeneous 0/1 hypervector inputs well.
  double eta0 = 1e-5;
  std::uint64_t seed = 7;
};

class SgdClassifier final : public Classifier {
 public:
  explicit SgdClassifier(SgdConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  /// Fixed-schedule mini-batch SGD: no shuffle — rows are visited in
  /// ascending global order and batch boundaries fall at global row-index
  /// multiples of options.batch_rows, never at shard boundaries. Every
  /// accumulator is carried across shards, so the update sequence (and the
  /// fitted model) is IEEE bit-identical for any shard count. This is a
  /// deliberately different schedule from fit()'s shuffled per-row path.
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "SGD"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return w_; }
  [[nodiscard]] double bias() const noexcept { return b_; }

 private:
  void fit_packed(const hv::BitMatrix& X, const Labels& y);
  [[nodiscard]] double decision(std::span<const double> x) const;

  SgdConfig config_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace hdc::ml
