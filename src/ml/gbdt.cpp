#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdc::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

GbdtClassifier::GbdtClassifier(GbdtConfig config) : config_(config) {
  if (config_.n_rounds == 0) throw std::invalid_argument("GBDT: zero rounds");
  if (config_.learning_rate <= 0.0) throw std::invalid_argument("GBDT: bad eta");
  if (config_.max_depth == 0) throw std::invalid_argument("GBDT: zero depth");
}

void GbdtClassifier::fit(const Matrix& X, const Labels& y) {
  const ColumnTable table(X, y);
  const std::size_t n = table.n_rows();
  n_features_ = table.n_cols();
  base_margin_ = std::log(config_.base_score / (1.0 - config_.base_score));

  std::vector<double> margin(n, base_margin_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-16, p * (1.0 - p));
    }
    Tree tree;
    std::vector<std::uint32_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0u);
    build_node(table, tree, rows, grad, hess, 0);
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree_output(tree, X[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

std::int32_t GbdtClassifier::build_node(const ColumnTable& table, Tree& tree,
                                        std::vector<std::uint32_t>& rows,
                                        const std::vector<double>& grad,
                                        const std::vector<double>& hess,
                                        std::size_t depth) {
  double g_total = 0.0;
  double h_total = 0.0;
  for (const std::uint32_t r : rows) {
    g_total += grad[r];
    h_total += hess[r];
  }

  const std::int32_t node_id = static_cast<std::int32_t>(tree.size());
  tree.emplace_back();
  tree[node_id].value = -g_total / (h_total + config_.lambda);

  if (depth >= config_.max_depth || rows.size() < 2) return node_id;

  const double parent_score = g_total * g_total / (h_total + config_.lambda);
  double best_gain = config_.gamma;
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::uint32_t>> scratch;
  for (std::size_t j = 0; j < table.n_cols(); ++j) {
    if (table.column_is_binary(j)) {
      double gl = 0.0;
      double hl = 0.0;
      for (const std::uint32_t r : rows) {
        if (table.value(r, j) <= 0.5) {
          gl += grad[r];
          hl += hess[r];
        }
      }
      const double hr = h_total - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) continue;
      const double gr = g_total - gl;
      const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                 gr * gr / (hr + config_.lambda) - parent_score);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(j);
        best_threshold = 0.5;
      }
      continue;
    }

    scratch.clear();
    scratch.reserve(rows.size());
    for (const std::uint32_t r : rows) scratch.emplace_back(table.value(r, j), r);
    std::sort(scratch.begin(), scratch.end());
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
      gl += grad[scratch[i].second];
      hl += hess[scratch[i].second];
      if (scratch[i].first == scratch[i + 1].first) continue;
      const double hr = h_total - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) continue;
      const double gr = g_total - gl;
      const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                 gr * gr / (hr + config_.lambda) - parent_score);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(j);
        best_threshold = 0.5 * (scratch[i].first + scratch[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::uint32_t> left_rows;
  std::vector<std::uint32_t> right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const std::uint32_t r : rows) {
    (table.value(r, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  tree[node_id].feature = best_feature;
  tree[node_id].threshold = best_threshold;
  const std::int32_t left = build_node(table, tree, left_rows, grad, hess, depth + 1);
  tree[node_id].left = left;
  const std::int32_t right = build_node(table, tree, right_rows, grad, hess, depth + 1);
  tree[node_id].right = right;
  return node_id;
}

double GbdtClassifier::tree_output(const Tree& tree, std::span<const double> x) {
  std::int32_t node = 0;
  while (tree[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = tree[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return tree[static_cast<std::size_t>(node)].value;
}

double GbdtClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("GBDT: not fitted");
  if (x.size() != n_features_) throw std::invalid_argument("GBDT: query arity mismatch");
  double margin = base_margin_;
  for (const Tree& tree : trees_) {
    margin += config_.learning_rate * tree_output(tree, x);
  }
  return sigmoid(margin);
}

}  // namespace hdc::ml
