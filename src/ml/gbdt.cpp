#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdc::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

GbdtClassifier::GbdtClassifier(GbdtConfig config) : config_(config) {
  if (config_.n_rounds == 0) throw std::invalid_argument("GBDT: zero rounds");
  if (config_.learning_rate <= 0.0) throw std::invalid_argument("GBDT: bad eta");
  if (config_.max_depth == 0) throw std::invalid_argument("GBDT: zero depth");
}

void GbdtClassifier::fit(const Matrix& X, const Labels& y) {
  const ColumnTable table(X, y);
  const std::size_t n = table.n_rows();
  n_features_ = table.n_cols();
  base_margin_ = std::log(config_.base_score / (1.0 - config_.base_score));

  std::vector<double> margin(n, base_margin_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-16, p * (1.0 - p));
    }
    Tree tree;
    std::vector<std::uint32_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0u);
    build_node(table, tree, rows, grad, hess, 0);
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree_output(tree, X[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

std::int32_t GbdtClassifier::build_node(const ColumnTable& table, Tree& tree,
                                        std::vector<std::uint32_t>& rows,
                                        const std::vector<double>& grad,
                                        const std::vector<double>& hess,
                                        std::size_t depth) {
  double g_total = 0.0;
  double h_total = 0.0;
  for (const std::uint32_t r : rows) {
    g_total += grad[r];
    h_total += hess[r];
  }

  const std::int32_t node_id = static_cast<std::int32_t>(tree.size());
  tree.emplace_back();
  tree[node_id].value = -g_total / (h_total + config_.lambda);

  if (depth >= config_.max_depth || rows.size() < 2) return node_id;

  const double parent_score = g_total * g_total / (h_total + config_.lambda);
  double best_gain = config_.gamma;
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::uint32_t>> scratch;
  for (std::size_t j = 0; j < table.n_cols(); ++j) {
    if (table.column_is_binary(j)) {
      double gl = 0.0;
      double hl = 0.0;
      for (const std::uint32_t r : rows) {
        if (table.value(r, j) <= 0.5) {
          gl += grad[r];
          hl += hess[r];
        }
      }
      const double hr = h_total - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) continue;
      const double gr = g_total - gl;
      const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                 gr * gr / (hr + config_.lambda) - parent_score);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(j);
        best_threshold = 0.5;
      }
      continue;
    }

    scratch.clear();
    scratch.reserve(rows.size());
    for (const std::uint32_t r : rows) scratch.emplace_back(table.value(r, j), r);
    std::sort(scratch.begin(), scratch.end());
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
      gl += grad[scratch[i].second];
      hl += hess[scratch[i].second];
      if (scratch[i].first == scratch[i + 1].first) continue;
      const double hr = h_total - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) continue;
      const double gr = g_total - gl;
      const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                 gr * gr / (hr + config_.lambda) - parent_score);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(j);
        best_threshold = 0.5 * (scratch[i].first + scratch[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::uint32_t> left_rows;
  std::vector<std::uint32_t> right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const std::uint32_t r : rows) {
    (table.value(r, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  tree[node_id].feature = best_feature;
  tree[node_id].threshold = best_threshold;
  const std::int32_t left = build_node(table, tree, left_rows, grad, hess, depth + 1);
  tree[node_id].left = left;
  const std::int32_t right = build_node(table, tree, right_rows, grad, hess, depth + 1);
  tree[node_id].right = right;
  return node_id;
}

double GbdtClassifier::tree_output(const Tree& tree, std::span<const double> x) {
  std::int32_t node = 0;
  while (tree[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = tree[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return tree[static_cast<std::size_t>(node)].value;
}

double GbdtClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("GBDT: not fitted");
  if (x.size() != n_features_) throw std::invalid_argument("GBDT: query arity mismatch");
  double margin = base_margin_;
  for (const Tree& tree : trees_) {
    margin += config_.learning_rate * tree_output(tree, x);
  }
  return sigmoid(margin);
}


void GbdtClassifier::save_state(std::ostream& out) const {
  if (trees_.empty()) throw std::logic_error("GBDT: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.gbdt").tag("v1").nl();
  w.u64(config_.n_rounds).f64(config_.learning_rate).u64(config_.max_depth);
  w.f64(config_.lambda).f64(config_.gamma).f64(config_.min_child_weight);
  w.f64(config_.base_score).nl();
  w.u64(n_features_).f64(base_margin_).nl();
  w.u64(trees_.size()).nl();
  for (const Tree& tree : trees_) {
    w.u64(tree.size()).nl();
    for (const Node& nd : tree) {
      w.i64(nd.feature).f64(nd.threshold).i64(nd.left).i64(nd.right).f64(nd.value).nl();
    }
  }
}

void GbdtClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.gbdt");
  r.expect("ml.gbdt", "model tag");
  r.expect("v1", "format version");
  config_.n_rounds = r.u64("n_rounds");
  config_.learning_rate = r.f64("learning_rate");
  config_.max_depth = r.u64("max_depth");
  config_.lambda = r.f64("lambda");
  config_.gamma = r.f64("gamma");
  config_.min_child_weight = r.f64("min_child_weight");
  config_.base_score = r.f64("base_score");
  n_features_ = r.count("n_features", 1ULL << 24);
  if (n_features_ == 0) throw r.error("zero features");
  base_margin_ = r.f64("base_margin");
  const std::size_t rounds = r.count("round count", 1ULL << 20);
  if (rounds == 0) throw r.error("empty ensemble");
  trees_.assign(rounds, Tree{});
  for (Tree& tree : trees_) {
    const std::size_t n = r.count("node count", 1ULL << 24);
    if (n == 0) throw r.error("empty tree");
    tree.assign(n, Node{});
    for (Node& nd : tree) {
      nd.feature = static_cast<std::int32_t>(r.i64("node feature"));
      nd.threshold = r.f64("node threshold");
      nd.left = static_cast<std::int32_t>(r.i64("node left"));
      nd.right = static_cast<std::int32_t>(r.i64("node right"));
      nd.value = r.f64("node value");
      if (nd.feature >= 0) {
        if (static_cast<std::size_t>(nd.feature) >= n_features_) {
          throw r.error("node feature out of range");
        }
        if (nd.left < 0 || nd.right < 0 ||
            static_cast<std::size_t>(nd.left) >= n ||
            static_cast<std::size_t>(nd.right) >= n) {
          throw r.error("node child index out of range");
        }
      }
    }
  }
}

}  // namespace hdc::ml
