// Naive Bayes classifiers: Gaussian (continuous features) and Bernoulli
// (binary / hypervector features). Used by the Sylhet source paper as one of
// its four baseline models; included here for the extended comparisons.
#pragma once

#include "ml/classifier.hpp"

namespace hdc::ml {

struct NaiveBayesConfig {
  /// Laplace/Lidstone smoothing for Bernoulli likelihoods.
  double alpha = 1.0;
  /// Variance floor fraction for Gaussian likelihoods (sklearn's
  /// var_smoothing is 1e-9 * max variance).
  double var_smoothing = 1e-9;
  /// If true, every feature is treated as Bernoulli regardless of values.
  bool force_bernoulli = false;
};

class NaiveBayesClassifier final : public Classifier {
 public:
  explicit NaiveBayesClassifier(NaiveBayesConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  /// Exact sharded fit: per-class counts and per-feature ones-counts are
  /// integers (masked popcounts) merged across shards by addition, and on
  /// 0/1 data the dense path's sum / sum-of-squares accumulators are those
  /// same integers — so this matches fit() bit for bit at any shard count.
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "Naive Bayes"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  NaiveBayesConfig config_;
  std::vector<bool> bernoulli_;              // per-feature model choice
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];              // Gaussian params per class
  std::vector<double> var_[2];
  std::vector<double> log_p_one_[2];         // Bernoulli params per class
  std::vector<double> log_p_zero_[2];
  std::size_t n_features_ = 0;
};

}  // namespace hdc::ml
