#include "ml/forest.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace hdc::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  if (config_.n_trees == 0) throw std::invalid_argument("RandomForest: zero trees");
}

void RandomForest::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  if (packed_enabled()) {
    if (const std::optional<hv::BitMatrix> bits = try_pack(X)) {
      fit_packed(*bits, y);
      return;
    }
  }
  const ColumnTable table(X, y);
  const std::size_t n = table.n_rows();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(table.n_cols()))));
  }

  trees_.assign(config_.n_trees, DecisionTree(tree_config));
  parallel::parallel_for(0, config_.n_trees, [&](std::size_t t) {
    const std::uint64_t tree_seed = util::mix_seed(config_.seed, t);
    util::Rng rng(tree_seed);
    std::vector<std::uint32_t> rows(n);
    if (config_.bootstrap) {
      for (std::uint32_t& r : rows) {
        r = static_cast<std::uint32_t>(rng.below(n));
      }
    } else {
      std::iota(rows.begin(), rows.end(), 0u);
    }
    trees_[t].fit_from_table(table, std::move(rows), util::mix_seed(tree_seed, 0xf0));
  });
}

void RandomForest::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  fit_packed(X, y);
}

void RandomForest::fit_packed(const hv::BitMatrix& X, const Labels& y) {
  const std::size_t n = X.rows();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(X.cols()))));
  }

  trees_.assign(config_.n_trees, DecisionTree(tree_config));
  parallel::parallel_for(0, config_.n_trees, [&](std::size_t t) {
    const std::uint64_t tree_seed = util::mix_seed(config_.seed, t);
    util::Rng rng(tree_seed);
    // Same draw sequence as the dense bootstrap; the multiset of rows is
    // carried as per-row multiplicities instead of an index list (draw
    // order only ever feeds exact integer counts, so it cannot matter).
    std::vector<std::uint32_t> multiplicity(n, 0);
    if (config_.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        ++multiplicity[rng.below(n)];
      }
    } else {
      multiplicity.assign(n, 1);
    }
    trees_[t].fit_from_bits(X, y, multiplicity, util::mix_seed(tree_seed, 0xf0));
  });
}

void RandomForest::fit_shards(const ShardSource& src,
                              const ShardedFitOptions& /*options*/) {
  const std::size_t n = src.rows();
  if (n == 0) throw std::invalid_argument("RandomForest: empty row set");

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(src.cols()))));
  }

  // Sequential over trees: src.shard(s) returns a reference that the next
  // shard() call invalidates, so the source cannot be shared across the
  // thread pool the in-memory fit uses.
  trees_.assign(config_.n_trees, DecisionTree(tree_config));
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    const std::uint64_t tree_seed = util::mix_seed(config_.seed, t);
    util::Rng rng(tree_seed);
    // Same bootstrap draw sequence as the in-memory fits.
    std::vector<std::uint32_t> multiplicity(n, 0);
    if (config_.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        ++multiplicity[rng.below(n)];
      }
    } else {
      multiplicity.assign(n, 1);
    }
    trees_[t].fit_streamed(src, src.labels(), multiplicity,
                           util::mix_seed(tree_seed, 0xf0));
  }
}

std::vector<double> RandomForest::feature_importances() const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> total(trees_.front().feature_importances().size(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importances();
    for (std::size_t j = 0; j < total.size(); ++j) total[j] += imp[j];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

double RandomForest::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict_proba(x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<int> RandomForest::predict_all_bits(const hv::BitMatrix& X) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  if (X.cols() != trees_.front().feature_importances().size()) {
    throw std::invalid_argument("RandomForest: query arity mismatch");
  }
  std::vector<int> out;
  out.reserve(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    const std::uint64_t* row = X.row_bits(i);
    // Same tree order and summation as predict_proba, answered from bits.
    double sum = 0.0;
    for (const DecisionTree& tree : trees_) sum += tree.predict_proba_bits(row);
    out.push_back(sum / static_cast<double>(trees_.size()) >= 0.5 ? 1 : 0);
  }
  return out;
}


void RandomForest::save_state(std::ostream& out) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.forest").tag("v1").nl();
  w.u64(config_.n_trees).u64(config_.bootstrap ? 1 : 0).u64(config_.seed).nl();
  w.u64(trees_.size()).nl();
  for (const DecisionTree& tree : trees_) tree.save_state(out);
}

void RandomForest::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.forest");
  r.expect("ml.forest", "model tag");
  r.expect("v1", "format version");
  config_.n_trees = r.u64("n_trees");
  config_.bootstrap = r.u64("bootstrap") != 0;
  config_.seed = r.u64("seed");
  const std::size_t n = r.count("tree count", 1ULL << 20);
  if (n == 0) throw r.error("empty forest");
  trees_.assign(n, DecisionTree(config_.tree));
  for (DecisionTree& tree : trees_) tree.load_state(in);
}

}  // namespace hdc::ml
