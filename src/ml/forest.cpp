#include "ml/forest.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace hdc::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  if (config_.n_trees == 0) throw std::invalid_argument("RandomForest: zero trees");
}

void RandomForest::fit(const Matrix& X, const Labels& y) {
  const ColumnTable table(X, y);
  const std::size_t n = table.n_rows();

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(table.n_cols()))));
  }

  trees_.assign(config_.n_trees, DecisionTree(tree_config));
  parallel::parallel_for(0, config_.n_trees, [&](std::size_t t) {
    const std::uint64_t tree_seed = util::mix_seed(config_.seed, t);
    util::Rng rng(tree_seed);
    std::vector<std::uint32_t> rows(n);
    if (config_.bootstrap) {
      for (std::uint32_t& r : rows) {
        r = static_cast<std::uint32_t>(rng.below(n));
      }
    } else {
      std::iota(rows.begin(), rows.end(), 0u);
    }
    trees_[t].fit_from_table(table, std::move(rows), util::mix_seed(tree_seed, 0xf0));
  });
}

std::vector<double> RandomForest::feature_importances() const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> total(trees_.front().feature_importances().size(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importances();
    for (std::size_t j = 0; j < total.size(); ++j) total[j] += imp[j];
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

double RandomForest::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict_proba(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace hdc::ml
