#include "ml/zoo.hpp"

#include <algorithm>
#include <stdexcept>

#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/hist_gbdt.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/ordered_gbdt.hpp"
#include "ml/sgd.hpp"
#include "ml/svm.hpp"
#include "ml/tree.hpp"
#include "util/str.hpp"

namespace hdc::ml {

namespace {
std::size_t scaled(std::size_t base, double budget) {
  return std::max<std::size_t>(
      8, static_cast<std::size_t>(static_cast<double>(base) * budget));
}
}  // namespace

std::vector<ZooEntry> paper_model_zoo(double budget) {
  if (budget <= 0.0) throw std::invalid_argument("paper_model_zoo: budget <= 0");
  std::vector<ZooEntry> zoo;

  zoo.push_back({"Random Forest", [budget] {
                   ForestConfig config;
                   config.n_trees = scaled(100, budget);
                   return std::make_unique<RandomForest>(config);
                 }});
  zoo.push_back({"KNN", [] { return std::make_unique<KnnClassifier>(); }});
  zoo.push_back({"Decision Tree", [] { return std::make_unique<DecisionTree>(); }});
  zoo.push_back({"XGBoost", [budget] {
                   GbdtConfig config;
                   config.n_rounds = scaled(100, budget);
                   return std::make_unique<GbdtClassifier>(config);
                 }});
  zoo.push_back({"CatBoost", [budget] {
                   OrderedGbdtConfig config;
                   config.n_rounds = scaled(100, budget);
                   return std::make_unique<OrderedGbdtClassifier>(config);
                 }});
  zoo.push_back({"SGD", [] { return std::make_unique<SgdClassifier>(); }});
  zoo.push_back({"Logistic Regression",
                 [] { return std::make_unique<LogisticRegression>(); }});
  zoo.push_back({"SVC", [] { return std::make_unique<SvcClassifier>(); }});
  zoo.push_back({"LGBM", [budget] {
                   HistGbdtConfig config;
                   config.n_rounds = scaled(100, budget);
                   return std::make_unique<HistGbdtClassifier>(config);
                 }});
  return zoo;
}

std::unique_ptr<Classifier> make_model(const std::string& name, double budget) {
  for (ZooEntry& entry : paper_model_zoo(budget)) {
    if (util::iequals(entry.name, name)) return entry.make();
  }
  if (util::iequals(name, "Naive Bayes")) {
    return std::make_unique<NaiveBayesClassifier>();
  }
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace hdc::ml
