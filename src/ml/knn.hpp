// K-nearest-neighbours classifier (Euclidean distance, majority vote).
//
// When the training matrix is binary (hypervector features) the rows are
// retained bit-packed and squared Euclidean distance is answered as a
// Hamming distance through the simd dispatch table — for 0/1 data the two
// are the same exact integer, so neighbour sets and votes are bit-identical
// to the dense path.
#pragma once

#include "hv/bit_matrix.hpp"
#include "ml/classifier.hpp"

namespace hdc::ml {

struct KnnConfig {
  std::size_t k = 5;  // scikit-learn default
  /// If true, neighbours vote with weight 1/distance (ties toward closer).
  bool distance_weighted = false;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::vector<int> predict_all_bits(const hv::BitMatrix& X) const override;
  [[nodiscard]] std::string name() const override { return "KNN"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  [[nodiscard]] double vote(std::vector<std::pair<double, int>>& dist) const;

  KnnConfig config_;
  Matrix train_X_;             // dense store (non-binary training data)
  hv::BitMatrix train_bits_;   // packed store (binary training data)
  Labels train_y_;
};

}  // namespace hdc::ml
