// K-nearest-neighbours classifier (Euclidean distance, majority vote).
#pragma once

#include "ml/classifier.hpp"

namespace hdc::ml {

struct KnnConfig {
  std::size_t k = 5;  // scikit-learn default
  /// If true, neighbours vote with weight 1/distance (ties toward closer).
  bool distance_weighted = false;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "KNN"; }

 private:
  KnnConfig config_;
  Matrix train_X_;
  Labels train_y_;
};

}  // namespace hdc::ml
