// K-nearest-neighbours classifier (Euclidean distance, majority vote).
//
// When the training matrix is binary (hypervector features) the rows are
// retained bit-packed and squared Euclidean distance is answered as a
// Hamming distance through the simd dispatch table — for 0/1 data the two
// are the same exact integer, so neighbour sets and votes are bit-identical
// to the dense path.
#pragma once

#include <optional>

#include "hv/ann.hpp"
#include "hv/bit_matrix.hpp"
#include "ml/classifier.hpp"

namespace hdc::ml {

struct KnnConfig {
  std::size_t k = 5;  // scikit-learn default
  /// If true, neighbours vote with weight 1/distance (ties toward closer).
  bool distance_weighted = false;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  /// k-NN *is* its training set, so the sharded fit concatenates every
  /// shard's rows in global order and stores them packed — trivially
  /// shard-count invariant, but inherently O(n) resident (excluded from
  /// the out-of-core streaming phase for that reason).
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::vector<int> predict_all_bits(const hv::BitMatrix& X) const override;
  [[nodiscard]] std::string name() const override { return "KNN"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  /// Opt-in sub-linear neighbour search over the packed training rows (the
  /// hv::ann coarse-filter / exact-rerank index). Requires a packed (binary)
  /// training store. Off by default; not persisted by save_state — callers
  /// re-enable after load when they want it.
  void enable_ann(const hv::ann::Config& config = {});
  void disable_ann() noexcept { ann_.reset(); }
  [[nodiscard]] bool ann_enabled() const noexcept { return ann_.has_value(); }

 private:
  [[nodiscard]] double vote(std::vector<std::pair<double, int>>& dist) const;

  KnnConfig config_;
  Matrix train_X_;             // dense store (non-binary training data)
  hv::BitMatrix train_bits_;   // packed store (binary training data)
  Labels train_y_;
  std::optional<hv::ann::Index> ann_;  // opt-in, binary store only
};

}  // namespace hdc::ml
