#include "ml/naive_bayes.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/sharded.hpp"
#include "simd/dispatch.hpp"

namespace hdc::ml {

NaiveBayesClassifier::NaiveBayesClassifier(NaiveBayesConfig config) : config_(config) {
  if (config_.alpha < 0.0) throw std::invalid_argument("NaiveBayes: alpha < 0");
}

void NaiveBayesClassifier::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();
  n_features_ = d;

  bernoulli_.assign(d, true);
  if (!config_.force_bernoulli) {
    for (const auto& row : X) {
      for (std::size_t j = 0; j < d; ++j) {
        if (row[j] != 0.0 && row[j] != 1.0) bernoulli_[j] = false;
      }
    }
  }

  std::size_t count[2] = {0, 0};
  for (const int label : y) ++count[static_cast<std::size_t>(label)];
  if (count[0] == 0 || count[1] == 0) {
    throw std::invalid_argument("NaiveBayes: need both classes in training data");
  }
  for (int c : {0, 1}) {
    log_prior_[c] = std::log(static_cast<double>(count[c]) / static_cast<double>(n));
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
    log_p_one_[c].assign(d, 0.0);
    log_p_zero_[c].assign(d, 0.0);
  }

  // Accumulate sums per class.
  std::vector<double> ones[2] = {std::vector<double>(d, 0.0),
                                 std::vector<double>(d, 0.0)};
  for (std::size_t i = 0; i < n; ++i) {
    const int c = y[i];
    for (std::size_t j = 0; j < d; ++j) {
      mean_[c][j] += X[i][j];
      var_[c][j] += X[i][j] * X[i][j];
      if (X[i][j] >= 0.5) ones[c][j] += 1.0;
    }
  }
  double max_var = 0.0;
  for (int c : {0, 1}) {
    const double nc = static_cast<double>(count[c]);
    for (std::size_t j = 0; j < d; ++j) {
      mean_[c][j] /= nc;
      var_[c][j] = var_[c][j] / nc - mean_[c][j] * mean_[c][j];
      max_var = std::max(max_var, var_[c][j]);
      const double p =
          (ones[c][j] + config_.alpha) / (nc + 2.0 * config_.alpha);
      log_p_one_[c][j] = std::log(p);
      log_p_zero_[c][j] = std::log(1.0 - p);
    }
  }
  const double floor = std::max(config_.var_smoothing * std::max(max_var, 1.0), 1e-12);
  for (int c : {0, 1}) {
    for (std::size_t j = 0; j < d; ++j) var_[c][j] = std::max(var_[c][j], floor);
  }
}

void NaiveBayesClassifier::fit_shards(const ShardSource& src,
                                      const ShardedFitOptions& /*options*/) {
  const std::size_t n = src.rows();
  const std::size_t d = src.cols();
  const std::span<const int> y = src.labels();
  if (n == 0 || d == 0) throw std::invalid_argument("fit: empty training set");
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("fit: labels must be 0/1");
    }
  }

  n_features_ = d;
  bernoulli_.assign(d, true);  // packed input is 0/1 by construction

  std::size_t count[2] = {0, 0};
  for (const int label : y) ++count[static_cast<std::size_t>(label)];
  if (count[0] == 0 || count[1] == 0) {
    throw std::invalid_argument("NaiveBayes: need both classes in training data");
  }

  // Per-class ones-counts: masked popcounts per shard, merged by integer
  // addition. ones[c][j] equals the dense path's sum (and sum-of-squares)
  // accumulator for class c, feature j exactly.
  std::vector<std::size_t> ones[2] = {std::vector<std::size_t>(d, 0),
                                      std::vector<std::size_t>(d, 0)};
  const auto& kernels = simd::active();
  for (std::size_t s = 0; s < src.num_shards(); ++s) {
    const hv::BitMatrix& shard = src.shard(s);
    const std::size_t begin = src.shard_begin(s);
    hv::RowMask positive = hv::RowMask::none(shard.rows());
    for (std::size_t i = 0; i < shard.rows(); ++i) {
      if (y[begin + i] == 1) positive.set(i, true);
    }
    for (std::size_t j = 0; j < d; ++j) {
      const std::size_t total = shard.column_popcount(j);
      const std::size_t one = kernels.and_popcount(
          shard.column(j), positive.words(), shard.words_per_column());
      ones[1][j] += one;
      ones[0][j] += total - one;
    }
    note_hist_merge(2 * d);
  }

  for (int c : {0, 1}) {
    log_prior_[c] = std::log(static_cast<double>(count[c]) / static_cast<double>(n));
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
    log_p_one_[c].assign(d, 0.0);
    log_p_zero_[c].assign(d, 0.0);
  }
  // Same expressions as fit(): on 0/1 data the sum and sum-of-squares are
  // both the (integer-exact) ones-count, so mean/var/p match bit for bit.
  double max_var = 0.0;
  for (int c : {0, 1}) {
    const double nc = static_cast<double>(count[c]);
    for (std::size_t j = 0; j < d; ++j) {
      const double o = static_cast<double>(ones[c][j]);
      mean_[c][j] = o / nc;
      var_[c][j] = o / nc - mean_[c][j] * mean_[c][j];
      max_var = std::max(max_var, var_[c][j]);
      const double p = (o + config_.alpha) / (nc + 2.0 * config_.alpha);
      log_p_one_[c][j] = std::log(p);
      log_p_zero_[c][j] = std::log(1.0 - p);
    }
  }
  const double floor = std::max(config_.var_smoothing * std::max(max_var, 1.0), 1e-12);
  for (int c : {0, 1}) {
    for (std::size_t j = 0; j < d; ++j) var_[c][j] = std::max(var_[c][j], floor);
  }
}

double NaiveBayesClassifier::predict_proba(std::span<const double> x) const {
  if (n_features_ == 0) throw std::logic_error("NaiveBayes: not fitted");
  if (x.size() != n_features_) {
    throw std::invalid_argument("NaiveBayes: query arity mismatch");
  }
  double log_post[2] = {log_prior_[0], log_prior_[1]};
  for (int c : {0, 1}) {
    for (std::size_t j = 0; j < n_features_; ++j) {
      if (bernoulli_[j]) {
        log_post[c] += x[j] >= 0.5 ? log_p_one_[c][j] : log_p_zero_[c][j];
      } else {
        const double diff = x[j] - mean_[c][j];
        log_post[c] +=
            -0.5 * (std::log(2.0 * M_PI * var_[c][j]) + diff * diff / var_[c][j]);
      }
    }
  }
  // Softmax over the two log-posteriors.
  const double m = std::max(log_post[0], log_post[1]);
  const double e0 = std::exp(log_post[0] - m);
  const double e1 = std::exp(log_post[1] - m);
  return e1 / (e0 + e1);
}


void NaiveBayesClassifier::save_state(std::ostream& out) const {
  if (n_features_ == 0) throw std::logic_error("NaiveBayes: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.naive_bayes").tag("v1").nl();
  w.f64(config_.alpha).f64(config_.var_smoothing);
  w.u64(config_.force_bernoulli ? 1 : 0).nl();
  w.u64(n_features_).nl();
  std::vector<int> bernoulli(bernoulli_.begin(), bernoulli_.end());
  w.vec_int(bernoulli).nl();
  w.f64(log_prior_[0]).f64(log_prior_[1]).nl();
  for (int c = 0; c < 2; ++c) {
    w.vec_f64(mean_[c]).nl();
    w.vec_f64(var_[c]).nl();
    w.vec_f64(log_p_one_[c]).nl();
    w.vec_f64(log_p_zero_[c]).nl();
  }
}

void NaiveBayesClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.naive_bayes");
  r.expect("ml.naive_bayes", "model tag");
  r.expect("v1", "format version");
  config_.alpha = r.f64("alpha");
  config_.var_smoothing = r.f64("var_smoothing");
  config_.force_bernoulli = r.u64("force_bernoulli") != 0;
  n_features_ = r.count("n_features", 1ULL << 24);
  if (n_features_ == 0) throw r.error("zero features");
  const std::vector<int> bernoulli = r.vec_int("bernoulli flags", n_features_);
  if (bernoulli.size() != n_features_) throw r.error("bernoulli flag count mismatch");
  bernoulli_.assign(bernoulli.begin(), bernoulli.end());
  log_prior_[0] = r.f64("log_prior");
  log_prior_[1] = r.f64("log_prior");
  for (int c = 0; c < 2; ++c) {
    mean_[c] = r.vec_f64("mean", n_features_);
    var_[c] = r.vec_f64("var", n_features_);
    log_p_one_[c] = r.vec_f64("log_p_one", n_features_);
    log_p_zero_[c] = r.vec_f64("log_p_zero", n_features_);
  }
}

}  // namespace hdc::ml
