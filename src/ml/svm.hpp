// Support Vector Classifier trained with a simplified SMO solver
// (Platt 1998, simplified working-set selection). Supports linear and RBF
// kernels; gamma follows scikit-learn's "scale" heuristic by default.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace hdc::ml {

enum class SvmKernel { kLinear, kRbf };

struct SvcConfig {
  SvmKernel kernel = SvmKernel::kRbf;  // sklearn SVC default
  double c = 1.0;
  /// gamma <= 0 selects the "scale" heuristic: 1 / (d * var(X)).
  double gamma = -1.0;
  double tol = 1e-3;
  std::size_t max_passes = 5;  // passes without alpha change before stopping
  std::size_t max_iter = 300;  // hard cap on outer sweeps
  /// Standardise features internally (the usual scaler+SVC pipeline). With
  /// raw clinical features one wide column (age, insulin) otherwise swamps
  /// the RBF distance and the model degenerates to the majority class.
  bool standardize = true;
  std::uint64_t seed = 11;
};

class SvcClassifier final : public Classifier {
 public:
  explicit SvcClassifier(SvcConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  void fit_bits(const hv::BitMatrix& X, const Labels& y) override;
  /// Sharded fit: standardisation moments come from whole-cohort integer
  /// popcounts merged across shards; the SMO kernel matrix (inherently
  /// O(rows^2)) is built over a deterministic strided subsample of
  /// options.subsample_cap rows. Both choices are pure functions of the row
  /// sequence, so the fit is bit-identical at any shard count — and equals
  /// fit_bits() exactly whenever rows <= subsample_cap.
  void fit_shards(const ShardSource& src,
                  const ShardedFitOptions& options) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "SVC"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  /// Signed distance to the separating surface.
  [[nodiscard]] double decision(std::span<const double> x) const;
  [[nodiscard]] std::size_t support_vector_count() const noexcept;

 private:
  void fit_packed(const hv::BitMatrix& X, const Labels& y);
  /// gamma heuristic + kernel matrix + SMO over the already-populated
  /// train_X_/targets_ members. `bits` (may be null) lets the RBF kernel
  /// matrix come from XOR bit-planes instead of dense row pairs.
  void solve_smo(const hv::BitMatrix* bits);
  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;
  [[nodiscard]] std::vector<double> standardized(std::span<const double> x) const;

  SvcConfig config_;
  double gamma_ = 1.0;
  Matrix train_X_;  // standardised copies when config_.standardize
  std::vector<double> targets_;  // +/-1
  std::vector<double> alphas_;
  double b_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace hdc::ml
