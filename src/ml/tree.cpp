#include "ml/tree.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "simd/dispatch.hpp"

namespace hdc::ml {

namespace {

constexpr std::size_t kDepthCap = 64;

/// Gini impurity of a (count, positives) bucket, weighted by count.
double gini_weighted(double n, double pos) noexcept {
  if (n <= 0.0) return 0.0;
  const double p = pos / n;
  return n * 2.0 * p * (1.0 - p);
}

struct BestSplit {
  std::int32_t feature = -1;
  double threshold = 0.0;
  double impurity_after = 0.0;
};

}  // namespace

DecisionTree::DecisionTree(TreeConfig config) : config_(config) {
  if (config_.min_samples_split < 2) config_.min_samples_split = 2;
  if (config_.min_samples_leaf < 1) config_.min_samples_leaf = 1;
}

void DecisionTree::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  if (packed_enabled()) {
    if (const std::optional<hv::BitMatrix> bits = try_pack(X)) {
      fit_from_bits(*bits, y, {}, config_.seed);
      return;
    }
  }
  const ColumnTable table(X, y);
  std::vector<std::uint32_t> rows(table.n_rows());
  std::iota(rows.begin(), rows.end(), 0u);
  fit_from_table(table, std::move(rows), config_.seed);
}

void DecisionTree::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  fit_from_bits(X, y, {}, config_.seed);
}

void DecisionTree::fit_from_table(const ColumnTable& table,
                                  std::vector<std::uint32_t> rows,
                                  std::uint64_t seed) {
  if (rows.empty()) throw std::invalid_argument("DecisionTree: empty row set");
  nodes_.clear();
  depth_ = 0;
  n_features_ = table.n_cols();
  importances_.assign(n_features_, 0.0);
  util::Rng rng(seed);
  build(table, rows, 0, rng);
  double total = 0.0;
  for (const double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

std::int32_t DecisionTree::build(const ColumnTable& table,
                                 std::vector<std::uint32_t>& rows, std::size_t depth,
                                 util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = rows.size();
  std::size_t positives = 0;
  for (const std::uint32_t r : rows) positives += table.label(r) == 1 ? 1 : 0;

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].prob = static_cast<double>(positives) / static_cast<double>(n);

  const std::size_t max_depth = config_.max_depth == 0 ? kDepthCap : config_.max_depth;
  const bool pure = positives == 0 || positives == n;
  if (pure || depth >= max_depth || n < config_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (random forest mode).
  std::vector<std::size_t> candidates;
  if (config_.max_features == 0 || config_.max_features >= table.n_cols()) {
    candidates.resize(table.n_cols());
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  } else {
    candidates = rng.sample_without_replacement(table.n_cols(), config_.max_features);
  }

  const double parent_impurity =
      gini_weighted(static_cast<double>(n), static_cast<double>(positives));
  BestSplit best;
  best.impurity_after = parent_impurity;

  std::vector<std::pair<double, int>> scratch;
  const double min_leaf = static_cast<double>(config_.min_samples_leaf);

  for (const std::size_t j : candidates) {
    if (table.column_is_binary(j)) {
      // Two-bucket count: threshold 0.5 is the only possible split.
      double n_left = 0.0;
      double pos_left = 0.0;
      for (const std::uint32_t r : rows) {
        if (table.value(r, j) <= 0.5) {
          n_left += 1.0;
          if (table.label(r) == 1) pos_left += 1.0;
        }
      }
      const double n_right = static_cast<double>(n) - n_left;
      if (n_left < min_leaf || n_right < min_leaf) continue;
      const double pos_right = static_cast<double>(positives) - pos_left;
      const double after =
          gini_weighted(n_left, pos_left) + gini_weighted(n_right, pos_right);
      if (after + 1e-12 < best.impurity_after) {
        best = {static_cast<std::int32_t>(j), 0.5, after};
      }
      continue;
    }

    // Continuous column: sort this node's values and scan the midpoints.
    scratch.clear();
    scratch.reserve(n);
    for (const std::uint32_t r : rows) {
      scratch.emplace_back(table.value(r, j), table.label(r));
    }
    std::sort(scratch.begin(), scratch.end());
    double n_left = 0.0;
    double pos_left = 0.0;
    for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
      n_left += 1.0;
      pos_left += scratch[i].second;
      if (scratch[i].first == scratch[i + 1].first) continue;  // no boundary
      const double n_right = static_cast<double>(n) - n_left;
      if (n_left < min_leaf || n_right < min_leaf) continue;
      const double pos_right = static_cast<double>(positives) - pos_left;
      const double after =
          gini_weighted(n_left, pos_left) + gini_weighted(n_right, pos_right);
      if (after + 1e-12 < best.impurity_after) {
        best = {static_cast<std::int32_t>(j),
                0.5 * (scratch[i].first + scratch[i + 1].first), after};
      }
    }
  }

  if (best.feature < 0) return node_id;  // no useful split found
  importances_[static_cast<std::size_t>(best.feature)] +=
      parent_impurity - best.impurity_after;

  std::vector<std::uint32_t> left_rows;
  std::vector<std::uint32_t> right_rows;
  left_rows.reserve(n);
  right_rows.reserve(n);
  for (const std::uint32_t r : rows) {
    (table.value(r, static_cast<std::size_t>(best.feature)) <= best.threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[node_id].feature = best.feature;
  nodes_[node_id].threshold = best.threshold;
  const std::int32_t left = build(table, left_rows, depth + 1, rng);
  nodes_[node_id].left = left;
  const std::int32_t right = build(table, right_rows, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

/// Fit context for the bitplane path: the design matrix, the per-row
/// bootstrap multiplicity as bit-planes, and the positive-label mask.
struct DecisionTree::PackedTable {
  const hv::BitMatrix* X = nullptr;
  std::size_t words = 0;
  std::vector<std::vector<std::uint64_t>> planes;  // multiplicity bit k
  std::vector<std::uint64_t> labels;               // rows with label 1
};

void DecisionTree::fit_from_bits(const hv::BitMatrix& X, const Labels& y,
                                 std::span<const std::uint32_t> multiplicity,
                                 std::uint64_t seed) {
  if (X.rows() == 0 || X.cols() == 0) {
    throw std::invalid_argument("DecisionTree: empty row set");
  }
  if (y.size() != X.rows()) {
    throw std::invalid_argument("DecisionTree: X/y size mismatch");
  }
  const std::size_t words = X.words_per_column();
  PackedTable table;
  table.X = &X;
  table.words = words;
  if (multiplicity.empty()) {
    table.planes.emplace_back(X.valid().words(), X.valid().words() + words);
  } else {
    if (multiplicity.size() != X.rows()) {
      throw std::invalid_argument("DecisionTree: multiplicity size mismatch");
    }
    std::uint32_t max_mult = 0;
    for (const std::uint32_t m : multiplicity) max_mult = std::max(max_mult, m);
    const int k_planes = std::bit_width(max_mult);
    if (k_planes == 0) throw std::invalid_argument("DecisionTree: empty row set");
    table.planes.assign(static_cast<std::size_t>(k_planes),
                        std::vector<std::uint64_t>(words, 0));
    for (std::size_t r = 0; r < multiplicity.size(); ++r) {
      for (int k = 0; k < k_planes; ++k) {
        if ((multiplicity[r] >> k) & 1u) {
          table.planes[static_cast<std::size_t>(k)][r >> 6] |= 1ULL << (r & 63);
        }
      }
    }
  }
  const hv::RowMask positives = label_mask(y);
  table.labels.assign(positives.words(), positives.words() + words);

  // Root mask: every row drawn at least once (OR of the multiplicity bits).
  std::vector<std::uint64_t> root(words, 0);
  for (const auto& plane : table.planes) {
    for (std::size_t w = 0; w < words; ++w) root[w] |= plane[w];
  }

  nodes_.clear();
  depth_ = 0;
  n_features_ = X.cols();
  importances_.assign(n_features_, 0.0);
  util::Rng rng(seed);
  build_packed(table, root, 0, rng);
  double total = 0.0;
  for (const double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

std::int32_t DecisionTree::build_packed(const PackedTable& table,
                                        std::vector<std::uint64_t>& mask,
                                        std::size_t depth, util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t words = table.words;
  const std::size_t k_planes = table.planes.size();
  const simd::Kernels& kernels = simd::active();

  // Node-local multiplicity planes (and their label-1 intersections):
  // weighted counts then read off as 2^k-scaled popcounts.
  std::vector<std::uint64_t> node_planes(k_planes * words);
  std::size_t n = 0;
  std::size_t positives = 0;
  for (std::size_t k = 0; k < k_planes; ++k) {
    std::uint64_t* plane = node_planes.data() + k * words;
    for (std::size_t w = 0; w < words; ++w) {
      plane[w] = table.planes[k][w] & mask[w];
    }
    n += (std::size_t{1} << k) * kernels.popcount(plane, words);
    positives += (std::size_t{1} << k) *
                 kernels.and_popcount(plane, table.labels.data(), words);
  }

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].prob = static_cast<double>(positives) / static_cast<double>(n);

  const std::size_t max_depth = config_.max_depth == 0 ? kDepthCap : config_.max_depth;
  const bool pure = positives == 0 || positives == n;
  if (pure || depth >= max_depth || n < config_.min_samples_split) {
    return node_id;
  }

  // Same candidate draw (and rng stream position) as the dense build.
  std::vector<std::size_t> candidates;
  if (config_.max_features == 0 || config_.max_features >= table.X->cols()) {
    candidates.resize(table.X->cols());
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  } else {
    candidates = rng.sample_without_replacement(table.X->cols(), config_.max_features);
  }

  const double parent_impurity =
      gini_weighted(static_cast<double>(n), static_cast<double>(positives));
  BestSplit best;
  best.impurity_after = parent_impurity;
  const double min_leaf = static_cast<double>(config_.min_samples_leaf);

  for (const std::size_t j : candidates) {
    const std::uint64_t* col = table.X->column(j);
    // Left bucket = bit 0 rows: weighted count and weighted positives via
    // ANDNOT popcounts against each multiplicity plane.
    std::size_t weighted_left = 0;
    std::size_t weighted_pos = 0;
    for (std::size_t k = 0; k < k_planes; ++k) {
      const std::uint64_t* plane = node_planes.data() + k * words;
      weighted_left +=
          (std::size_t{1} << k) * kernels.andnot_popcount(col, plane, words);
    }
    const double n_left = static_cast<double>(weighted_left);
    const double n_right = static_cast<double>(n) - n_left;
    if (n_left < min_leaf || n_right < min_leaf) continue;
    for (std::size_t k = 0; k < k_planes; ++k) {
      const std::uint64_t* plane = node_planes.data() + k * words;
      std::size_t count = 0;
      for (std::size_t w = 0; w < words; ++w) {
        count += static_cast<std::size_t>(
            std::popcount(~col[w] & plane[w] & table.labels[w]));
      }
      weighted_pos += (std::size_t{1} << k) * count;
    }
    const double pos_left = static_cast<double>(weighted_pos);
    const double pos_right = static_cast<double>(positives) - pos_left;
    const double after =
        gini_weighted(n_left, pos_left) + gini_weighted(n_right, pos_right);
    if (after + 1e-12 < best.impurity_after) {
      best = {static_cast<std::int32_t>(j), 0.5, after};
    }
  }

  if (best.feature < 0) return node_id;  // no useful split found
  importances_[static_cast<std::size_t>(best.feature)] +=
      parent_impurity - best.impurity_after;

  const std::uint64_t* col = table.X->column(static_cast<std::size_t>(best.feature));
  std::vector<std::uint64_t> left_mask(words);
  std::vector<std::uint64_t> right_mask(words);
  for (std::size_t w = 0; w < words; ++w) {
    left_mask[w] = mask[w] & ~col[w];
    right_mask[w] = mask[w] & col[w];
  }
  mask.clear();
  mask.shrink_to_fit();
  node_planes.clear();
  node_planes.shrink_to_fit();

  nodes_[node_id].feature = best.feature;
  nodes_[node_id].threshold = best.threshold;
  const std::int32_t left = build_packed(table, left_mask, depth + 1, rng);
  nodes_[node_id].left = left;
  const std::int32_t right = build_packed(table, right_mask, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

void DecisionTree::fit_shards(const ShardSource& src,
                              const ShardedFitOptions& /*options*/) {
  fit_streamed(src, src.labels(), {}, config_.seed);
}

void DecisionTree::fit_streamed(const ShardSource& src, std::span<const int> y,
                                std::span<const std::uint32_t> multiplicity,
                                std::uint64_t seed) {
  const std::size_t n_rows = src.rows();
  const std::size_t d = src.cols();
  if (n_rows == 0 || d == 0) throw std::invalid_argument("DecisionTree: empty row set");
  if (y.size() != n_rows) throw std::invalid_argument("DecisionTree: X/y size mismatch");
  if (!multiplicity.empty() && multiplicity.size() != n_rows) {
    throw std::invalid_argument("DecisionTree: multiplicity size mismatch");
  }
  const auto mult = [&](std::size_t i) -> std::uint32_t {
    return multiplicity.empty() ? 1u : multiplicity[i];
  };

  // Root stats come straight from the label/multiplicity arrays — integer
  // sums, no shard access needed. Children inherit theirs from the parent's
  // winning split, so only split search ever streams the shards.
  std::uint64_t root_n = 0;
  std::uint64_t root_pos = 0;
  std::uint32_t max_mult = 0;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::uint32_t m = mult(i);
    max_mult = std::max(max_mult, m);
    root_n += m;
    if (y[i] == 1) root_pos += m;
  }
  if (root_n == 0) throw std::invalid_argument("DecisionTree: empty row set");
  const std::size_t k_planes = static_cast<std::size_t>(std::bit_width(max_mult));

  nodes_.clear();
  depth_ = 0;
  n_features_ = d;
  importances_.assign(d, 0.0);

  // Per-row resident state: the id of the node each (drawn) row sits in.
  std::vector<std::int32_t> node_of(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) node_of[i] = mult(i) > 0 ? 0 : -1;

  struct Open {
    std::int32_t node_id = 0;
    std::size_t depth = 0;
    std::uint64_t n = 0;    // weighted row count
    std::uint64_t pos = 0;  // weighted positives
  };
  struct Eval {
    std::size_t open = 0;                 // index into the current level
    std::vector<std::size_t> candidates;  // drawn feature subset
    std::vector<std::uint64_t> left_n;    // weighted bit=0 count per candidate
    std::vector<std::uint64_t> left_pos;  // weighted bit=0 positives per candidate
  };
  struct Split {
    std::int32_t node_id = -1;
    std::size_t feature = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  nodes_.emplace_back();
  nodes_[0].prob = static_cast<double>(root_pos) / static_cast<double>(root_n);
  std::vector<Open> level;
  level.push_back({0, 0, root_n, root_pos});

  const std::size_t max_depth = config_.max_depth == 0 ? kDepthCap : config_.max_depth;
  const double min_leaf = static_cast<double>(config_.min_samples_leaf);
  const simd::Kernels& kernels = simd::active();
  constexpr std::size_t kGroup = 256;  // open nodes per streaming pass

  while (!level.empty()) {
    std::vector<Eval> evals;
    for (std::size_t o = 0; o < level.size(); ++o) {
      const Open& open = level[o];
      depth_ = std::max(depth_, open.depth);
      const bool pure = open.pos == 0 || open.pos == open.n;
      if (pure || open.depth >= max_depth || open.n < config_.min_samples_split) {
        continue;
      }
      Eval eval;
      eval.open = o;
      // Per-node candidate draw keyed on (seed, node id): independent of
      // visit order and of shard geometry.
      if (config_.max_features == 0 || config_.max_features >= d) {
        eval.candidates.resize(d);
        std::iota(eval.candidates.begin(), eval.candidates.end(), std::size_t{0});
      } else {
        util::Rng rng(util::mix_seed(seed, static_cast<std::uint64_t>(open.node_id)));
        eval.candidates = rng.sample_without_replacement(d, config_.max_features);
      }
      eval.left_n.assign(eval.candidates.size(), 0);
      eval.left_pos.assign(eval.candidates.size(), 0);
      evals.push_back(std::move(eval));
    }

    // Histogram passes in groups of kGroup nodes: bounds the per-pass mask
    // memory; a very wide level streams the shards more than once.
    for (std::size_t g0 = 0; g0 < evals.size(); g0 += kGroup) {
      const std::size_t g1 = std::min(evals.size(), g0 + kGroup);
      std::vector<std::int32_t> slot_of(nodes_.size(), -1);
      for (std::size_t e = g0; e < g1; ++e) {
        slot_of[static_cast<std::size_t>(level[evals[e].open].node_id)] =
            static_cast<std::int32_t>(e - g0);
      }
      std::size_t group_cells = 0;
      for (std::size_t e = g0; e < g1; ++e) group_cells += 2 * evals[e].candidates.size();

      for (std::size_t s = 0; s < src.num_shards(); ++s) {
        const hv::BitMatrix& shard = src.shard(s);
        const std::size_t begin = src.shard_begin(s);
        const std::size_t rows = shard.rows();
        const std::size_t words = shard.words_per_column();

        // Shard-local label plane, multiplicity bit-planes, per-node masks.
        std::vector<std::uint64_t> labels_local(words, 0);
        std::vector<std::vector<std::uint64_t>> planes_local(
            k_planes, std::vector<std::uint64_t>(words, 0));
        std::vector<std::vector<std::uint64_t>> masks(
            g1 - g0, std::vector<std::uint64_t>(words, 0));
        for (std::size_t i = 0; i < rows; ++i) {
          const std::size_t row = begin + i;
          const std::uint64_t bit = 1ULL << (i & 63);
          if (y[row] == 1) labels_local[i >> 6] |= bit;
          const std::uint32_t m = mult(row);
          for (std::size_t k = 0; k < k_planes; ++k) {
            if ((m >> k) & 1u) planes_local[k][i >> 6] |= bit;
          }
          const std::int32_t id = node_of[row];
          if (id < 0) continue;
          const std::int32_t slot = slot_of[static_cast<std::size_t>(id)];
          if (slot >= 0) masks[static_cast<std::size_t>(slot)][i >> 6] |= bit;
        }

        // Weighted left-bucket counts: ANDNOT popcounts against each
        // multiplicity plane, exactly as build_packed — every term is an
        // integer, so the cross-shard sum is order-free and exact.
        std::vector<std::uint64_t> node_plane(words);
        for (std::size_t e = g0; e < g1; ++e) {
          Eval& eval = evals[e];
          const std::uint64_t* mask = masks[e - g0].data();
          for (std::size_t k = 0; k < k_planes; ++k) {
            for (std::size_t w = 0; w < words; ++w) {
              node_plane[w] = planes_local[k][w] & mask[w];
            }
            const std::uint64_t weight = std::uint64_t{1} << k;
            for (std::size_t c = 0; c < eval.candidates.size(); ++c) {
              const std::uint64_t* col = shard.column(eval.candidates[c]);
              eval.left_n[c] +=
                  weight * kernels.andnot_popcount(col, node_plane.data(), words);
              std::size_t count = 0;
              for (std::size_t w = 0; w < words; ++w) {
                count += static_cast<std::size_t>(
                    std::popcount(~col[w] & node_plane[w] & labels_local[w]));
              }
              eval.left_pos[c] += weight * count;
            }
          }
        }
        note_hist_merge(group_cells);
      }
    }

    // Split decisions and child creation, in ascending node-id order — the
    // same deterministic sequence at any shard count.
    std::vector<Open> next;
    std::vector<Split> splits;
    for (Eval& eval : evals) {
      const Open& open = level[eval.open];
      const double n = static_cast<double>(open.n);
      const double positives = static_cast<double>(open.pos);
      const double parent_impurity = gini_weighted(n, positives);
      BestSplit best;
      best.impurity_after = parent_impurity;
      std::size_t best_c = eval.candidates.size();
      for (std::size_t c = 0; c < eval.candidates.size(); ++c) {
        const double n_left = static_cast<double>(eval.left_n[c]);
        const double n_right = n - n_left;
        if (n_left < min_leaf || n_right < min_leaf) continue;
        const double pos_left = static_cast<double>(eval.left_pos[c]);
        const double pos_right = positives - pos_left;
        const double after =
            gini_weighted(n_left, pos_left) + gini_weighted(n_right, pos_right);
        if (after + 1e-12 < best.impurity_after) {
          best = {static_cast<std::int32_t>(eval.candidates[c]), 0.5, after};
          best_c = c;
        }
      }
      if (best.feature < 0) continue;  // no useful split: stays a leaf
      importances_[static_cast<std::size_t>(best.feature)] +=
          parent_impurity - best.impurity_after;

      const std::uint64_t left_n = eval.left_n[best_c];
      const std::uint64_t left_pos = eval.left_pos[best_c];
      const std::int32_t left_id = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      nodes_.back().prob =
          static_cast<double>(left_pos) / static_cast<double>(left_n);
      const std::int32_t right_id = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      nodes_.back().prob = static_cast<double>(open.pos - left_pos) /
                           static_cast<double>(open.n - left_n);
      Node& parent = nodes_[static_cast<std::size_t>(open.node_id)];
      parent.feature = best.feature;
      parent.threshold = best.threshold;
      parent.left = left_id;
      parent.right = right_id;
      next.push_back({left_id, open.depth + 1, left_n, left_pos});
      next.push_back(
          {right_id, open.depth + 1, open.n - left_n, open.pos - left_pos});
      splits.push_back({open.node_id, static_cast<std::size_t>(best.feature),
                        left_id, right_id});
    }

    // Route pass: every row in a split node moves to its child.
    if (!splits.empty()) {
      std::vector<std::int32_t> split_of(nodes_.size(), -1);
      for (std::size_t sp = 0; sp < splits.size(); ++sp) {
        split_of[static_cast<std::size_t>(splits[sp].node_id)] =
            static_cast<std::int32_t>(sp);
      }
      for (std::size_t s = 0; s < src.num_shards(); ++s) {
        const hv::BitMatrix& shard = src.shard(s);
        const std::size_t begin = src.shard_begin(s);
        for (std::size_t i = 0; i < shard.rows(); ++i) {
          const std::size_t row = begin + i;
          const std::int32_t id = node_of[row];
          if (id < 0) continue;
          const std::int32_t sp = split_of[static_cast<std::size_t>(id)];
          if (sp < 0) continue;
          const Split& split = splits[static_cast<std::size_t>(sp)];
          const std::uint64_t* col = shard.column(split.feature);
          node_of[row] = (col[i >> 6] >> (i & 63)) & 1ULL ? split.right : split.left;
        }
      }
    }
    level = std::move(next);
  }

  double total = 0.0;
  for (const double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

double DecisionTree::predict_proba_bits(const std::uint64_t* row_bits) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    const std::size_t j = static_cast<std::size_t>(nd.feature);
    const double value = static_cast<double>((row_bits[j >> 6] >> (j & 63)) & 1ULL);
    node = value <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].prob;
}

std::vector<int> DecisionTree::predict_all_bits(const hv::BitMatrix& X) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  if (X.cols() != n_features_) {
    throw std::invalid_argument("DecisionTree: query arity mismatch");
  }
  std::vector<int> out;
  out.reserve(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    out.push_back(predict_proba_bits(X.row_bits(i)) >= 0.5 ? 1 : 0);
  }
  return out;
}

double DecisionTree::predict_proba(std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  if (x.size() != n_features_) {
    throw std::invalid_argument("DecisionTree: query arity mismatch");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].prob;
}


void DecisionTree::save_state(std::ostream& out) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.tree").tag("v1").nl();
  w.u64(config_.max_depth).u64(config_.min_samples_split);
  w.u64(config_.min_samples_leaf).u64(config_.max_features).u64(config_.seed).nl();
  w.u64(n_features_).u64(depth_).nl();
  w.u64(nodes_.size()).nl();
  for (const Node& nd : nodes_) {
    w.i64(nd.feature).f64(nd.threshold).i64(nd.left).i64(nd.right).f64(nd.prob).nl();
  }
  w.vec_f64(importances_).nl();
}

void DecisionTree::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.tree");
  r.expect("ml.tree", "model tag");
  r.expect("v1", "format version");
  config_.max_depth = r.u64("max_depth");
  config_.min_samples_split = r.u64("min_samples_split");
  config_.min_samples_leaf = r.u64("min_samples_leaf");
  config_.max_features = r.u64("max_features");
  config_.seed = r.u64("seed");
  n_features_ = r.count("n_features", 1ULL << 24);
  depth_ = r.u64("depth");
  const std::size_t n = r.count("node count", 1ULL << 24);
  if (n == 0) throw r.error("empty node list");
  nodes_.assign(n, Node{});
  for (Node& nd : nodes_) {
    nd.feature = static_cast<std::int32_t>(r.i64("node feature"));
    nd.threshold = r.f64("node threshold");
    nd.left = static_cast<std::int32_t>(r.i64("node left"));
    nd.right = static_cast<std::int32_t>(r.i64("node right"));
    nd.prob = r.f64("node prob");
    if (nd.feature >= 0) {
      if (static_cast<std::size_t>(nd.feature) >= n_features_) {
        throw r.error("node feature out of range");
      }
      if (nd.left < 0 || nd.right < 0 ||
          static_cast<std::size_t>(nd.left) >= n ||
          static_cast<std::size_t>(nd.right) >= n) {
        throw r.error("node child index out of range");
      }
    }
  }
  importances_ = r.vec_f64("importances", 1ULL << 24);
  if (!importances_.empty() && importances_.size() != n_features_) {
    throw r.error("importance arity mismatch");
  }
}

}  // namespace hdc::ml
