#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdc::ml {

namespace {

constexpr std::size_t kDepthCap = 64;

/// Gini impurity of a (count, positives) bucket, weighted by count.
double gini_weighted(double n, double pos) noexcept {
  if (n <= 0.0) return 0.0;
  const double p = pos / n;
  return n * 2.0 * p * (1.0 - p);
}

struct BestSplit {
  std::int32_t feature = -1;
  double threshold = 0.0;
  double impurity_after = 0.0;
};

}  // namespace

DecisionTree::DecisionTree(TreeConfig config) : config_(config) {
  if (config_.min_samples_split < 2) config_.min_samples_split = 2;
  if (config_.min_samples_leaf < 1) config_.min_samples_leaf = 1;
}

void DecisionTree::fit(const Matrix& X, const Labels& y) {
  const ColumnTable table(X, y);
  std::vector<std::uint32_t> rows(table.n_rows());
  std::iota(rows.begin(), rows.end(), 0u);
  fit_from_table(table, std::move(rows), config_.seed);
}

void DecisionTree::fit_from_table(const ColumnTable& table,
                                  std::vector<std::uint32_t> rows,
                                  std::uint64_t seed) {
  if (rows.empty()) throw std::invalid_argument("DecisionTree: empty row set");
  nodes_.clear();
  depth_ = 0;
  n_features_ = table.n_cols();
  importances_.assign(n_features_, 0.0);
  util::Rng rng(seed);
  build(table, rows, 0, rng);
  double total = 0.0;
  for (const double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

std::int32_t DecisionTree::build(const ColumnTable& table,
                                 std::vector<std::uint32_t>& rows, std::size_t depth,
                                 util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = rows.size();
  std::size_t positives = 0;
  for (const std::uint32_t r : rows) positives += table.label(r) == 1 ? 1 : 0;

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].prob = static_cast<double>(positives) / static_cast<double>(n);

  const std::size_t max_depth = config_.max_depth == 0 ? kDepthCap : config_.max_depth;
  const bool pure = positives == 0 || positives == n;
  if (pure || depth >= max_depth || n < config_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (random forest mode).
  std::vector<std::size_t> candidates;
  if (config_.max_features == 0 || config_.max_features >= table.n_cols()) {
    candidates.resize(table.n_cols());
    std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  } else {
    candidates = rng.sample_without_replacement(table.n_cols(), config_.max_features);
  }

  const double parent_impurity =
      gini_weighted(static_cast<double>(n), static_cast<double>(positives));
  BestSplit best;
  best.impurity_after = parent_impurity;

  std::vector<std::pair<double, int>> scratch;
  const double min_leaf = static_cast<double>(config_.min_samples_leaf);

  for (const std::size_t j : candidates) {
    if (table.column_is_binary(j)) {
      // Two-bucket count: threshold 0.5 is the only possible split.
      double n_left = 0.0;
      double pos_left = 0.0;
      for (const std::uint32_t r : rows) {
        if (table.value(r, j) <= 0.5) {
          n_left += 1.0;
          if (table.label(r) == 1) pos_left += 1.0;
        }
      }
      const double n_right = static_cast<double>(n) - n_left;
      if (n_left < min_leaf || n_right < min_leaf) continue;
      const double pos_right = static_cast<double>(positives) - pos_left;
      const double after =
          gini_weighted(n_left, pos_left) + gini_weighted(n_right, pos_right);
      if (after + 1e-12 < best.impurity_after) {
        best = {static_cast<std::int32_t>(j), 0.5, after};
      }
      continue;
    }

    // Continuous column: sort this node's values and scan the midpoints.
    scratch.clear();
    scratch.reserve(n);
    for (const std::uint32_t r : rows) {
      scratch.emplace_back(table.value(r, j), table.label(r));
    }
    std::sort(scratch.begin(), scratch.end());
    double n_left = 0.0;
    double pos_left = 0.0;
    for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
      n_left += 1.0;
      pos_left += scratch[i].second;
      if (scratch[i].first == scratch[i + 1].first) continue;  // no boundary
      const double n_right = static_cast<double>(n) - n_left;
      if (n_left < min_leaf || n_right < min_leaf) continue;
      const double pos_right = static_cast<double>(positives) - pos_left;
      const double after =
          gini_weighted(n_left, pos_left) + gini_weighted(n_right, pos_right);
      if (after + 1e-12 < best.impurity_after) {
        best = {static_cast<std::int32_t>(j),
                0.5 * (scratch[i].first + scratch[i + 1].first), after};
      }
    }
  }

  if (best.feature < 0) return node_id;  // no useful split found
  importances_[static_cast<std::size_t>(best.feature)] +=
      parent_impurity - best.impurity_after;

  std::vector<std::uint32_t> left_rows;
  std::vector<std::uint32_t> right_rows;
  left_rows.reserve(n);
  right_rows.reserve(n);
  for (const std::uint32_t r : rows) {
    (table.value(r, static_cast<std::size_t>(best.feature)) <= best.threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[node_id].feature = best.feature;
  nodes_[node_id].threshold = best.threshold;
  const std::int32_t left = build(table, left_rows, depth + 1, rng);
  nodes_[node_id].left = left;
  const std::int32_t right = build(table, right_rows, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict_proba(std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  if (x.size() != n_features_) {
    throw std::invalid_argument("DecisionTree: query arity mismatch");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].prob;
}

}  // namespace hdc::ml
