#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "simd/dispatch.hpp"

namespace hdc::ml {

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k == 0) throw std::invalid_argument("KNN: k must be positive");
}

void KnnClassifier::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  ann_.reset();  // a previous index indexed the previous training set
  if (packed_enabled()) {
    if (std::optional<hv::BitMatrix> bits = try_pack(X)) {
      train_bits_ = std::move(*bits);
      train_X_.clear();
      train_y_ = y;
      return;
    }
  }
  train_X_ = X;
  train_bits_ = hv::BitMatrix();
  train_y_ = y;
}

void KnnClassifier::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  ann_.reset();
  train_bits_ = X;
  train_X_.clear();
  train_y_ = y;
}

void KnnClassifier::fit_shards(const ShardSource& src,
                               const ShardedFitOptions& /*options*/) {
  std::vector<std::size_t> all(src.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  fit_bits(gather_rows(src, all), gather_labels(src.labels(), all));
}

void KnnClassifier::enable_ann(const hv::ann::Config& config) {
  if (train_bits_.empty()) {
    throw std::logic_error(
        "KNN: ANN needs a packed (binary) training store — fit on binary "
        "features with packing enabled first");
  }
  ann_ = hv::ann::Index::build(train_bits_.row_major(), config);
}

double KnnClassifier::vote(std::vector<std::pair<double, int>>& dist) const {
  const std::size_t k = std::min(config_.k, dist.size());
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());
  double votes_pos = 0.0;
  double votes_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = config_.distance_weighted
                         ? 1.0 / (std::sqrt(dist[i].first) + 1e-12)
                         : 1.0;
    votes_total += w;
    if (dist[i].second == 1) votes_pos += w;
  }
  return votes_total > 0.0 ? votes_pos / votes_total : 0.0;
}

double KnnClassifier::predict_proba(std::span<const double> x) const {
  const bool packed = !train_bits_.empty();
  if (!packed && train_X_.empty()) throw std::logic_error("KNN: not fitted");
  const std::size_t d = packed ? train_bits_.cols() : train_X_.front().size();
  if (x.size() != d) {
    throw std::invalid_argument("KNN: query arity mismatch");
  }

  const std::size_t n = packed ? train_bits_.rows() : train_X_.size();
  std::vector<std::pair<double, int>> dist;
  dist.reserve(n);
  if (packed) {
    bool binary_query = true;
    for (const double v : x) {
      if (v != 0.0 && v != 1.0) {
        binary_query = false;
        break;
      }
    }
    if (binary_query) {
      // Binary query vs binary rows: squared Euclidean distance counts
      // mismatching coordinates by exact +1.0 steps, i.e. it IS the Hamming
      // distance (both sides integer-exact), so the (d2, label) pairs match
      // the dense loop bit for bit.
      const std::size_t words = train_bits_.words_per_row();
      if (ann_) {
        // Sub-linear path: the index returns the k nearest (exact
        // distances), which is all vote() consumes.
        hv::PackedHVs query(d, 1);
        std::uint64_t* qbits = query.row(0);
        for (std::size_t j = 0; j < d; ++j) {
          if (x[j] == 1.0) qbits[j / 64] |= 1ULL << (j % 64);
        }
        const auto lists = ann_->top_k(query, train_bits_.row_major(),
                                       std::min(config_.k, n));
        for (const hv::Neighbor& nb : lists.front()) {
          dist.emplace_back(static_cast<double>(nb.distance), train_y_[nb.index]);
        }
        return vote(dist);
      }
      std::vector<std::uint64_t> q(words, 0);
      for (std::size_t j = 0; j < d; ++j) {
        if (x[j] == 1.0) q[j / 64] |= 1ULL << (j % 64);
      }
      const simd::Kernels& kernels = simd::active();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t h = kernels.hamming(train_bits_.row_bits(i), q.data(), words);
        dist.emplace_back(static_cast<double>(h), train_y_[i]);
      }
    } else {
      // Arbitrary query: expand row bits to exact 0.0/1.0 on the fly and run
      // the dense accumulation in the same coordinate order.
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t* row = train_bits_.row_bits(i);
        double d2 = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
          const double value = (row[j / 64] >> (j % 64)) & 1u ? 1.0 : 0.0;
          const double diff = value - x[j];
          d2 += diff * diff;
        }
        dist.emplace_back(d2, train_y_[i]);
      }
    }
  } else {
    // Partial selection of the k smallest squared distances.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& row = train_X_[i];
      double d2 = 0.0;
      for (std::size_t j = 0; j < x.size(); ++j) {
        const double diff = row[j] - x[j];
        d2 += diff * diff;
      }
      dist.emplace_back(d2, train_y_[i]);
    }
  }
  return vote(dist);
}

std::vector<int> KnnClassifier::predict_all_bits(const hv::BitMatrix& X) const {
  if (train_bits_.empty()) {
    return Classifier::predict_all_bits(X);  // dense-fitted model: expand rows
  }
  if (X.cols() != train_bits_.cols()) {
    throw std::invalid_argument("KNN: query arity mismatch");
  }
  const std::size_t n = train_bits_.rows();
  const std::size_t words = train_bits_.words_per_row();
  const simd::Kernels& kernels = simd::active();
  std::vector<int> out;
  out.reserve(X.rows());
  std::vector<std::pair<double, int>> dist;
  if (ann_) {
    const auto lists = ann_->top_k(X.row_major(), train_bits_.row_major(),
                                   std::min(config_.k, n));
    for (const auto& list : lists) {
      dist.clear();
      for (const hv::Neighbor& nb : list) {
        dist.emplace_back(static_cast<double>(nb.distance), train_y_[nb.index]);
      }
      out.push_back(vote(dist) >= 0.5 ? 1 : 0);
    }
    return out;
  }
  for (std::size_t q = 0; q < X.rows(); ++q) {
    dist.clear();
    dist.reserve(n);
    const std::uint64_t* qbits = X.row_bits(q);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t h = kernels.hamming(train_bits_.row_bits(i), qbits, words);
      dist.emplace_back(static_cast<double>(h), train_y_[i]);
    }
    out.push_back(vote(dist) >= 0.5 ? 1 : 0);
  }
  return out;
}


void KnnClassifier::save_state(std::ostream& out) const {
  const bool packed = !train_bits_.empty();
  if (!packed && train_X_.empty()) {
    throw std::logic_error("KNN: save of unfitted model");
  }
  util::serde::Writer w(out);
  w.tag("ml.knn").tag("v1").nl();
  w.u64(config_.k).u64(config_.distance_weighted ? 1 : 0).nl();
  w.tag(packed ? "packed" : "dense").nl();
  if (packed) {
    write_bit_matrix(w, train_bits_);
  } else {
    write_matrix(w, train_X_);
  }
  w.vec_int(train_y_).nl();
}

void KnnClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.knn");
  ann_.reset();  // indexes are not persisted; re-enable after load if wanted
  r.expect("ml.knn", "model tag");
  r.expect("v1", "format version");
  config_.k = r.u64("k");
  if (config_.k == 0) throw r.error("k must be positive");
  config_.distance_weighted = r.u64("distance_weighted") != 0;
  const std::string store = r.token("training store kind");
  std::size_t n = 0;
  if (store == "packed") {
    train_bits_ = read_bit_matrix(r, "training bits");
    train_X_.clear();
    n = train_bits_.rows();
  } else if (store == "dense") {
    train_X_ = read_matrix(r, "training matrix");
    train_bits_ = hv::BitMatrix();
    n = train_X_.size();
  } else {
    throw r.error("unknown training store kind '" + store + "'");
  }
  train_y_ = r.vec_int("training labels", 1ULL << 24);
  if (n == 0) throw r.error("empty training set");
  if (train_y_.size() != n) throw r.error("label count mismatch");
  for (const int y : train_y_) {
    if (y != 0 && y != 1) throw r.error("labels must be 0/1");
  }
}

}  // namespace hdc::ml
