#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdc::ml {

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k == 0) throw std::invalid_argument("KNN: k must be positive");
}

void KnnClassifier::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  train_X_ = X;
  train_y_ = y;
}

double KnnClassifier::predict_proba(std::span<const double> x) const {
  if (train_X_.empty()) throw std::logic_error("KNN: not fitted");
  if (x.size() != train_X_.front().size()) {
    throw std::invalid_argument("KNN: query arity mismatch");
  }
  const std::size_t k = std::min(config_.k, train_X_.size());

  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_X_.size());
  for (std::size_t i = 0; i < train_X_.size(); ++i) {
    const auto& row = train_X_[i];
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double diff = row[j] - x[j];
      d2 += diff * diff;
    }
    dist.emplace_back(d2, train_y_[i]);
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  double votes_pos = 0.0;
  double votes_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = config_.distance_weighted
                         ? 1.0 / (std::sqrt(dist[i].first) + 1e-12)
                         : 1.0;
    votes_total += w;
    if (dist[i].second == 1) votes_pos += w;
  }
  return votes_total > 0.0 ? votes_pos / votes_total : 0.0;
}

}  // namespace hdc::ml
