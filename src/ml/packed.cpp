#include "ml/packed.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "hv/search.hpp"
#include "util/log.hpp"

namespace hdc::ml {

namespace {

bool initial_enabled() {
  const char* env = std::getenv("HDC_ML_PACKED");
  if (env == nullptr || *env == '\0') return true;
  const std::string_view value(env);
  if (value == "1" || value == "on" || value == "true") return true;
  if (value == "0" || value == "off" || value == "false") return false;
  util::log_fields(util::LogLevel::kWarn,
                   "HDC_ML_PACKED: unknown value, keeping packed path enabled",
                   {{"value", env}});
  return true;
}

std::atomic<bool>& packed_state() {
  static std::atomic<bool> state{initial_enabled()};
  return state;
}

}  // namespace

bool packed_enabled() noexcept {
  return packed_state().load(std::memory_order_relaxed);
}

void set_packed_enabled(bool enabled) noexcept {
  packed_state().store(enabled, std::memory_order_relaxed);
}

void reset_packed_enabled() noexcept {
  packed_state().store(initial_enabled(), std::memory_order_relaxed);
}

std::optional<hv::BitMatrix> try_pack(const Matrix& X) {
  if (X.empty() || X.front().empty()) return std::nullopt;
  const std::size_t d = X.front().size();
  for (const auto& row : X) {
    if (row.size() != d) return std::nullopt;
    for (const double v : row) {
      if (v != 0.0 && v != 1.0) return std::nullopt;
    }
  }
  hv::PackedHVs rows(d, X.size());
  for (std::size_t i = 0; i < X.size(); ++i) {
    std::uint64_t* row = rows.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      if (X[i][j] == 1.0) row[j >> 6] |= 1ULL << (j & 63);
    }
  }
  return hv::BitMatrix::from_rows(std::move(rows));
}

hv::RowMask label_mask(const Labels& y) {
  hv::RowMask mask = hv::RowMask::none(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 1) mask.set(i, true);
  }
  return mask;
}

void masked_pair_sum(const std::uint64_t* col, const std::uint64_t* mask,
                     std::size_t words, const double* a, const double* b,
                     double& sum_a, double& sum_b) {
  double sa = 0.0;
  double sb = 0.0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = col[w] & mask[w];
    while (bits != 0) {
      const std::size_t r =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      sa += a[r];
      sb += b[r];
      bits &= bits - 1;
    }
  }
  sum_a = sa;
  sum_b = sb;
}

void masked_pair_sum_not(const std::uint64_t* col, const std::uint64_t* mask,
                         std::size_t words, const double* a, const double* b,
                         double& sum_a, double& sum_b) {
  double sa = 0.0;
  double sb = 0.0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = ~col[w] & mask[w];
    while (bits != 0) {
      const std::size_t r =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      sa += a[r];
      sb += b[r];
      bits &= bits - 1;
    }
  }
  sum_a = sa;
  sum_b = sb;
}

}  // namespace hdc::ml
