// Gradient-boosted decision trees with second-order (Newton) boosting and
// exact greedy split search — the XGBoost algorithm family:
//   gain = 1/2 [ GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l) ] - gamma,
//   leaf weight = -G / (H + l),
// on the logistic loss (g = p - y, h = p (1 - p)).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace hdc::ml {

struct GbdtConfig {
  std::size_t n_rounds = 100;   // XGBoost default n_estimators
  double learning_rate = 0.3;   // XGBoost default eta
  std::size_t max_depth = 6;    // XGBoost default
  double lambda = 1.0;          // L2 on leaf weights
  double gamma = 0.0;           // min gain to split
  double min_child_weight = 1.0;
  double base_score = 0.5;      // initial probability
};

class GbdtClassifier final : public Classifier {
 public:
  explicit GbdtClassifier(GbdtConfig config = {});

  void fit(const Matrix& X, const Labels& y) override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] std::string name() const override { return "XGBoost"; }

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] std::size_t round_count() const noexcept { return trees_.size(); }

 private:
  struct Node {
    std::int32_t feature = -1;  // -1 = leaf
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  // leaf weight (log-odds contribution)
  };
  using Tree = std::vector<Node>;

  std::int32_t build_node(const ColumnTable& table, Tree& tree,
                          std::vector<std::uint32_t>& rows,
                          const std::vector<double>& grad,
                          const std::vector<double>& hess, std::size_t depth);
  [[nodiscard]] static double tree_output(const Tree& tree, std::span<const double> x);

  GbdtConfig config_;
  std::vector<Tree> trees_;
  double base_margin_ = 0.0;
  std::size_t n_features_ = 0;
};

}  // namespace hdc::ml
