// Model zoo: the nine classical models of the paper's Tables III-V, with the
// default hyper-parameters used throughout the benches. A factory keyed by
// the paper's model names lets benches and examples iterate the whole zoo.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace hdc::ml {

struct ZooEntry {
  std::string name;  // exactly as printed in the paper's tables
  std::function<std::unique_ptr<Classifier>()> make;
};

/// The nine models of Table III, in the paper's row order:
/// Random Forest, KNN, Decision Tree, XGBoost, CatBoost, SGD,
/// Logistic Regression, SVC, LGBM.
///
/// `budget` scales the iteration counts of the expensive boosted models so
/// the benches can trade fidelity for wall-clock (1.0 = library defaults).
[[nodiscard]] std::vector<ZooEntry> paper_model_zoo(double budget = 1.0);

/// Look up one zoo entry by (case-insensitive) name; throws if unknown.
[[nodiscard]] std::unique_ptr<Classifier> make_model(const std::string& name,
                                                     double budget = 1.0);

}  // namespace hdc::ml
