#include "ml/logistic.hpp"

#include <cmath>
#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hdc::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(LogisticConfig config) : config_(config) {
  if (config_.c <= 0.0) throw std::invalid_argument("LogisticRegression: C <= 0");
}

void LogisticRegression::fit(const Matrix& X, const Labels& y) {
  obs::Span span("ml.logistic.fit");
  validate_training_data(X, y);
  if (packed_enabled()) {
    if (const std::optional<hv::BitMatrix> bits = try_pack(X)) {
      fit_packed(*bits, y);
      return;
    }
  }
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    std::vector<double> sum(d, 0.0);
    std::vector<double> sum_sq(d, 0.0);
    for (const auto& row : X) {
      for (std::size_t j = 0; j < d; ++j) {
        sum[j] += row[j];
        sum_sq[j] += row[j] * row[j];
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      mean_[j] = sum[j] / static_cast<double>(n);
      const double var = sum_sq[j] / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }

  // Standardised copy once; the optimisation loop then touches contiguous
  // memory only.
  std::vector<double> Z(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      Z[i * d + j] = (X[i][j] - mean_[j]) * inv_std_[j];
    }
  }
  run_gradient_descent(Z, y, n, d);
}

void LogisticRegression::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  fit_packed(X, y);
}

void LogisticRegression::fit_packed(const hv::BitMatrix& X, const Labels& y) {
  obs::Span span("ml.logistic.fit_packed");
  const std::size_t n = X.rows();
  const std::size_t d = X.cols();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    // For 0/1 columns sum == sum_sq == popcount, and the dense row-order
    // accumulation of +1.0 terms is integer-exact, so these moments are
    // bit-identical to the dense pass.
    for (std::size_t j = 0; j < d; ++j) {
      const double sum = static_cast<double>(X.column_popcount(j));
      mean_[j] = sum / static_cast<double>(n);
      const double var = sum / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }

  // A 0/1 feature standardises to one of two constants per column; expand
  // the packed rows through that 2-entry table. Each Z value matches the
  // dense (x - mean) * inv_std result exactly, so the shared optimisation
  // loop below sees bit-identical inputs.
  std::vector<double> z0(d);
  std::vector<double> z1(d);
  for (std::size_t j = 0; j < d; ++j) {
    z0[j] = (0.0 - mean_[j]) * inv_std_[j];
    z1[j] = (1.0 - mean_[j]) * inv_std_[j];
  }
  std::vector<double> Z(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* row = X.row_bits(i);
    double* zi = Z.data() + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      zi[j] = (row[j / 64] >> (j % 64)) & 1u ? z1[j] : z0[j];
    }
  }
  run_gradient_descent(Z, y, n, d);
}

void LogisticRegression::fit_shards(const ShardSource& src,
                                    const ShardedFitOptions& /*options*/) {
  obs::Span span("ml.logistic.fit_shards");
  const std::size_t n = src.rows();
  const std::size_t d = src.cols();
  const std::span<const int> y = src.labels();
  if (n == 0 || d == 0) throw std::invalid_argument("fit: empty training set");
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("fit: labels must be 0/1");
    }
  }

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    // Integer popcounts merged across shards equal the whole-column
    // popcount exactly, so these are the same moments fit_packed computes.
    std::vector<std::size_t> pop(d, 0);
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const hv::BitMatrix& shard = src.shard(s);
      for (std::size_t j = 0; j < d; ++j) pop[j] += shard.column_popcount(j);
      note_hist_merge(d);
    }
    for (std::size_t j = 0; j < d; ++j) {
      const double sum = static_cast<double>(pop[j]);
      mean_[j] = sum / static_cast<double>(n);
      const double var = sum / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }

  std::vector<double> z0(d);
  std::vector<double> z1(d);
  for (std::size_t j = 0; j < d; ++j) {
    z0[j] = (0.0 - mean_[j]) * inv_std_[j];
    z1[j] = (1.0 - mean_[j]) * inv_std_[j];
  }

  // The loop below is run_gradient_descent verbatim, except each row's
  // standardised values are expanded on the fly from the resident shard
  // instead of a precomputed n*d matrix. The gradient accumulators are
  // carried across shard boundaries in ascending global row order, so the
  // float op sequence — and therefore every iterate — is bit-identical to
  // the unsharded pass regardless of where the boundaries fall.
  w_.assign(d, 0.0);
  b_ = 0.0;
  std::vector<double> vel_w(d, 0.0);
  double vel_b = 0.0;
  const double lambda = 1.0 / (config_.c * static_cast<double>(n));
  std::vector<double> grad(d);
  std::vector<double> zrow(d);

  std::size_t iters_run = 0;
  for (std::size_t iter = 0; iter < config_.max_iter; ++iter) {
    ++iters_run;
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const hv::BitMatrix& shard = src.shard(s);
      const std::size_t begin = src.shard_begin(s);
      for (std::size_t i = 0; i < shard.rows(); ++i) {
        const std::uint64_t* row = shard.row_bits(i);
        for (std::size_t j = 0; j < d; ++j) {
          zrow[j] = (row[j / 64] >> (j % 64)) & 1u ? z1[j] : z0[j];
        }
        double z = b_;
        for (std::size_t j = 0; j < d; ++j) z += w_[j] * zrow[j];
        const double err = sigmoid(z) - static_cast<double>(y[begin + i]);
        for (std::size_t j = 0; j < d; ++j) grad[j] += err * zrow[j];
        grad_b += err;
      }
    }
    double norm_sq = grad_b * grad_b;
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] * inv_n + lambda * w_[j];
      norm_sq += grad[j] * grad[j];
    }
    grad_b *= inv_n;
    if (norm_sq < config_.tol * config_.tol) break;

    for (std::size_t j = 0; j < d; ++j) {
      vel_w[j] = config_.momentum * vel_w[j] - config_.learning_rate * grad[j];
      w_[j] += vel_w[j];
    }
    vel_b = config_.momentum * vel_b - config_.learning_rate * grad_b;
    b_ += vel_b;
  }
  obs::counter("ml.fit.iterations").add(iters_run);
}

void LogisticRegression::run_gradient_descent(const std::vector<double>& Z,
                                              const Labels& y, std::size_t n,
                                              std::size_t d) {
  w_.assign(d, 0.0);
  b_ = 0.0;
  std::vector<double> vel_w(d, 0.0);
  double vel_b = 0.0;
  const double lambda = 1.0 / (config_.c * static_cast<double>(n));
  std::vector<double> grad(d);

  std::size_t iters_run = 0;
  for (std::size_t iter = 0; iter < config_.max_iter; ++iter) {
    ++iters_run;
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* zi = Z.data() + i * d;
      double z = b_;
      for (std::size_t j = 0; j < d; ++j) z += w_[j] * zi[j];
      const double err = sigmoid(z) - static_cast<double>(y[i]);
      for (std::size_t j = 0; j < d; ++j) grad[j] += err * zi[j];
      grad_b += err;
    }
    double norm_sq = grad_b * grad_b;
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] * inv_n + lambda * w_[j];
      norm_sq += grad[j] * grad[j];
    }
    grad_b *= inv_n;
    if (norm_sq < config_.tol * config_.tol) break;

    for (std::size_t j = 0; j < d; ++j) {
      vel_w[j] = config_.momentum * vel_w[j] - config_.learning_rate * grad[j];
      w_[j] += vel_w[j];
    }
    vel_b = config_.momentum * vel_b - config_.learning_rate * grad_b;
    b_ += vel_b;
  }
  obs::counter("ml.fit.iterations").add(iters_run);
}

double LogisticRegression::predict_proba(std::span<const double> x) const {
  if (w_.empty()) throw std::logic_error("LogisticRegression: not fitted");
  if (x.size() != w_.size()) {
    throw std::invalid_argument("LogisticRegression: query arity mismatch");
  }
  double z = b_;
  for (std::size_t j = 0; j < x.size(); ++j) {
    z += w_[j] * (x[j] - mean_[j]) * inv_std_[j];
  }
  return sigmoid(z);
}

void LogisticRegression::save_state(std::ostream& out) const {
  if (w_.empty()) throw std::logic_error("LogisticRegression: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.logistic").tag("v1").nl();
  w.f64(config_.c).u64(config_.max_iter).f64(config_.learning_rate);
  w.f64(config_.momentum).f64(config_.tol).u64(config_.standardize ? 1 : 0).nl();
  w.vec_f64(w_).nl();
  w.f64(b_).nl();
  w.vec_f64(mean_).nl();
  w.vec_f64(inv_std_).nl();
}

void LogisticRegression::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.logistic");
  r.expect("ml.logistic", "model tag");
  r.expect("v1", "format version");
  config_.c = r.f64("c");
  config_.max_iter = r.u64("max_iter");
  config_.learning_rate = r.f64("learning_rate");
  config_.momentum = r.f64("momentum");
  config_.tol = r.f64("tol");
  config_.standardize = r.u64("standardize") != 0;
  w_ = r.vec_f64("weights", 1ULL << 24);
  b_ = r.f64("bias");
  mean_ = r.vec_f64("mean", 1ULL << 24);
  inv_std_ = r.vec_f64("inv_std", 1ULL << 24);
  if (w_.empty()) throw r.error("empty weight vector");
  if (mean_.size() != w_.size() || inv_std_.size() != w_.size()) {
    throw r.error("mean/inv_std arity mismatch");
  }
}

}  // namespace hdc::ml
