#include "ml/logistic.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hdc::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LogisticRegression::LogisticRegression(LogisticConfig config) : config_(config) {
  if (config_.c <= 0.0) throw std::invalid_argument("LogisticRegression: C <= 0");
}

void LogisticRegression::fit(const Matrix& X, const Labels& y) {
  obs::Span span("ml.logistic.fit");
  validate_training_data(X, y);
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  if (config_.standardize) {
    std::vector<double> sum(d, 0.0);
    std::vector<double> sum_sq(d, 0.0);
    for (const auto& row : X) {
      for (std::size_t j = 0; j < d; ++j) {
        sum[j] += row[j];
        sum_sq[j] += row[j] * row[j];
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      mean_[j] = sum[j] / static_cast<double>(n);
      const double var = sum_sq[j] / static_cast<double>(n) - mean_[j] * mean_[j];
      inv_std_[j] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }

  // Standardised copy once; the optimisation loop then touches contiguous
  // memory only.
  std::vector<double> Z(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      Z[i * d + j] = (X[i][j] - mean_[j]) * inv_std_[j];
    }
  }

  w_.assign(d, 0.0);
  b_ = 0.0;
  std::vector<double> vel_w(d, 0.0);
  double vel_b = 0.0;
  const double lambda = 1.0 / (config_.c * static_cast<double>(n));
  std::vector<double> grad(d);

  std::size_t iters_run = 0;
  for (std::size_t iter = 0; iter < config_.max_iter; ++iter) {
    ++iters_run;
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* zi = Z.data() + i * d;
      double z = b_;
      for (std::size_t j = 0; j < d; ++j) z += w_[j] * zi[j];
      const double err = sigmoid(z) - static_cast<double>(y[i]);
      for (std::size_t j = 0; j < d; ++j) grad[j] += err * zi[j];
      grad_b += err;
    }
    double norm_sq = grad_b * grad_b;
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] * inv_n + lambda * w_[j];
      norm_sq += grad[j] * grad[j];
    }
    grad_b *= inv_n;
    if (norm_sq < config_.tol * config_.tol) break;

    for (std::size_t j = 0; j < d; ++j) {
      vel_w[j] = config_.momentum * vel_w[j] - config_.learning_rate * grad[j];
      w_[j] += vel_w[j];
    }
    vel_b = config_.momentum * vel_b - config_.learning_rate * grad_b;
    b_ += vel_b;
  }
  obs::counter("ml.fit.iterations").add(iters_run);
}

double LogisticRegression::predict_proba(std::span<const double> x) const {
  if (w_.empty()) throw std::logic_error("LogisticRegression: not fitted");
  if (x.size() != w_.size()) {
    throw std::invalid_argument("LogisticRegression: query arity mismatch");
  }
  double z = b_;
  for (std::size_t j = 0; j < x.size(); ++j) {
    z += w_[j] * (x[j] - mean_[j]) * inv_std_[j];
  }
  return sigmoid(z);
}

}  // namespace hdc::ml
