// Common interface for the from-scratch classical ML substrate.
//
// The paper feeds either raw features (8 / 16 columns) or 10,000-bit
// hypervectors (as 0/1 columns) into scikit-learn style models. Every model
// here therefore consumes a dense row-major double matrix and binary labels.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/serde.hpp"

namespace hdc::hv {
class BitMatrix;
}

namespace hdc::ml {

/// Row-major feature matrix.
using Matrix = std::vector<std::vector<double>>;

using Labels = std::vector<int>;

class ShardSource;  // ml/sharded.hpp — shard-at-a-time training input

/// Tuning for fit_shards(). Never affects which rows exist — only how
/// models that need a resident subset or a batch schedule choose it, and
/// every choice is a pure function of (rows, option values), so fitted
/// results stay invariant to the shard count.
struct ShardedFitOptions {
  /// Row cap for models that must materialize a training subset (SVC's
  /// kernel matrix, the default fallback). Chosen by deterministic striding.
  std::size_t subsample_cap = 2048;
  /// Mini-batch length for SgdClassifier's fixed-schedule path. Batch
  /// boundaries fall at global row multiples, never at shard boundaries.
  std::size_t batch_rows = 256;
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on X (n rows, equal arity) with labels in {0, 1}.
  virtual void fit(const Matrix& X, const Labels& y) = 0;

  /// P(y = 1 | x). Must be in [0, 1]. Only valid after fit().
  [[nodiscard]] virtual double predict_proba(std::span<const double> x) const = 0;

  /// Hard 0/1 prediction (threshold 0.5 unless the model overrides it).
  [[nodiscard]] virtual int predict(std::span<const double> x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  /// Human-readable model family name (matches the paper's tables).
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::vector<int> predict_all(const Matrix& X) const {
    std::vector<int> out;
    out.reserve(X.size());
    for (const auto& row : X) out.push_back(predict(row));
    return out;
  }

  [[nodiscard]] double accuracy(const Matrix& X, const Labels& y) const {
    if (X.empty()) return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < X.size(); ++i) {
      if (predict(X[i]) == y[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(X.size());
  }

  /// Train on a bit-packed 0/1 design matrix. Models with a packed fast
  /// path override this; the default expands rows to doubles and defers to
  /// fit(), so every model accepts packed input. Results are bit-identical
  /// to the dense path either way.
  virtual void fit_bits(const hv::BitMatrix& X, const Labels& y);

  /// Hard predictions over every row of a packed matrix. Packed-aware
  /// models answer from the bits directly; others expand row by row.
  [[nodiscard]] virtual std::vector<int> predict_all_bits(const hv::BitMatrix& X) const;

  [[nodiscard]] double accuracy_bits(const hv::BitMatrix& X, const Labels& y) const;

  /// Train shard-at-a-time (ml/sharded.hpp). The contract is shard-count
  /// invariance: for a fixed row sequence, fitting through 1, 4 or 8 shards
  /// produces bit-identical parameters and predictions. Models with exact
  /// merge paths (integer popcount histograms, carried accumulators)
  /// override this; the default gathers a deterministic strided subsample
  /// of options.subsample_cap rows and defers to fit_bits() — still
  /// shard-count invariant, but subsampled.
  virtual void fit_shards(const ShardSource& src,
                          const ShardedFitOptions& options = {});

  /// Hard predictions over a sharded source, one shard resident at a time
  /// (the concatenation of per-shard predict_all_bits).
  [[nodiscard]] std::vector<int> predict_all_shards(const ShardSource& src) const;

  /// Serialize everything predict_proba() needs — hyper-parameters plus the
  /// fitted state — as a util::serde token stream, restorable bit-identically
  /// by load_state() on a model of the same concrete type (core/bundle
  /// constructs it through ml::make_model). The default throws: every zoo
  /// model overrides both, anything else is not bundle-persistable.
  virtual void save_state(std::ostream& out) const;
  /// Inverse of save_state(). Throws std::runtime_error (with a field-level
  /// diagnostic) on malformed input; the model is left unusable, never in a
  /// silently wrong state.
  virtual void load_state(std::istream& in);
};

/// Shared helpers for the save_state/load_state implementations.
void write_matrix(util::serde::Writer& out, const Matrix& X);
[[nodiscard]] Matrix read_matrix(util::serde::Reader& in, const char* what);
void write_bit_matrix(util::serde::Writer& out, const hv::BitMatrix& X);
[[nodiscard]] hv::BitMatrix read_bit_matrix(util::serde::Reader& in, const char* what);

/// Validated view of training inputs plus a column-major copy used by the
/// tree-based models (cache-friendly split searches).
class ColumnTable {
 public:
  ColumnTable() = default;
  ColumnTable(const Matrix& X, const Labels& y);

  [[nodiscard]] std::size_t n_rows() const noexcept { return n_rows_; }
  [[nodiscard]] std::size_t n_cols() const noexcept { return n_cols_; }

  [[nodiscard]] std::span<const double> column(std::size_t j) const {
    return {data_.data() + j * n_rows_, n_rows_};
  }
  [[nodiscard]] double value(std::size_t row, std::size_t col) const {
    return data_[col * n_rows_ + row];
  }
  [[nodiscard]] int label(std::size_t row) const { return labels_[row]; }
  [[nodiscard]] const Labels& labels() const noexcept { return labels_; }

  /// True if every value in column j is 0 or 1 (hypervector columns); tree
  /// split search then skips sorting entirely.
  [[nodiscard]] bool column_is_binary(std::size_t j) const { return binary_[j]; }

 private:
  std::size_t n_rows_ = 0;
  std::size_t n_cols_ = 0;
  std::vector<double> data_;  // column-major
  Labels labels_;
  std::vector<bool> binary_;
};

/// Throws std::invalid_argument on ragged X, empty X, arity mismatch with a
/// fitted dimension, or labels outside {0,1}.
void validate_training_data(const Matrix& X, const Labels& y);

/// Packed-path analogue: throws on empty X, row/label count mismatch, or
/// labels outside {0,1}.
void validate_training_bits(const hv::BitMatrix& X, const Labels& y);

}  // namespace hdc::ml
