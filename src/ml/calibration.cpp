#include "ml/calibration.hpp"

#include <cmath>
#include <stdexcept>

namespace hdc::ml {

void PlattCalibrator::fit(const std::vector<double>& scores,
                          const std::vector<int>& labels, std::size_t max_iter) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("PlattCalibrator: bad input");
  }
  std::size_t n_pos = 0;
  std::size_t n_neg = 0;
  for (const int y : labels) {
    if (y != 0 && y != 1) {
      throw std::invalid_argument("PlattCalibrator: labels must be 0/1");
    }
    (y == 1 ? n_pos : n_neg)++;
  }
  if (n_pos == 0 || n_neg == 0) {
    throw std::invalid_argument("PlattCalibrator: need both classes");
  }

  // Platt's smoothed targets.
  const double t_pos = (static_cast<double>(n_pos) + 1.0) /
                       (static_cast<double>(n_pos) + 2.0);
  const double t_neg = 1.0 / (static_cast<double>(n_neg) + 2.0);

  double a = 0.0;
  double b = std::log((static_cast<double>(n_neg) + 1.0) /
                      (static_cast<double>(n_pos) + 1.0));
  const std::size_t n = scores.size();

  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    // Gradient and Hessian of the negative log-likelihood in (a, b).
    double g_a = 0.0;
    double g_b = 0.0;
    double h_aa = 1e-12;
    double h_ab = 0.0;
    double h_bb = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = labels[i] == 1 ? t_pos : t_neg;
      const double z = a * scores[i] + b;
      const double p = 1.0 / (1.0 + std::exp(z));  // P(y=1), Platt's convention
      const double d = t - p;                      // dNLL/dz
      g_a += d * scores[i];
      g_b += d;
      const double w = p * (1.0 - p);
      h_aa += w * scores[i] * scores[i];
      h_ab += w * scores[i];
      h_bb += w;
    }
    // Solve the 2x2 Newton system.
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::abs(det) < 1e-18) break;
    const double da = (h_bb * g_a - h_ab * g_b) / det;
    const double db = (h_aa * g_b - h_ab * g_a) / det;
    a -= da;
    b -= db;
    if (std::abs(da) < 1e-10 && std::abs(db) < 1e-10) break;
  }

  // Convert from Platt's convention P(y=1) = 1/(1+exp(a*s+b)) to the
  // conventional sigmoid(slope*s + intercept).
  a_ = -a;
  b_ = -b;
  fitted_ = true;
}

double PlattCalibrator::transform(double score) const {
  if (!fitted_) throw std::logic_error("PlattCalibrator: not fitted");
  return 1.0 / (1.0 + std::exp(-(a_ * score + b_)));
}

std::vector<double> PlattCalibrator::transform(
    const std::vector<double>& scores) const {
  std::vector<double> out;
  out.reserve(scores.size());
  for (const double s : scores) out.push_back(transform(s));
  return out;
}

}  // namespace hdc::ml
