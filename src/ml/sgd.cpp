#include "ml/sgd.hpp"

#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace hdc::ml {

SgdClassifier::SgdClassifier(SgdConfig config) : config_(config) {
  if (config_.alpha <= 0.0) throw std::invalid_argument("SGD: alpha <= 0");
  if (config_.epochs == 0) throw std::invalid_argument("SGD: zero epochs");
}

void SgdClassifier::fit(const Matrix& X, const Labels& y) {
  obs::Span span("ml.sgd.fit");
  validate_training_data(X, y);
  if (packed_enabled()) {
    if (const std::optional<hv::BitMatrix> bits = try_pack(X)) {
      fit_packed(*bits, y);
      return;
    }
  }
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();
  w_.assign(d, 0.0);
  b_ = 0.0;

  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      // Inverse-scaling learning rate (sklearn's default 'optimal' schedule
      // behaves like eta0 / (alpha * t) with a burn-in; this is the simpler
      // invscaling form with the same 1/t character).
      const double eta = config_.eta0 / (1.0 + config_.alpha * config_.eta0 *
                                                   static_cast<double>(t));
      const auto& xi = X[i];
      const double target = y[i] == 1 ? 1.0 : -1.0;
      double z = b_;
      for (std::size_t j = 0; j < d; ++j) z += w_[j] * xi[j];

      // dloss/dz for the chosen loss (with margin for hinge).
      double g = 0.0;
      if (config_.loss == SgdLoss::kHinge) {
        if (target * z < 1.0) g = -target;
      } else {
        g = 1.0 / (1.0 + std::exp(-z)) - (target > 0.0 ? 1.0 : 0.0);
      }

      // L2 shrink + (sub)gradient step.
      const double shrink = 1.0 - eta * config_.alpha;
      for (std::size_t j = 0; j < d; ++j) w_[j] *= shrink;
      if (g != 0.0) {
        for (std::size_t j = 0; j < d; ++j) w_[j] -= eta * g * xi[j];
        b_ -= eta * g;
      }
    }
  }
  obs::counter("ml.fit.epochs").add(config_.epochs);
}

void SgdClassifier::fit_bits(const hv::BitMatrix& X, const Labels& y) {
  if (!packed_enabled()) {
    Classifier::fit_bits(X, y);  // kill switch covers fit_bits callers too
    return;
  }
  validate_training_bits(X, y);
  fit_packed(X, y);
}

void SgdClassifier::fit_packed(const hv::BitMatrix& X, const Labels& y) {
  obs::Span span("ml.sgd.fit_packed");
  const std::size_t n = X.rows();
  const std::size_t d = X.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;

  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const std::size_t words = X.words_per_row();
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      const double eta = config_.eta0 / (1.0 + config_.alpha * config_.eta0 *
                                                   static_cast<double>(t));
      const std::uint64_t* xi = X.row_bits(i);
      const double target = y[i] == 1 ? 1.0 : -1.0;
      // Zero features contribute exact identity terms (w * 0.0 adds ±0.0,
      // and no weight is ever -0.0 under round-to-nearest), so visiting
      // only the set bits in ascending order reproduces the dense
      // accumulation bit for bit.
      double z = b_;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = xi[w];
        while (bits != 0) {
          z += w_[w * 64 + static_cast<std::size_t>(std::countr_zero(bits))];
          bits &= bits - 1;
        }
      }

      double g = 0.0;
      if (config_.loss == SgdLoss::kHinge) {
        if (target * z < 1.0) g = -target;
      } else {
        g = 1.0 / (1.0 + std::exp(-z)) - (target > 0.0 ? 1.0 : 0.0);
      }

      // The L2 shrink touches every coordinate, packed or not.
      const double shrink = 1.0 - eta * config_.alpha;
      for (std::size_t j = 0; j < d; ++j) w_[j] *= shrink;
      if (g != 0.0) {
        const double step = eta * g;  // dense computes (eta*g)*x[j]; x[j]==1 here
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = xi[w];
          while (bits != 0) {
            w_[w * 64 + static_cast<std::size_t>(std::countr_zero(bits))] -= step;
            bits &= bits - 1;
          }
        }
        b_ -= eta * g;
      }
    }
  }
  obs::counter("ml.fit.epochs").add(config_.epochs);
}

void SgdClassifier::fit_shards(const ShardSource& src,
                               const ShardedFitOptions& options) {
  obs::Span span("ml.sgd.fit_shards");
  const std::size_t n = src.rows();
  const std::size_t d = src.cols();
  const std::span<const int> y = src.labels();
  if (n == 0 || d == 0) throw std::invalid_argument("fit: empty training set");
  for (const int label : y) {
    if (label != 0 && label != 1) {
      throw std::invalid_argument("fit: labels must be 0/1");
    }
  }
  const std::size_t m = options.batch_rows == 0 ? 1 : options.batch_rows;
  w_.assign(d, 0.0);
  b_ = 0.0;

  // Mini-batch state, carried across shard boundaries: a batch closes when
  // the *global* row index hits a multiple of m (or the epoch ends), so the
  // batch schedule is a pure function of (n, m) and never of the sharding.
  std::vector<double> acc(d, 0.0);
  double acc_b = 0.0;
  std::size_t batch_count = 0;
  std::size_t t = 0;  // batch counter driving the eta schedule

  const auto apply_batch = [&]() {
    ++t;
    const double eta = config_.eta0 / (1.0 + config_.alpha * config_.eta0 *
                                                 static_cast<double>(t));
    const double shrink = 1.0 - eta * config_.alpha;
    const double scale = eta / static_cast<double>(batch_count);
    for (std::size_t j = 0; j < d; ++j) w_[j] = w_[j] * shrink - scale * acc[j];
    b_ -= scale * acc_b;
    std::fill(acc.begin(), acc.end(), 0.0);
    acc_b = 0.0;
    batch_count = 0;
  };

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const hv::BitMatrix& shard = src.shard(s);
      const std::size_t begin = src.shard_begin(s);
      const std::size_t words = shard.words_per_row();
      for (std::size_t i = 0; i < shard.rows(); ++i) {
        const std::uint64_t* xi = shard.row_bits(i);
        const double target = y[begin + i] == 1 ? 1.0 : -1.0;
        double z = b_;
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = xi[w];
          while (bits != 0) {
            z += w_[w * 64 + static_cast<std::size_t>(std::countr_zero(bits))];
            bits &= bits - 1;
          }
        }

        double g = 0.0;
        if (config_.loss == SgdLoss::kHinge) {
          if (target * z < 1.0) g = -target;
        } else {
          g = 1.0 / (1.0 + std::exp(-z)) - (target > 0.0 ? 1.0 : 0.0);
        }
        if (g != 0.0) {
          for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = xi[w];
            while (bits != 0) {
              acc[w * 64 + static_cast<std::size_t>(std::countr_zero(bits))] += g;
              bits &= bits - 1;
            }
          }
          acc_b += g;
        }
        ++batch_count;
        if ((begin + i + 1) % m == 0) apply_batch();
      }
    }
    if (batch_count > 0) apply_batch();  // epoch tail; same rows every epoch
  }
  obs::counter("ml.fit.epochs").add(config_.epochs);
}

double SgdClassifier::decision(std::span<const double> x) const {
  if (w_.empty()) throw std::logic_error("SGD: not fitted");
  if (x.size() != w_.size()) throw std::invalid_argument("SGD: query arity mismatch");
  double z = b_;
  for (std::size_t j = 0; j < x.size(); ++j) z += w_[j] * x[j];
  return z;
}

double SgdClassifier::predict_proba(std::span<const double> x) const {
  // Squash the margin; for the hinge loss this is a calibration-free
  // monotone map which is all predict() needs.
  return 1.0 / (1.0 + std::exp(-decision(x)));
}


void SgdClassifier::save_state(std::ostream& out) const {
  if (w_.empty()) throw std::logic_error("SGD: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.sgd").tag("v1").nl();
  w.u64(config_.loss == SgdLoss::kHinge ? 0 : 1).f64(config_.alpha);
  w.u64(config_.epochs).f64(config_.eta0).u64(config_.seed).nl();
  w.vec_f64(w_).nl();
  w.f64(b_).nl();
}

void SgdClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.sgd");
  r.expect("ml.sgd", "model tag");
  r.expect("v1", "format version");
  const std::uint64_t loss = r.u64("loss");
  if (loss > 1) throw r.error("unknown loss id " + std::to_string(loss));
  config_.loss = loss == 0 ? SgdLoss::kHinge : SgdLoss::kLog;
  config_.alpha = r.f64("alpha");
  config_.epochs = r.u64("epochs");
  config_.eta0 = r.f64("eta0");
  config_.seed = r.u64("seed");
  w_ = r.vec_f64("weights", 1ULL << 24);
  b_ = r.f64("bias");
  if (w_.empty()) throw r.error("empty weight vector");
}

}  // namespace hdc::ml
