#include "ml/sgd.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace hdc::ml {

SgdClassifier::SgdClassifier(SgdConfig config) : config_(config) {
  if (config_.alpha <= 0.0) throw std::invalid_argument("SGD: alpha <= 0");
  if (config_.epochs == 0) throw std::invalid_argument("SGD: zero epochs");
}

void SgdClassifier::fit(const Matrix& X, const Labels& y) {
  obs::Span span("ml.sgd.fit");
  validate_training_data(X, y);
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();
  w_.assign(d, 0.0);
  b_ = 0.0;

  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      // Inverse-scaling learning rate (sklearn's default 'optimal' schedule
      // behaves like eta0 / (alpha * t) with a burn-in; this is the simpler
      // invscaling form with the same 1/t character).
      const double eta = config_.eta0 / (1.0 + config_.alpha * config_.eta0 *
                                                   static_cast<double>(t));
      const auto& xi = X[i];
      const double target = y[i] == 1 ? 1.0 : -1.0;
      double z = b_;
      for (std::size_t j = 0; j < d; ++j) z += w_[j] * xi[j];

      // dloss/dz for the chosen loss (with margin for hinge).
      double g = 0.0;
      if (config_.loss == SgdLoss::kHinge) {
        if (target * z < 1.0) g = -target;
      } else {
        g = 1.0 / (1.0 + std::exp(-z)) - (target > 0.0 ? 1.0 : 0.0);
      }

      // L2 shrink + (sub)gradient step.
      const double shrink = 1.0 - eta * config_.alpha;
      for (std::size_t j = 0; j < d; ++j) w_[j] *= shrink;
      if (g != 0.0) {
        for (std::size_t j = 0; j < d; ++j) w_[j] -= eta * g * xi[j];
        b_ -= eta * g;
      }
    }
  }
  obs::counter("ml.fit.epochs").add(config_.epochs);
}

double SgdClassifier::decision(std::span<const double> x) const {
  if (w_.empty()) throw std::logic_error("SGD: not fitted");
  if (x.size() != w_.size()) throw std::invalid_argument("SGD: query arity mismatch");
  double z = b_;
  for (std::size_t j = 0; j < x.size(); ++j) z += w_[j] * x[j];
  return z;
}

double SgdClassifier::predict_proba(std::span<const double> x) const {
  // Squash the margin; for the hinge loss this is a calibration-free
  // monotone map which is all predict() needs.
  return 1.0 / (1.0 + std::exp(-decision(x)));
}

}  // namespace hdc::ml
