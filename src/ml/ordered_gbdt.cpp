#include "ml/ordered_gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdc::ml {

namespace {
double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

OrderedGbdtClassifier::OrderedGbdtClassifier(OrderedGbdtConfig config)
    : config_(config) {
  if (config_.n_rounds == 0) throw std::invalid_argument("CatBoost: zero rounds");
  if (config_.depth == 0 || config_.depth > 16) {
    throw std::invalid_argument("CatBoost: depth must be in [1, 16]");
  }
  if (config_.max_bins < 2 || config_.max_bins > 255) {
    throw std::invalid_argument("CatBoost: max_bins must be in [2, 255]");
  }
}

void OrderedGbdtClassifier::fit(const Matrix& X, const Labels& y) {
  validate_training_data(X, y);
  const std::size_t n = X.size();
  const std::size_t d = X.front().size();
  n_features_ = d;

  // Quantile borders per feature.
  bin_edges_.assign(d, {});
  std::vector<double> column;
  for (std::size_t j = 0; j < d; ++j) {
    column.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) column[i] = X[i][j];
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());
    std::vector<double>& edges = bin_edges_[j];
    if (column.size() <= config_.max_bins) {
      edges.assign(column.begin(), column.end());
      if (!edges.empty()) edges.pop_back();
    } else {
      for (std::size_t b = 1; b < config_.max_bins; ++b) {
        const std::size_t rank = b * column.size() / config_.max_bins;
        edges.push_back(column[rank - 1]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
  }
  std::size_t max_bin_count = 2;
  std::vector<std::uint8_t> bins(n * d);
  for (std::size_t j = 0; j < d; ++j) {
    const std::vector<double>& edges = bin_edges_[j];
    max_bin_count = std::max(max_bin_count, edges.size() + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = std::lower_bound(edges.begin(), edges.end(), X[i][j]);
      bins[i * d + j] = static_cast<std::uint8_t>(it - edges.begin());
    }
  }

  std::vector<double> margin(n, 0.0);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  std::vector<std::uint32_t> leaf_of(n);
  trees_.clear();
  trees_.reserve(config_.n_rounds);

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-16, p * (1.0 - p));
    }

    ObliviousTree tree;
    std::fill(leaf_of.begin(), leaf_of.end(), 0u);
    std::size_t n_leaves = 1;

    for (std::size_t level = 0; level < config_.depth; ++level) {
      // Pick the single (feature, border) that maximises the summed Newton
      // gain across all current leaves. A zero-gain level is still accepted
      // when a non-trivial border exists (CatBoost breaks such ties with
      // score noise; without this, a symmetric XOR never grows level 0).
      double best_gain = 1e-12;
      std::int32_t best_feature = -1;
      std::size_t best_bin = 0;
      std::int32_t fallback_feature = -1;
      std::size_t fallback_bin = 0;
      double fallback_gain = -1.0;

      // Histograms for one feature at a time: [leaf][bin] -> (G, H).
      std::vector<double> hg(n_leaves * max_bin_count);
      std::vector<double> hh(n_leaves * max_bin_count);
      std::vector<double> leaf_g(n_leaves, 0.0);
      std::vector<double> leaf_h(n_leaves, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        leaf_g[leaf_of[i]] += grad[i];
        leaf_h[leaf_of[i]] += hess[i];
      }
      double parent_score = 0.0;
      for (std::size_t l = 0; l < n_leaves; ++l) {
        parent_score += leaf_g[l] * leaf_g[l] / (leaf_h[l] + config_.lambda);
      }

      std::vector<std::uint32_t> hc;
      for (std::size_t j = 0; j < d; ++j) {
        const std::size_t n_bins = bin_edges_[j].size() + 1;
        if (n_bins < 2) continue;
        std::fill(hg.begin(), hg.begin() + static_cast<std::ptrdiff_t>(n_leaves * n_bins),
                  0.0);
        std::fill(hh.begin(), hh.begin() + static_cast<std::ptrdiff_t>(n_leaves * n_bins),
                  0.0);
        hc.assign(n_bins, 0);
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t slot = leaf_of[i] * n_bins + bins[i * d + j];
          hg[slot] += grad[i];
          hh[slot] += hess[i];
          ++hc[bins[i * d + j]];
        }
        // Convert each leaf's histogram to prefix sums, then score borders.
        for (std::size_t l = 0; l < n_leaves; ++l) {
          for (std::size_t b = 1; b < n_bins; ++b) {
            hg[l * n_bins + b] += hg[l * n_bins + b - 1];
            hh[l * n_bins + b] += hh[l * n_bins + b - 1];
          }
        }
        std::uint32_t count_left = 0;
        for (std::size_t b = 0; b + 1 < n_bins; ++b) {
          count_left += hc[b];
          double score = 0.0;
          for (std::size_t l = 0; l < n_leaves; ++l) {
            const double gl = hg[l * n_bins + b];
            const double hl = hh[l * n_bins + b];
            const double hr = leaf_h[l] - hl;
            const double gr = leaf_g[l] - gl;
            score += gl * gl / (hl + config_.lambda) + gr * gr / (hr + config_.lambda);
          }
          const double gain = 0.5 * (score - parent_score);
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<std::int32_t>(j);
            best_bin = b;
          }
          const bool non_trivial = count_left > 0 && count_left < n;
          if (non_trivial && gain > fallback_gain) {
            fallback_gain = gain;
            fallback_feature = static_cast<std::int32_t>(j);
            fallback_bin = b;
          }
        }
      }

      if (best_feature < 0 && fallback_feature >= 0 && fallback_gain > -1e-6) {
        best_feature = fallback_feature;
        best_bin = fallback_bin;
      }
      if (best_feature < 0) break;  // nothing splits the data; stop growing

      tree.features.push_back(best_feature);
      tree.thresholds.push_back(bin_edges_[static_cast<std::size_t>(best_feature)][best_bin]);
      for (std::size_t i = 0; i < n; ++i) {
        const bool right =
            bins[i * d + static_cast<std::size_t>(best_feature)] > best_bin;
        leaf_of[i] = 2 * leaf_of[i] + (right ? 1u : 0u);
      }
      n_leaves *= 2;
    }

    // Leaf values from the final partition.
    tree.leaf_values.assign(std::size_t{1} << tree.features.size(), 0.0);
    {
      std::vector<double> leaf_g(tree.leaf_values.size(), 0.0);
      std::vector<double> leaf_h(tree.leaf_values.size(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        leaf_g[leaf_of[i]] += grad[i];
        leaf_h[leaf_of[i]] += hess[i];
      }
      for (std::size_t l = 0; l < tree.leaf_values.size(); ++l) {
        tree.leaf_values[l] = -leaf_g[l] / (leaf_h[l] + config_.lambda);
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree.leaf_values[leaf_of[i]];
    }
    trees_.push_back(std::move(tree));
  }
}

double OrderedGbdtClassifier::tree_output(const ObliviousTree& tree,
                                          std::span<const double> x) {
  std::size_t leaf = 0;
  for (std::size_t level = 0; level < tree.features.size(); ++level) {
    const bool right =
        x[static_cast<std::size_t>(tree.features[level])] > tree.thresholds[level];
    leaf = 2 * leaf + (right ? 1u : 0u);
  }
  return tree.leaf_values[leaf];
}

double OrderedGbdtClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("CatBoost: not fitted");
  if (x.size() != n_features_) {
    throw std::invalid_argument("CatBoost: query arity mismatch");
  }
  double margin = 0.0;
  for (const ObliviousTree& tree : trees_) {
    margin += config_.learning_rate * tree_output(tree, x);
  }
  return sigmoid(margin);
}


void OrderedGbdtClassifier::save_state(std::ostream& out) const {
  if (trees_.empty()) throw std::logic_error("OrderedGbdt: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("ml.ordered_gbdt").tag("v1").nl();
  w.u64(config_.n_rounds).f64(config_.learning_rate).u64(config_.depth);
  w.f64(config_.lambda).u64(config_.max_bins).f64(config_.min_child_weight).nl();
  w.u64(n_features_).nl();
  for (const std::vector<double>& edges : bin_edges_) w.vec_f64(edges).nl();
  w.u64(trees_.size()).nl();
  for (const ObliviousTree& tree : trees_) {
    w.u64(tree.features.size()).nl();
    for (const std::int32_t f : tree.features) w.i64(f);
    w.nl();
    w.vec_f64(tree.thresholds).nl();
    w.vec_f64(tree.leaf_values).nl();
  }
}

void OrderedGbdtClassifier::load_state(std::istream& in) {
  util::serde::Reader r(in, "load ml.ordered_gbdt");
  r.expect("ml.ordered_gbdt", "model tag");
  r.expect("v1", "format version");
  config_.n_rounds = r.u64("n_rounds");
  config_.learning_rate = r.f64("learning_rate");
  config_.depth = r.u64("depth");
  config_.lambda = r.f64("lambda");
  config_.max_bins = r.u64("max_bins");
  config_.min_child_weight = r.f64("min_child_weight");
  n_features_ = r.count("n_features", 1ULL << 24);
  if (n_features_ == 0) throw r.error("zero features");
  bin_edges_.assign(n_features_, {});
  for (std::vector<double>& edges : bin_edges_) {
    edges = r.vec_f64("bin edges", 1ULL << 20);
  }
  const std::size_t rounds = r.count("round count", 1ULL << 20);
  if (rounds == 0) throw r.error("empty ensemble");
  trees_.assign(rounds, ObliviousTree{});
  for (ObliviousTree& tree : trees_) {
    const std::size_t levels = r.count("level count", 64);
    tree.features.assign(levels, 0);
    for (std::int32_t& f : tree.features) {
      f = static_cast<std::int32_t>(r.i64("level feature"));
      if (f < 0 || static_cast<std::size_t>(f) >= n_features_) {
        throw r.error("level feature out of range");
      }
    }
    tree.thresholds = r.vec_f64("level thresholds", 64);
    tree.leaf_values = r.vec_f64("leaf values", 1ULL << 20);
    if (tree.thresholds.size() != levels) throw r.error("threshold count mismatch");
    if (tree.leaf_values.size() != (1ULL << levels)) {
      throw r.error("leaf table size mismatch");
    }
  }
}

}  // namespace hdc::ml
