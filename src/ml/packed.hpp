// Bit-packed fast-path plumbing shared by the ML models.
//
// When the design matrix is entirely 0/1 (hypervector features), every model
// in the zoo can answer its training-time statistics from column bitplanes:
// split-search class counts become AND/ANDNOT + popcount over node masks,
// and gradient/dot-product accumulations walk only the set bits of a masked
// plane. The packed paths are built to be *bit-identical* to the dense ones
// — same floating-point accumulation order, same tie-breaks, same RNG draw
// sequence — so switching the path can never change a result, only its cost.
//
// Selection mirrors the HDC_SIMD convention:
//   1. `HDC_ML_PACKED=0|1` (also off/on/false/true) environment override,
//      read once at first use; unknown values warn and fall back;
//   2. `set_packed_enabled()` — programmatic override for tests/benches;
//   3. default: enabled.
// The switch gates only the automatic Matrix -> BitMatrix promotion inside
// fit(); callers invoking fit_bits() with the switch off fall back to the
// dense code via row expansion, so the kill switch covers the whole path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "hv/bit_matrix.hpp"
#include "ml/classifier.hpp"

namespace hdc::ml {

/// Current state of the packed-path switch.
[[nodiscard]] bool packed_enabled() noexcept;

/// Force the switch for this process (tests, benches).
void set_packed_enabled(bool enabled) noexcept;

/// Drop any programmatic override and return to HDC_ML_PACKED / default.
void reset_packed_enabled() noexcept;

/// Pack a dense matrix into column bitplanes when every value is exactly
/// 0.0 or 1.0; nullopt (cheaply, first offending value) otherwise.
[[nodiscard]] std::optional<hv::BitMatrix> try_pack(const Matrix& X);

/// Rows with label 1 as a packed mask (padding bits zero).
[[nodiscard]] hv::RowMask label_mask(const Labels& y);

/// Ascending-row partial sums of a[r] (and b[r]) over the set bits of
/// (col AND mask) — float accumulation order identical to a dense
/// ascending-row loop that adds where column bit r is 1.
void masked_pair_sum(const std::uint64_t* col, const std::uint64_t* mask,
                     std::size_t words, const double* a, const double* b,
                     double& sum_a, double& sum_b);

/// Same over the set bits of (NOT col AND mask) — the bit==0 side of a
/// binary split, served from the same plane without a negated copy.
void masked_pair_sum_not(const std::uint64_t* col, const std::uint64_t* mask,
                         std::size_t words, const double* a, const double* b,
                         double& sum_a, double& sum_b);

}  // namespace hdc::ml
