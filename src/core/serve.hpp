// Microsecond-latency classification over a loaded ModelBundle.
//
// Two entry points, one determinism contract:
//
//  * classify(row) — synchronous fast path: encode the record through a
//    scratch-reusing single-row encoder (no per-request allocation after
//    warm-up) and answer from the selected predictor.
//  * submit(row) — request-coalescing queue: concurrent single-record
//    requests are batched by a drain task on the shared ThreadPool and
//    answered through one packed predict_all_bits call per sweep.
//
// Both paths produce bit-identical predictions for every row regardless of
// batch grouping or thread interleaving: zoo models answer each request via
// the packed row-independent predict_all_bits kernels, the Hamming and
// Sequential-NN predictors are evaluated per row, and the encoder is
// deterministic by construction. core_serve_test and bench_serve assert the
// contract.
//
// Observability: serve.requests / serve.batches counters, a
// serve.batch_size histogram, a serve.queue_depth gauge, and spans around
// the classify / drain hot paths.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bundle.hpp"
#include "hv/encoders.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::core {

struct ServeConfig {
  /// Predictor answering requests: "hamming", "nn", a zoo model name
  /// (e.g. "Logistic Regression"), or empty = first available in that order.
  std::string model;
  /// Most requests folded into one packed predict per drain sweep.
  std::size_t max_batch = 64;
  /// Route hamming k-NN requests through the bundle's ANN index (attached
  /// at load, or built here when the bundle carries none). Requires the
  /// hamming predictor; other predictors reject the flag.
  bool ann = false;
  /// Probe-width override for the ANN path (0 = the index default).
  std::size_t nprobe = 0;
  /// Pool running the drain task; nullptr = process-wide pool.
  parallel::ThreadPool* pool = nullptr;
};

class ServeEngine {
 public:
  /// Takes ownership of the bundle. Throws std::invalid_argument when the
  /// bundle has no extractor or the requested predictor is absent.
  explicit ServeEngine(ModelBundle bundle, ServeConfig config = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Synchronous single-record classification (0/1).
  [[nodiscard]] int classify(std::span<const double> row);

  /// Enqueue one record for coalesced classification. The future carries
  /// the prediction, or the per-request error (arity mismatch, missing
  /// values with missing_as_min off). Throws std::runtime_error after
  /// shutdown().
  [[nodiscard]] std::future<int> submit(std::vector<double> row);

  /// Stop accepting requests and block until the queue is drained.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Name of the predictor answering requests.
  [[nodiscard]] const std::string& model_name() const noexcept { return model_name_; }

  [[nodiscard]] const ModelBundle& bundle() const noexcept { return bundle_; }

  /// Requests answered so far (classify + drained submits).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  enum class PredictorKind { kHamming, kNn, kMl };

  struct Request {
    std::vector<double> row;
    std::promise<int> result;
  };

  /// Per-thread encode scratch, leased from a free list under mutex_.
  struct Scratch {
    hv::RecordEncoder::Scratch encoder;
    std::vector<double> row_buffer;
  };

  [[nodiscard]] std::unique_ptr<Scratch> acquire_scratch();
  void release_scratch(std::unique_ptr<Scratch> scratch);

  /// Predict one encoded record (already validated).
  [[nodiscard]] int predict_encoded(const hv::BitVector& encoded) const;

  /// Drain-task body: repeatedly swallow up to max_batch queued requests
  /// and answer them with one packed predict, until the queue is empty.
  void drain();

  ModelBundle bundle_;
  ServeConfig config_;
  PredictorKind kind_ = PredictorKind::kHamming;
  const ml::Classifier* ml_model_ = nullptr;  // kMl: borrowed from bundle_
  std::string model_name_;

  std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::deque<Request> queue_;
  std::vector<std::unique_ptr<Scratch>> scratch_pool_;
  bool draining_ = false;
  bool accepting_ = true;
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace hdc::core
