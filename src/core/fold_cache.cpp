#include "core/fold_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace hdc::core {

namespace {

bool initial_enabled() {
  const char* env = std::getenv("HDC_FOLD_CACHE");
  if (env == nullptr || *env == '\0') return true;
  const std::string_view value(env);
  if (value == "1" || value == "on" || value == "true") return true;
  if (value == "0" || value == "off" || value == "false") return false;
  util::log_fields(util::LogLevel::kWarn,
                   "HDC_FOLD_CACHE: unknown value, keeping fold cache enabled",
                   {{"value", env}});
  return true;
}

std::atomic<bool>& cache_state() {
  static std::atomic<bool> state{initial_enabled()};
  return state;
}

struct CacheMetrics {
  obs::Counter& hits = obs::counter("grid.cache_hits");
  obs::Counter& misses = obs::counter("grid.cache_misses");
  obs::Counter& evictions = obs::counter("grid.cache_evictions");
  obs::Gauge& entries = obs::gauge("grid.cache_entries");

  static CacheMetrics& get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

}  // namespace

bool fold_cache_enabled() noexcept {
  return cache_state().load(std::memory_order_relaxed);
}

void set_fold_cache_enabled(bool enabled) noexcept {
  cache_state().store(enabled, std::memory_order_relaxed);
}

void reset_fold_cache_enabled() noexcept {
  cache_state().store(initial_enabled(), std::memory_order_relaxed);
}

void FoldEncodingCache::put(const FoldKey& key,
                            std::shared_ptr<const FoldData> fold,
                            std::size_t expected_users) {
  if (!fold_cache_enabled() || expected_users == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  if (entry.fold == nullptr) {
    entry.fold = std::move(fold);
    ++stats_.insertions;
    stats_.peak_entries = std::max(stats_.peak_entries, entries_.size());
    if (obs::enabled()) CacheMetrics::get().entries.add(1);
  }
  entry.users += expected_users;
}

std::shared_ptr<const FoldData> FoldEncodingCache::acquire(const FoldKey& key) {
  if (!fold_cache_enabled()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    if (obs::enabled()) CacheMetrics::get().misses.increment();
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (obs::enabled()) CacheMetrics::get().misses.increment();
    return nullptr;
  }
  ++stats_.hits;
  if (obs::enabled()) CacheMetrics::get().hits.increment();
  return it->second.fold;
}

void FoldEncodingCache::release(const FoldKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (--it->second.users == 0) {
    entries_.erase(it);
    ++stats_.evictions;
    if (obs::enabled()) {
      CacheMetrics& metrics = CacheMetrics::get();
      metrics.evictions.increment();
      metrics.entries.add(-1);
    }
  }
}

std::size_t FoldEncodingCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

FoldEncodingCache::Stats FoldEncodingCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hdc::core
