#include "core/manifest.hpp"

#include <bit>
#include <sstream>

#include "core/experiment.hpp"
#include "core/fold_cache.hpp"
#include "data/chunked.hpp"
#include "ml/packed.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/serde.hpp"

namespace hdc::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t value) noexcept {
  fnv_bytes(h, &value, sizeof(value));
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

std::uint64_t dataset_fingerprint(const data::Dataset& ds) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, ds.n_rows());
  fnv_u64(h, ds.n_cols());
  for (const data::ColumnSpec& col : ds.columns()) {
    fnv_bytes(h, col.name.data(), col.name.size());
    fnv_u64(h, static_cast<std::uint64_t>(col.kind));
  }
  for (const int label : ds.labels()) {
    fnv_u64(h, static_cast<std::uint64_t>(label));
  }
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    for (std::size_t j = 0; j < ds.n_cols(); ++j) {
      // Bit pattern, not value: distinguishes -0.0/0.0 and hashes NaNs
      // stably (the loaders produce one canonical quiet NaN).
      fnv_u64(h, std::bit_cast<std::uint64_t>(ds.value(i, j)));
    }
  }
  return h;
}

std::uint64_t mix_hash(std::uint64_t acc, std::uint64_t value) noexcept {
  std::uint64_t h = acc == 0 ? kFnvOffset : acc;
  fnv_u64(h, value);
  return h;
}

RunManifest make_run_manifest(const data::Dataset& ds,
                              std::string_view dataset_name,
                              const ExperimentConfig& config) {
  RunManifest m;
  m.dataset = std::string(dataset_name);
  m.dataset_hash = dataset_fingerprint(ds);
  m.rows = ds.n_rows();
  m.cols = ds.n_cols();
  m.dimensions = config.extractor.dimensions;
  m.extractor_seed = config.extractor.seed;
  m.split_seed = config.seed;
  m.simd_tier = simd::tier_name(simd::active_tier());
  m.threads = config.threads;
  m.hardware_threads = parallel::hardware_threads();
  m.packed_ml = config.packed_ml && ml::packed_enabled();
  m.fold_cache = fold_cache_enabled();
  m.obs_enabled = obs::enabled();
  m.trace_enabled = obs::trace_enabled();
  m.shard_rows = config.max_resident_rows;
  m.num_shards = data::make_shard_plan(ds.n_rows(), config.max_resident_rows).size();
  m.obs_json = obs::to_json(obs::snapshot());
  return m;
}

std::string to_json(const RunManifest& manifest) {
  std::string out = "{\"dataset\":";
  append_json_string(out, manifest.dataset);
  out += ",\"dataset_hash\":\"";
  out += util::serde::hex16(manifest.dataset_hash);
  out += "\",\"rows\":" + std::to_string(manifest.rows);
  out += ",\"cols\":" + std::to_string(manifest.cols);
  out += ",\"dimensions\":" + std::to_string(manifest.dimensions);
  out += ",\"extractor_seed\":" + std::to_string(manifest.extractor_seed);
  out += ",\"split_seed\":" + std::to_string(manifest.split_seed);
  out += ",\"simd_tier\":";
  append_json_string(out, manifest.simd_tier);
  out += ",\"threads\":" + std::to_string(manifest.threads);
  out += ",\"hardware_threads\":" + std::to_string(manifest.hardware_threads);
  out += ",\"packed_ml\":";
  out += manifest.packed_ml ? "true" : "false";
  out += ",\"fold_cache\":";
  out += manifest.fold_cache ? "true" : "false";
  out += ",\"obs_enabled\":";
  out += manifest.obs_enabled ? "true" : "false";
  out += ",\"trace_enabled\":";
  out += manifest.trace_enabled ? "true" : "false";
  out += ",\"shard_rows\":" + std::to_string(manifest.shard_rows);
  out += ",\"num_shards\":" + std::to_string(manifest.num_shards);
  out += ",\"obs\":";
  out += manifest.obs_json.empty() ? "{}" : manifest.obs_json;
  out += "}";
  return out;
}

void save_manifest(std::ostream& out, const RunManifest& manifest) {
  util::serde::Writer w(out);
  w.tag("manifest").tag("v1").nl();
  w.tag("dataset").str(manifest.dataset).u64(manifest.dataset_hash)
      .u64(manifest.rows).u64(manifest.cols).nl();
  w.tag("run").u64(manifest.dimensions).u64(manifest.extractor_seed)
      .u64(manifest.split_seed).str(manifest.simd_tier)
      .u64(manifest.threads).u64(manifest.hardware_threads).nl();
  w.tag("flags").u64(manifest.packed_ml ? 1 : 0)
      .u64(manifest.fold_cache ? 1 : 0).u64(manifest.obs_enabled ? 1 : 0)
      .u64(manifest.trace_enabled ? 1 : 0).nl();
  w.tag("obs").str(manifest.obs_json).nl();
  w.tag("shards").u64(manifest.shard_rows).u64(manifest.num_shards).nl();
  w.tag("end").nl();
}

RunManifest load_manifest(std::istream& in) {
  util::serde::Reader r(in, "manifest");
  r.expect("manifest", "header");
  r.expect("v1", "version");
  RunManifest m;
  r.expect("dataset", "dataset header");
  m.dataset = r.str("dataset name");
  m.dataset_hash = r.u64("dataset hash");
  m.rows = r.u64("rows");
  m.cols = r.u64("cols");
  r.expect("run", "run header");
  m.dimensions = r.u64("dimensions");
  m.extractor_seed = r.u64("extractor seed");
  m.split_seed = r.u64("split seed");
  m.simd_tier = r.str("simd tier");
  m.threads = r.u64("threads");
  m.hardware_threads = r.u64("hardware threads");
  r.expect("flags", "flags header");
  m.packed_ml = r.u64("packed_ml flag") != 0;
  m.fold_cache = r.u64("fold_cache flag") != 0;
  m.obs_enabled = r.u64("obs_enabled flag") != 0;
  m.trace_enabled = r.u64("trace_enabled flag") != 0;
  r.expect("obs", "obs header");
  m.obs_json = r.str("obs json");
  // Shard geometry is a late addition: bundles written before it simply
  // end here, so accept both shapes.
  std::string tail = r.token("shards or trailer");
  if (tail == "shards") {
    m.shard_rows = r.u64("shard rows");
    m.num_shards = r.u64("shard count");
    tail = r.token("trailer");
  }
  if (tail != "end") throw r.error("expected trailer, got '" + tail + "'");
  return m;
}

}  // namespace hdc::core
