// Experiment-grid runner: the paper's full evaluation sweep as one DAG.
//
// Tables III–V evaluate 2 datasets × the 9-model zoo (+ the 2×32 ReLU
// Sequential NN) under stratified 10-fold CV, re-fitting the HDC extractor
// on every fold's training rows. Run serially (run_grid with
// scheduled=false — the PR 1–4 driver), that walk re-encodes each fold once
// per model and keeps at most one core busy.
//
// The scheduled path expresses the same protocol as a parallel::TaskGraph:
//
//   encode(dataset d, fold f)            one task per (d, f); materialises
//        |                               the fold via materialize_fold()
//        |                               into the FoldEncodingCache
//        v
//   fit/eval(d, model m, fold f)         one task per (d, m, f); acquires
//        |                               the cached fold (or re-encodes it
//        |                               when HDC_FOLD_CACHE=0), fits a
//        v                               fresh model, scores the test rows
//   reduce(d, m)                         one task per (d, m); folds the k
//                                        scores into a CvResult in fixed
//                                        fold order via summarize_folds()
//
// plus one nn(d) task per dataset when nn_repeats > 0 (the Sequential NN
// protocol is its own repeated-holdout loop, not k-fold).
//
// Determinism: every task derives its randomness from seeds fixed at graph
// construction (the same ExperimentConfig-derived streams the serial driver
// uses), tasks only communicate through their dependency edges, and reduces
// read fold scores from a pre-indexed array in fold order — so the grid's
// metrics are EXPECT_EQ-identical to the serial path for every worker
// count, cache on or off.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "data/dataset.hpp"
#include "eval/cross_validation.hpp"
#include "nn/sequential.hpp"

namespace hdc::core {

/// One dataset entering the grid. `name` doubles as the fold-cache dataset
/// id, so distinct datasets must get distinct names.
struct GridDatasetSpec {
  std::string name;
  const data::Dataset* data = nullptr;
};

struct GridConfig {
  /// Zoo model names (ml::make_model keys). Empty = the paper's nine.
  std::vector<std::string> models;
  std::size_t kfold = 10;
  InputMode mode = InputMode::kHypervectors;
  ExperimentConfig experiment;
  /// Worker count for the scheduled path (its dedicated pool + task-graph
  /// width). 0 = hardware_threads(). Ignored by the serial path.
  std::size_t threads = 0;
  /// false = the serial reference walk (kfold_cv_accuracy per cell).
  bool scheduled = true;
  /// Sequential-NN repeats per dataset; 0 skips the NN rows.
  std::size_t nn_repeats = 0;
  nn::SequentialConfig nn;
};

struct GridModelResult {
  std::string model;
  eval::CvResult cv;
};

struct GridDatasetResult {
  std::string dataset;
  std::vector<GridModelResult> models;  // in GridConfig::models order
  bool has_nn = false;
  NnProtocolResult nn;
};

/// Scheduler / cache observability for one grid run. Purely informational —
/// never feeds back into the metrics.
struct GridStats {
  std::size_t encode_tasks = 0;  // 0 when the fold cache is disabled
  std::size_t model_tasks = 0;
  std::size_t reduce_tasks = 0;
  std::size_t nn_tasks = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_peak_entries = 0;
  /// Fold consumers per encode task (≈ model count when the cache is on).
  double dedup_ratio = 0.0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::size_t workers = 1;
};

struct GridResult {
  std::vector<GridDatasetResult> datasets;  // in input order
  GridStats stats;
  /// Provenance for the whole sweep: dataset names comma-joined in input
  /// order, dataset_hash mixed across them, threads = scheduler workers.
  RunManifest manifest;
};

/// Run the grid over `datasets`. The scheduled path runs on a dedicated
/// pool of config.threads workers; the serial path ignores threads and
/// reproduces the pre-grid driver exactly. Metrics are identical between
/// the two paths and across worker counts.
[[nodiscard]] GridResult run_grid(std::span<const GridDatasetSpec> datasets,
                                  const GridConfig& config);

}  // namespace hdc::core
