// Experiment drivers reproducing the paper's evaluation protocols. Each
// bench binary is a thin wrapper over these functions; the unit tests also
// exercise them on reduced configurations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/extractor.hpp"
#include "core/manifest.hpp"
#include "data/dataset.hpp"
#include "eval/cross_validation.hpp"
#include "eval/metrics.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/sharded_bits.hpp"
#include "nn/sequential.hpp"
#include "obs/metrics.hpp"

namespace hdc::core {

/// What the downstream model consumes.
enum class InputMode { kRawFeatures, kHypervectors };

[[nodiscard]] std::string to_string(InputMode mode);

struct ExperimentConfig {
  ExtractorConfig extractor;
  std::uint64_t seed = 42;   // split / CV seed
  double model_budget = 1.0; // scales boosted-model iteration counts
  /// Worker threads for the batch encode / Hamming search engine: 0 = the
  /// process-wide pool. Results are bit-identical for every setting (the
  /// golden determinism test pins 1 vs hardware_threads()).
  std::size_t threads = 0;
  /// Feed hypervector folds to the downstream models as bit-packed columnar
  /// matrices (popcount kernels) instead of dense doubles. Splits and
  /// predictions are bit-identical either way; only speed and memory change.
  /// The HDC_ML_PACKED environment switch can still veto the packed path.
  bool packed_ml = true;
  /// Encode and train fold bitplanes in shards of at most this many rows
  /// (0 = everything in one block, the classic path). Any positive value
  /// routes fitting through the models' fit_shards path — whose output is
  /// invariant to the actual value, because even a single shard takes the
  /// same code path — so the knob trades peak memory for extra passes
  /// without changing results.
  std::size_t max_resident_rows = 0;
};

/// Materialised (X, y) for one fold's train/test rows, in raw or
/// hypervector space. On the packed route hypervector folds carry
/// bit-packed matrices instead of dense doubles (train_X/test_X stay
/// empty). Shared between the per-model CV drivers below and the grid
/// runner's fold-encoding cache (core/grid), which must produce
/// bit-identical folds.
struct FoldData {
  ml::Matrix train_X;
  ml::Labels train_y;
  ml::Matrix test_X;
  ml::Labels test_y;
  std::optional<hv::BitMatrix> train_bits;
  std::optional<hv::BitMatrix> test_bits;
  // Sharded variants (config.max_resident_rows > 0): per-shard bitplane
  // blocks instead of one concatenated matrix.
  std::optional<hv::ShardedBitMatrix> train_shards;
  std::optional<hv::ShardedBitMatrix> test_shards;
};

/// Build a FoldData for the given row subsets. In hypervector mode the
/// extractor is fit on `train` only (no encoding leakage); `allow_packed`
/// gates the BitMatrix fast path (the NN protocol needs dense matrices).
/// Pure function of (ds, indices, config): every call with the same inputs
/// yields the same fold, regardless of the calling thread.
[[nodiscard]] FoldData materialize_fold(const data::Dataset& ds,
                                        std::span<const std::size_t> train,
                                        std::span<const std::size_t> test,
                                        InputMode mode,
                                        const ExperimentConfig& config,
                                        bool allow_packed);

/// fit() / fit_bits() dispatch for whichever representation `fold` carries.
void fit_fold_model(ml::Classifier& model, const FoldData& fold);

/// Test-set accuracy of a fitted model on `fold`'s representation.
[[nodiscard]] double fold_accuracy(const ml::Classifier& model,
                                   const FoldData& fold);

/// Paper Table III protocol: stratified 10-fold CV accuracy of a zoo model.
/// In hypervector mode the extractor is re-fit on each fold's training rows.
[[nodiscard]] eval::CvResult kfold_cv_accuracy(const data::Dataset& ds,
                                               const std::string& model_name,
                                               InputMode mode, std::size_t k,
                                               const ExperimentConfig& config);

/// Paper Table IV/V protocol: stratified 90/10 holdout, full test metrics.
[[nodiscard]] eval::BinaryMetrics holdout_metrics(const data::Dataset& ds,
                                                  const std::string& model_name,
                                                  InputMode mode,
                                                  double test_fraction,
                                                  const ExperimentConfig& config);

/// Paper Table II (Hamming row): leave-one-out 1-NN Hamming over the whole
/// dataset, encoded once with extractor ranges from the full data (the
/// paper builds all patient hypervectors up front).
[[nodiscard]] eval::BinaryMetrics hamming_loo(const data::Dataset& ds,
                                              const ExperimentConfig& config);

/// Metrics plus the obs-registry state and run provenance captured when the
/// run finished. Snapshot and manifest are pure observability output —
/// identical metrics are produced whether obs recording is on or off.
struct ExperimentResult {
  eval::BinaryMetrics metrics;
  obs::MetricsSnapshot obs;
  RunManifest manifest;
};

/// hamming_loo() plus a global-registry snapshot taken after the run (the
/// encode / search / pool counters accumulated so far in this process) and a
/// RunManifest recording how it was produced. `dataset_name` labels the
/// manifest (the Dataset itself carries no name).
[[nodiscard]] ExperimentResult hamming_loo_observed(
    const data::Dataset& ds, const ExperimentConfig& config,
    std::string_view dataset_name = "");

struct NnProtocolResult {
  double mean_test_accuracy = 0.0;
  double stddev_test_accuracy = 0.0;
  double mean_val_accuracy = 0.0;
  double mean_epochs = 0.0;  // epochs actually run (early stopping)
};

/// Paper Table II (Sequential NN rows): 70/15/15 stratified split, up to
/// 1000 epochs with patience-20 early stopping, repeated `repeats` times
/// with different split seeds; reports the mean testing accuracy.
[[nodiscard]] NnProtocolResult nn_protocol(const data::Dataset& ds, InputMode mode,
                                           std::size_t repeats,
                                           const ExperimentConfig& config,
                                           nn::SequentialConfig nn_config = {});

}  // namespace hdc::core
