// core::EncodingShardSource — the out-of-core training source.
//
// Bridges a data::ChunkedDataset (CSV stream, synthetic generator, or
// in-memory view) and a fitted HdcFeatureExtractor into an ml::ShardSource:
// each shard() call materializes one row-range chunk, encodes it to a packed
// BitMatrix, and discards the previous shard — at no point is the full
// cohort's dense matrix or bitplane set resident. Because row i's encoding
// is a pure function of (row bytes, extractor), and every consumer merges
// per-shard integer statistics, results are bit-identical at any shard size.
//
// Observability: each shard load updates the `data.shards_resident` gauge
// and the `data.shard_bytes_peak` high-water gauge (measured from the actual
// resident chunk + bitplane geometry, not estimated).
#pragma once

#include <cstddef>
#include <vector>

#include "core/extractor.hpp"
#include "data/chunked.hpp"
#include "hv/bit_matrix.hpp"
#include "ml/sharded.hpp"

namespace hdc::core {

class EncodingShardSource final : public ml::ShardSource {
 public:
  /// Plans ceil(rows / shard_rows) contiguous shards (shard_rows == 0 means
  /// one shard) and prescans labels chunk-at-a-time. `chunks` and
  /// `extractor` must outlive the source; the extractor must be fitted.
  EncodingShardSource(const data::ChunkedDataset& chunks,
                      const HdcFeatureExtractor& extractor,
                      std::size_t shard_rows);

  [[nodiscard]] std::size_t rows() const override { return rows_; }
  [[nodiscard]] std::size_t cols() const override {
    return extractor_->dimensions();
  }
  [[nodiscard]] std::size_t num_shards() const override { return plan_.size(); }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const override;
  [[nodiscard]] const hv::BitMatrix& shard(std::size_t s) const override;
  [[nodiscard]] std::span<const int> labels() const override { return labels_; }

  /// Largest (chunk + bitplane) byte footprint any single shard() call has
  /// held resident so far.
  [[nodiscard]] std::size_t peak_resident_bytes() const noexcept {
    return peak_resident_bytes_;
  }

 private:
  const data::ChunkedDataset* chunks_;
  const HdcFeatureExtractor* extractor_;
  std::vector<data::ChunkRange> plan_;
  std::size_t rows_ = 0;
  std::vector<int> labels_;
  // One shard resident at a time; shard() returns a reference valid until
  // the next shard() call (the ShardSource contract).
  mutable hv::BitMatrix current_;
  mutable std::size_t current_shard_ = static_cast<std::size_t>(-1);
  mutable std::size_t peak_resident_bytes_ = 0;
};

}  // namespace hdc::core
