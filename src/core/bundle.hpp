// Versioned single-file persistence for a fitted pipeline — the deployable
// artifact the serve path loads. A bundle is a sequence of named sections:
//
//   hdc-bundle v1
//   sections <n>
//   section <~name> <byte-count> <fnv1a-hex16>
//   <raw section body, exactly byte-count bytes>
//   ...
//   end
//
// Each section body is itself a self-describing serialized object (the
// extractor / hamming text formats of core/serialize, or the util::serde
// token streams of the ml / nn / scaler / online serializers). The section
// header carries the body's byte count and FNV-1a 64 checksum; the loader
// verifies the checksum *before* parsing the body, so any corruption —
// truncation, bit flips, version skew — is reported as a diagnostic
// std::runtime_error instead of reaching a parser as garbage.
//
// Section names:
//   extractor        fitted HdcFeatureExtractor
//   hamming          fitted HammingClassifier
//   scaler.minmax    fitted data::MinMaxScaler
//   scaler.standard  fitted data::StandardScaler
//   online           fitted OnlineHdClassifier (integer prototypes)
//   nn               fitted nn::Sequential
//   model:<name>     fitted zoo model, <name> = ml::Classifier::name()
//   manifest         core::RunManifest of the producing training run
//
// Every section is optional; duplicates and unknown names are errors.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "core/manifest.hpp"
#include "core/online.hpp"
#include "data/preprocess.hpp"
#include "ml/classifier.hpp"
#include "nn/sequential.hpp"

namespace hdc::core {

/// Everything a deployment needs in one artifact. Any subset of the members
/// may be present; save_bundle writes only the fitted/engaged ones.
struct ModelBundle {
  std::optional<HdcFeatureExtractor> extractor;
  std::optional<HammingClassifier> hamming;
  std::optional<data::MinMaxScaler> minmax_scaler;
  std::optional<data::StandardScaler> standard_scaler;
  std::optional<OnlineHdClassifier> online;
  std::unique_ptr<nn::Sequential> nn;
  /// Fitted zoo models, keyed by their Classifier::name().
  std::vector<std::unique_ptr<ml::Classifier>> models;
  /// Provenance of the training run that produced this bundle (optional —
  /// older bundles round-trip without it).
  std::optional<RunManifest> manifest;

  /// Zoo model by exact name; nullptr when absent.
  [[nodiscard]] const ml::Classifier* find_model(std::string_view name) const;

  /// Names of all stored zoo models, in bundle order.
  [[nodiscard]] std::vector<std::string> model_names() const;
};

/// Serialize the engaged members of `bundle`. Throws std::logic_error when
/// nothing is engaged (an empty bundle is almost certainly a caller bug).
void save_bundle(std::ostream& out, const ModelBundle& bundle);

/// Parse + checksum-verify a bundle. Throws std::runtime_error with a
/// section-qualified message on any malformed input.
[[nodiscard]] ModelBundle load_bundle(std::istream& in);

void save_bundle_file(const std::string& path, const ModelBundle& bundle);
[[nodiscard]] ModelBundle load_bundle_file(const std::string& path);

}  // namespace hdc::core
