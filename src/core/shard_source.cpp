#include "core/shard_source.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace hdc::core {

namespace {

/// Actual byte footprint of a packed shard: column bitplanes + the
/// row-major mirror + the valid-row mask.
std::size_t bit_matrix_bytes(const hv::BitMatrix& m) noexcept {
  return 8 * (m.words_per_column() * m.cols() + m.rows() * m.words_per_row() +
              m.words_per_column());
}

/// Byte footprint of the dense chunk that feeds the encoder (values +
/// labels); alive only while the shard is being encoded.
std::size_t chunk_bytes(const data::Dataset& ds) noexcept {
  return ds.n_rows() * (ds.n_cols() * 8 + 4);
}

}  // namespace

EncodingShardSource::EncodingShardSource(const data::ChunkedDataset& chunks,
                                         const HdcFeatureExtractor& extractor,
                                         std::size_t shard_rows)
    : chunks_(&chunks), extractor_(&extractor) {
  if (!extractor.fitted()) {
    throw std::invalid_argument("EncodingShardSource: extractor not fitted");
  }
  rows_ = chunks.n_rows();
  if (rows_ == 0) {
    throw std::invalid_argument("EncodingShardSource: empty chunk source");
  }
  plan_ = data::make_shard_plan(rows_, shard_rows);
  // Label prescan, one chunk resident at a time.
  labels_.reserve(rows_);
  for (const data::ChunkRange& range : plan_) {
    const data::Dataset chunk = chunks.chunk(range.begin, range.end);
    const std::vector<int>& y = chunk.labels();
    labels_.insert(labels_.end(), y.begin(), y.end());
  }
}

std::size_t EncodingShardSource::shard_begin(std::size_t s) const {
  if (s >= plan_.size()) {
    throw std::out_of_range("EncodingShardSource: shard index out of range");
  }
  return plan_[s].begin;
}

const hv::BitMatrix& EncodingShardSource::shard(std::size_t s) const {
  if (s >= plan_.size()) {
    throw std::out_of_range("EncodingShardSource: shard index out of range");
  }
  if (s == current_shard_) return current_;
  current_ = hv::BitMatrix();  // drop the previous shard before loading
  current_shard_ = static_cast<std::size_t>(-1);
  const data::Dataset chunk = chunks_->chunk(plan_[s].begin, plan_[s].end);
  current_ = extractor_->transform_bits(chunk);
  current_shard_ = s;

  obs::gauge("data.shards_resident").set(1);
  const std::size_t resident = bit_matrix_bytes(current_) + chunk_bytes(chunk);
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident);
  // The gauge holds the high-water mark so the exported value IS the peak.
  obs::Gauge& peak = obs::gauge("data.shard_bytes_peak");
  if (static_cast<std::int64_t>(peak_resident_bytes_) > peak.value()) {
    peak.set(static_cast<std::int64_t>(peak_resident_bytes_));
  }
  return current_;
}

}  // namespace hdc::core
