#include "core/online.hpp"

#include "util/serde.hpp"

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace hdc::core {

OnlineHdClassifier::OnlineHdClassifier(OnlineHdConfig config) : config_(config) {
  if (config_.max_epochs == 0) {
    throw std::invalid_argument("OnlineHdClassifier: zero epochs");
  }
}

void OnlineHdClassifier::ensure_dimensions(std::size_t dims) {
  if (dimensions_ == 0) {
    dimensions_ = dims;
    prototypes_[0] = hv::IntVector(dims);
    prototypes_[1] = hv::IntVector(dims);
  } else if (dims != dimensions_) {
    throw std::invalid_argument("OnlineHdClassifier: dimensionality mismatch");
  }
}

void OnlineHdClassifier::fit(const std::vector<hv::BitVector>& vectors,
                             const std::vector<int>& labels) {
  if (vectors.empty() || vectors.size() != labels.size()) {
    throw std::invalid_argument("OnlineHdClassifier: bad training data");
  }
  for (const int y : labels) {
    if (y != 0 && y != 1) {
      throw std::invalid_argument("OnlineHdClassifier: labels must be 0/1");
    }
  }
  dimensions_ = 0;
  ensure_dimensions(vectors.front().size());
  updates_per_epoch_.clear();

  // Initial bundling pass: every vector joins its class prototype.
  std::vector<hv::IntVector> lifted;
  lifted.reserve(vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    lifted.push_back(hv::IntVector::from_binary(vectors[i]));
    prototypes_[static_cast<std::size_t>(labels[i])] += lifted.back();
  }

  // Retraining epochs: move misclassified vectors between prototypes.
  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(vectors.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    std::size_t updates = 0;
    for (const std::size_t i : order) {
      const int predicted = predict(vectors[i]);
      if (predicted == labels[i]) continue;
      prototypes_[static_cast<std::size_t>(labels[i])] += lifted[i];
      prototypes_[static_cast<std::size_t>(predicted)] -= lifted[i];
      ++updates;
    }
    updates_per_epoch_.push_back(updates);
    if (config_.stop_when_converged && updates == 0) break;
  }
}

void OnlineHdClassifier::partial_fit(const hv::BitVector& vector, int label) {
  if (label != 0 && label != 1) {
    throw std::invalid_argument("OnlineHdClassifier: label must be 0/1");
  }
  ensure_dimensions(vector.size());
  const hv::IntVector lifted = hv::IntVector::from_binary(vector);
  const int predicted = predict(vector);
  if (predicted != label) {
    prototypes_[static_cast<std::size_t>(label)] += lifted;
    prototypes_[static_cast<std::size_t>(predicted)] -= lifted;
  } else {
    // Correctly classified samples still reinforce their class slightly;
    // this is the bundling half of the update rule and keeps prototypes
    // tracking slow drift in the incoming population.
    prototypes_[static_cast<std::size_t>(label)] += lifted;
  }
}

double OnlineHdClassifier::margin(const hv::BitVector& vector) const {
  if (!fitted()) throw std::logic_error("OnlineHdClassifier: not fitted");
  if (vector.size() != dimensions_) {
    throw std::invalid_argument("OnlineHdClassifier: query arity mismatch");
  }
  const hv::IntVector lifted = hv::IntVector::from_binary(vector);
  return lifted.cosine(prototypes_[1]) - lifted.cosine(prototypes_[0]);
}

int OnlineHdClassifier::predict(const hv::BitVector& vector) const {
  return margin(vector) >= 0.0 ? 1 : 0;
}

const hv::IntVector& OnlineHdClassifier::prototype(int label) const {
  if (!fitted()) throw std::logic_error("OnlineHdClassifier: not fitted");
  if (label != 0 && label != 1) {
    throw std::invalid_argument("OnlineHdClassifier: label must be 0/1");
  }
  return prototypes_[static_cast<std::size_t>(label)];
}

void OnlineHdClassifier::save(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("OnlineHdClassifier: save of unfitted model");
  util::serde::Writer w(out);
  w.tag("core.online").tag("v1").nl();
  w.u64(config_.max_epochs).u64(config_.stop_when_converged ? 1 : 0);
  w.u64(config_.seed).nl();
  w.u64(dimensions_).nl();
  for (const hv::IntVector& proto : prototypes_) {
    for (std::size_t i = 0; i < proto.size(); ++i) w.i64(proto.get(i));
    w.nl();
  }
}

void OnlineHdClassifier::load(std::istream& in) {
  util::serde::Reader r(in, "load core.online");
  r.expect("core.online", "model tag");
  r.expect("v1", "format version");
  config_.max_epochs = r.u64("max_epochs");
  config_.stop_when_converged = r.u64("stop_when_converged") != 0;
  config_.seed = r.u64("seed");
  dimensions_ = r.count("dimensions", 1ULL << 24);
  if (dimensions_ == 0) throw r.error("zero dimensions");
  for (hv::IntVector& proto : prototypes_) {
    proto = hv::IntVector(dimensions_);
    for (std::size_t i = 0; i < dimensions_; ++i) {
      const std::int64_t v = r.i64("prototype component");
      if (v < INT32_MIN || v > INT32_MAX) throw r.error("component out of range");
      proto.set(i, static_cast<std::int32_t>(v));
    }
  }
  updates_per_epoch_.clear();
}

}  // namespace hdc::core
