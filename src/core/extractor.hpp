// HdcFeatureExtractor — the paper's primary contribution.
//
// Fit on a training dataset: every continuous column gets a LevelEncoder
// over its observed [min, max]; every binary column gets a BinaryEncoder
// (seed / orthogonal pair); each column uses an independent random seed
// stream derived from (seed, column index) so no feature is biased.
// Transform: each row's feature hypervectors are bundled with bitwise
// majority voting (ties -> 1) into one patient hypervector.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/encoders.hpp"
#include "hv/sharded_bits.hpp"
#include "hv/search.hpp"
#include "ml/classifier.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::core {

struct ExtractorConfig {
  std::size_t dimensions = 10000;  // the paper's 10k bits
  hv::TiePolicy tie = hv::TiePolicy::kOne;
  std::uint64_t seed = 0xd1abe7e5;
  /// Treat missing values as the column minimum (paper datasets are cleaned
  /// before encoding, so this only matters for user data).
  bool missing_as_min = true;
};

/// What the extractor learned about one column: enough to rebuild its
/// feature encoder without the training data (used by core/serialize).
struct ColumnEncoding {
  std::string name;
  data::ColumnKind kind = data::ColumnKind::kContinuous;
  double lo = 0.0;  // observed range (continuous columns only)
  double hi = 0.0;
};

class HdcFeatureExtractor {
 public:
  explicit HdcFeatureExtractor(ExtractorConfig config = {});

  /// Learn per-column ranges from `train` and build the record encoder.
  void fit(const data::Dataset& train);

  /// Rebuild the encoders from previously learned column encodings (model
  /// loading); equivalent to the fit() that produced them.
  void fit_from_columns(std::vector<ColumnEncoding> columns);

  [[nodiscard]] const ExtractorConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<ColumnEncoding>& column_encodings() const {
    return columns_;
  }

  [[nodiscard]] bool fitted() const noexcept { return encoder_ != nullptr; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return config_.dimensions; }

  /// Encode one row (arity must match the fitted dataset).
  [[nodiscard]] hv::BitVector encode_row(std::span<const double> row) const;

  /// Scratch-reusing single-row encode — the serve hot path. Identical
  /// output to encode_row(row); the per-call allocations (feature
  /// hypervectors, level-encoder memo, missing-value substitution buffer)
  /// live in caller-owned buffers that amortise to zero across requests.
  [[nodiscard]] hv::BitVector encode_row(std::span<const double> row,
                                         hv::RecordEncoder::Scratch& scratch,
                                         std::vector<double>& row_buffer) const;

  /// Encode every row of a dataset via the batch engine (parallelised over
  /// `pool`, nullptr = process-wide pool; results identical either way).
  [[nodiscard]] std::vector<hv::BitVector> transform(
      const data::Dataset& ds, parallel::ThreadPool* pool = nullptr) const;

  /// As transform(), but packed for the hv/search kernels.
  [[nodiscard]] hv::PackedHVs transform_packed(
      const data::Dataset& ds, parallel::ThreadPool* pool = nullptr) const;

  /// As transform(), but delivered as a columnar BitMatrix for the packed
  /// ML fast path — no double design matrix is ever materialised.
  [[nodiscard]] hv::BitMatrix transform_bits(
      const data::Dataset& ds, parallel::ThreadPool* pool = nullptr) const;

  /// As transform_bits(), but encoded shard-at-a-time into a
  /// ShardedBitMatrix (`shard_rows` rows per shard, 0 = one shard). Row i's
  /// encoding is identical regardless of shard geometry, so any chunking of
  /// the same dataset fingerprints identically.
  [[nodiscard]] hv::ShardedBitMatrix transform_bits_chunked(
      const data::Dataset& ds, std::size_t shard_rows,
      parallel::ThreadPool* pool = nullptr) const;

  /// Encode to a 0/1 double matrix for the ML / NN substrates.
  [[nodiscard]] ml::Matrix transform_to_matrix(const data::Dataset& ds) const;

  /// The underlying per-feature encoders (introspection / tests).
  [[nodiscard]] const hv::RecordEncoder& record_encoder() const;

 private:
  ExtractorConfig config_;
  std::unique_ptr<hv::RecordEncoder> encoder_;
  std::vector<ColumnEncoding> columns_;
  std::vector<double> column_min_;  // for missing_as_min substitution
};

}  // namespace hdc::core
