#include "core/extractor.hpp"

#include <stdexcept>

#include "hv/batch_encoder.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace hdc::core {

HdcFeatureExtractor::HdcFeatureExtractor(ExtractorConfig config) : config_(config) {
  if (config_.dimensions == 0 || config_.dimensions % 4 != 0) {
    throw std::invalid_argument(
        "HdcFeatureExtractor: dimensions must be a positive multiple of 4");
  }
}

void HdcFeatureExtractor::fit(const data::Dataset& train) {
  if (train.n_rows() == 0) throw std::invalid_argument("HdcFeatureExtractor: empty fit");
  std::vector<ColumnEncoding> columns;
  columns.reserve(train.n_cols());
  for (std::size_t j = 0; j < train.n_cols(); ++j) {
    const data::ColumnSpec& spec = train.column(j);
    ColumnEncoding enc{spec.name, spec.kind, 0.0, 0.0};
    if (spec.kind == data::ColumnKind::kContinuous) {
      const data::ColumnStats stats = train.column_stats(j);
      if (stats.present == 0) {
        throw std::invalid_argument("HdcFeatureExtractor: column '" + spec.name +
                                    "' has no data");
      }
      enc.lo = stats.min;
      enc.hi = stats.max;
    }
    columns.push_back(std::move(enc));
  }
  fit_from_columns(std::move(columns));
}

void HdcFeatureExtractor::fit_from_columns(std::vector<ColumnEncoding> columns) {
  if (columns.empty()) {
    throw std::invalid_argument("HdcFeatureExtractor: no columns");
  }
  encoder_ = std::make_unique<hv::RecordEncoder>(config_.dimensions, config_.tie);
  columns_ = std::move(columns);
  column_min_.assign(columns_.size(), 0.0);
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const std::uint64_t column_seed = util::mix_seed(config_.seed, j + 1);
    const ColumnEncoding& spec = columns_[j];
    if (spec.kind == data::ColumnKind::kBinary) {
      encoder_->add_feature(
          std::make_unique<hv::BinaryEncoder>(config_.dimensions, column_seed));
    } else if (spec.kind == data::ColumnKind::kCategorical) {
      encoder_->add_feature(
          std::make_unique<hv::CategoricalEncoder>(config_.dimensions, column_seed));
    } else {
      encoder_->add_feature(std::make_unique<hv::LevelEncoder>(
          config_.dimensions, spec.lo, spec.hi, column_seed));
      column_min_[j] = spec.lo;
    }
  }
}

const hv::RecordEncoder& HdcFeatureExtractor::record_encoder() const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  return *encoder_;
}

hv::BitVector HdcFeatureExtractor::encode_row(std::span<const double> row) const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  if (row.size() != column_min_.size()) {
    throw std::invalid_argument("HdcFeatureExtractor: row arity mismatch");
  }
  bool any_missing = false;
  for (const double v : row) {
    if (data::Dataset::is_missing(v)) any_missing = true;
  }
  if (!any_missing) return encoder_->encode(row);
  if (!config_.missing_as_min) {
    throw std::invalid_argument("HdcFeatureExtractor: missing value in row");
  }
  std::vector<double> fixed(row.begin(), row.end());
  for (std::size_t j = 0; j < fixed.size(); ++j) {
    if (data::Dataset::is_missing(fixed[j])) fixed[j] = column_min_[j];
  }
  return encoder_->encode(fixed);
}

hv::BitVector HdcFeatureExtractor::encode_row(
    std::span<const double> row, hv::RecordEncoder::Scratch& scratch,
    std::vector<double>& row_buffer) const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  if (row.size() != column_min_.size()) {
    throw std::invalid_argument("HdcFeatureExtractor: row arity mismatch");
  }
  bool any_missing = false;
  for (const double v : row) {
    if (data::Dataset::is_missing(v)) any_missing = true;
  }
  if (!any_missing) return encoder_->encode(row, scratch);
  if (!config_.missing_as_min) {
    throw std::invalid_argument("HdcFeatureExtractor: missing value in row");
  }
  row_buffer.assign(row.begin(), row.end());
  for (std::size_t j = 0; j < row_buffer.size(); ++j) {
    if (data::Dataset::is_missing(row_buffer[j])) row_buffer[j] = column_min_[j];
  }
  return encoder_->encode(row_buffer, scratch);
}

namespace {

/// Row accessor for the batch encoder: substitutes missing values with the
/// column minimum into `scratch` (same policy as encode_row).
hv::BatchEncoder::RowFn make_row_fn(const data::Dataset& ds,
                                    const ExtractorConfig& config,
                                    const std::vector<double>& column_min) {
  return [&ds, &config, &column_min](std::size_t i, std::vector<double>& scratch)
             -> std::span<const double> {
    const std::span<const double> row = ds.row(i);
    bool any_missing = false;
    for (const double v : row) {
      if (data::Dataset::is_missing(v)) any_missing = true;
    }
    if (!any_missing) return row;
    if (!config.missing_as_min) {
      throw std::invalid_argument("HdcFeatureExtractor: missing value in row");
    }
    scratch.assign(row.begin(), row.end());
    for (std::size_t j = 0; j < scratch.size(); ++j) {
      if (data::Dataset::is_missing(scratch[j])) scratch[j] = column_min[j];
    }
    return scratch;
  };
}

}  // namespace

std::vector<hv::BitVector> HdcFeatureExtractor::transform(
    const data::Dataset& ds, parallel::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  const hv::BatchEncoder batch(*encoder_, {pool});
  return batch.encode_rows(ds.n_rows(), make_row_fn(ds, config_, column_min_));
}

hv::PackedHVs HdcFeatureExtractor::transform_packed(const data::Dataset& ds,
                                                    parallel::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  const hv::BatchEncoder batch(*encoder_, {pool});
  return batch.encode_packed(ds.n_rows(), make_row_fn(ds, config_, column_min_));
}

hv::BitMatrix HdcFeatureExtractor::transform_bits(const data::Dataset& ds,
                                                  parallel::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  const hv::BatchEncoder batch(*encoder_, {pool});
  return batch.encode_bits(ds.n_rows(), make_row_fn(ds, config_, column_min_));
}

hv::ShardedBitMatrix HdcFeatureExtractor::transform_bits_chunked(
    const data::Dataset& ds, std::size_t shard_rows,
    parallel::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("HdcFeatureExtractor: not fitted");
  const hv::BatchEncoder batch(*encoder_, {pool});
  return batch.encode_bits_chunked(ds.n_rows(), shard_rows,
                                   make_row_fn(ds, config_, column_min_));
}

ml::Matrix HdcFeatureExtractor::transform_to_matrix(const data::Dataset& ds) const {
  const std::vector<hv::BitVector> vectors = transform(ds);
  ml::Matrix out;
  out.reserve(vectors.size());
  for (const hv::BitVector& v : vectors) out.push_back(v.to_doubles());
  return out;
}

}  // namespace hdc::core
