// Shared fold-encoding cache for the experiment grid.
//
// The paper's grid protocol re-fits the HDC extractor on every CV fold — and
// the serial driver does that once per (model, fold) pair, so ten models
// re-encode the identical fold partition ten times. The grid runner instead
// encodes each (dataset, seed, fold, dim) exactly once into a FoldData
// (bit-packed BitMatrix pair + labels, or the dense mirror in raw/unpacked
// mode) and shares it across every model task through this cache.
//
// Entries are ref-counted by *expected consumers*: the producer inserts with
// the number of model tasks that will read the fold, each consumer calls
// release() when its fit/eval finishes, and the entry is evicted the moment
// the count hits zero — so peak memory is bounded by the folds actually in
// flight, not the whole grid. shared_ptr keeps the payload alive for any
// consumer still holding it past eviction.
//
// Kill switch: HDC_FOLD_CACHE=0 (or off/false) disables sharing — every
// consumer then re-encodes its fold itself. Results are bit-identical either
// way (materialize_fold is a pure function of its inputs); only wall-clock
// and memory change. set_fold_cache_enabled() overrides programmatically for
// tests, mirroring the HDC_ML_PACKED / HDC_SIMD conventions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "core/experiment.hpp"

namespace hdc::core {

/// Identity of one encoded fold. The dataset name stands in for the dataset
/// contents (grid callers name their datasets uniquely); everything else
/// that changes the encoding — CV seed, fold index, dimensionality,
/// extractor seed, input mode, packed route — is part of the key.
struct FoldKey {
  std::string dataset;
  std::uint64_t cv_seed = 0;
  std::uint32_t fold = 0;
  std::uint64_t dimensions = 0;
  std::uint64_t extractor_seed = 0;
  InputMode mode = InputMode::kHypervectors;
  bool packed = true;

  friend bool operator<(const FoldKey& a, const FoldKey& b) {
    const auto tie = [](const FoldKey& k) {
      return std::tie(k.dataset, k.cv_seed, k.fold, k.dimensions,
                      k.extractor_seed, k.mode, k.packed);
    };
    return tie(a) < tie(b);
  }
};

/// Current state of the fold-cache switch (HDC_FOLD_CACHE, default on).
[[nodiscard]] bool fold_cache_enabled() noexcept;

/// Force the switch for this process (tests, benches).
void set_fold_cache_enabled(bool enabled) noexcept;

/// Drop any programmatic override and return to HDC_FOLD_CACHE / default.
void reset_fold_cache_enabled() noexcept;

class FoldEncodingCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       // acquire() served from the cache
    std::uint64_t misses = 0;     // acquire() found nothing (or disabled)
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  // entries freed after their last release()
    std::size_t peak_entries = 0;
  };

  /// Store an encoding that `expected_users` consumers will acquire+release.
  /// No-op when the cache is disabled. Inserting an existing key adds the
  /// users to the outstanding count (the payloads are interchangeable by
  /// construction).
  void put(const FoldKey& key, std::shared_ptr<const FoldData> fold,
           std::size_t expected_users);

  /// The cached encoding, or nullptr on miss / disabled cache. Each
  /// successful acquire must be paired with one release().
  [[nodiscard]] std::shared_ptr<const FoldData> acquire(const FoldKey& key);

  /// Signal that one expected user is done with the entry; evicts on zero.
  void release(const FoldKey& key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const FoldData> fold;
    std::size_t users = 0;  // releases still outstanding
  };

  mutable std::mutex mutex_;
  std::map<FoldKey, Entry> entries_;
  Stats stats_;
};

}  // namespace hdc::core
