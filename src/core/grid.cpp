#include "core/grid.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/fold_cache.hpp"
#include "core/manifest.hpp"
#include "data/split.hpp"
#include "ml/packed.hpp"
#include "ml/zoo.hpp"
#include "obs/metrics.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace hdc::core {

namespace {

std::vector<std::string> model_names(const GridConfig& config) {
  if (!config.models.empty()) return config.models;
  std::vector<std::string> names;
  for (const ml::ZooEntry& entry : ml::paper_model_zoo(1.0)) {
    names.push_back(entry.name);
  }
  return names;
}

GridResult run_grid_serial(std::span<const GridDatasetSpec> datasets,
                           const GridConfig& config,
                           const std::vector<std::string>& models) {
  GridResult result;
  result.stats.workers = 1;
  result.stats.model_tasks = datasets.size() * models.size() * config.kfold;
  for (const GridDatasetSpec& spec : datasets) {
    GridDatasetResult ds_result;
    ds_result.dataset = spec.name;
    for (const std::string& model : models) {
      GridModelResult cell;
      cell.model = model;
      cell.cv = kfold_cv_accuracy(*spec.data, model, config.mode, config.kfold,
                                  config.experiment);
      ds_result.models.push_back(std::move(cell));
    }
    if (config.nn_repeats > 0) {
      ds_result.has_nn = true;
      ds_result.nn = nn_protocol(*spec.data, config.mode, config.nn_repeats,
                                 config.experiment, config.nn);
      ++result.stats.nn_tasks;
    }
    result.datasets.push_back(std::move(ds_result));
  }
  return result;
}

/// Per-dataset fold partitions, fixed before the graph runs so every task
/// reads immutable index vectors.
struct DatasetFolds {
  std::vector<std::vector<std::size_t>> train;  // kfold entries
  std::vector<std::vector<std::size_t>> test;
};

GridResult run_grid_scheduled(std::span<const GridDatasetSpec> datasets,
                              const GridConfig& config,
                              const std::vector<std::string>& models) {
  using parallel::TaskGraph;

  const std::size_t workers =
      config.threads == 0 ? parallel::hardware_threads() : config.threads;
  parallel::ThreadPool pool(workers);
  TaskGraph graph;
  FoldEncodingCache cache;
  const bool cached = fold_cache_enabled();
  const bool packed = config.experiment.packed_ml && ml::packed_enabled();
  const std::size_t k = config.kfold;

  // Fold partitions are a pure function of (labels, k, seed) — exactly the
  // StratifiedKFold the serial kfold_run() builds per model.
  std::vector<DatasetFolds> folds(datasets.size());
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const data::StratifiedKFold kf(datasets[d].data->labels(), k,
                                   config.experiment.seed);
    for (std::size_t f = 0; f < k; ++f) {
      folds[d].train.push_back(kf.fold_train(f));
      folds[d].test.push_back(kf.fold_test(f));
    }
  }

  // Result slots, pre-sized so tasks write disjoint cells with no locking.
  // scores[d][m][f]; cvs[d][m]; nns[d].
  std::vector<std::vector<std::vector<double>>> scores(
      datasets.size(), std::vector<std::vector<double>>(
                           models.size(), std::vector<double>(k, 0.0)));
  std::vector<std::vector<eval::CvResult>> cvs(
      datasets.size(), std::vector<eval::CvResult>(models.size()));
  std::vector<NnProtocolResult> nns(datasets.size());

  GridResult result;
  result.stats.workers = workers;

  const auto fold_key = [&](std::size_t d, std::size_t f) {
    FoldKey key;
    key.dataset = datasets[d].name;
    key.cv_seed = config.experiment.seed;
    key.fold = static_cast<std::uint32_t>(f);
    key.dimensions = config.experiment.extractor.dimensions;
    key.extractor_seed = config.experiment.extractor.seed;
    key.mode = config.mode;
    key.packed = packed;
    return key;
  };
  const auto materialize = [&](std::size_t d, std::size_t f) {
    obs::counter("experiment.folds").increment();
    return materialize_fold(*datasets[d].data, folds[d].train[f],
                            folds[d].test[f], config.mode, config.experiment,
                            /*allow_packed=*/true);
  };

  // encode(d, f) tasks — only worth a task when the cache can share them.
  std::vector<std::vector<TaskGraph::TaskId>> encode_ids(datasets.size());
  if (cached) {
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      for (std::size_t f = 0; f < k; ++f) {
        encode_ids[d].push_back(graph.add("grid.encode", [&, d, f] {
          cache.put(fold_key(d, f),
                    std::make_shared<const FoldData>(materialize(d, f)),
                    models.size());
        }));
        ++result.stats.encode_tasks;
      }
    }
  }

  // fit/eval(d, m, f) tasks, fanned out over the shared encodings.
  std::vector<std::vector<std::vector<TaskGraph::TaskId>>> model_ids(
      datasets.size(),
      std::vector<std::vector<TaskGraph::TaskId>>(models.size()));
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      for (std::size_t f = 0; f < k; ++f) {
        const auto body = [&, d, m, f] {
          const FoldKey key = fold_key(d, f);
          std::shared_ptr<const FoldData> fold = cache.acquire(key);
          const bool from_cache = fold != nullptr;
          if (!from_cache) {
            fold = std::make_shared<const FoldData>(materialize(d, f));
          }
          const auto model =
              ml::make_model(models[m], config.experiment.model_budget);
          fit_fold_model(*model, *fold);
          scores[d][m][f] = fold_accuracy(*model, *fold);
          if (from_cache) cache.release(key);
        };
        model_ids[d][m].push_back(
            cached ? graph.add("grid.fit", body, {encode_ids[d][f]})
                   : graph.add("grid.fit", body));
        ++result.stats.model_tasks;
      }
    }
  }

  // reduce(d, m) tasks: aggregate fold scores in fold order.
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      graph.add(
          "grid.reduce",
          [&, d, m] { cvs[d][m] = eval::summarize_folds(scores[d][m]); },
          std::span<const TaskGraph::TaskId>(model_ids[d][m]));
      ++result.stats.reduce_tasks;
    }
  }

  // nn(d) tasks: the Sequential NN repeated-holdout protocol, one per
  // dataset (its repeats share early-stopping state, so it stays one task).
  if (config.nn_repeats > 0) {
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      graph.add("grid.nn", [&, d] {
        nns[d] = nn_protocol(*datasets[d].data, config.mode, config.nn_repeats,
                             config.experiment, config.nn);
      });
      ++result.stats.nn_tasks;
    }
  }

  graph.run(&pool);

  const FoldEncodingCache::Stats cache_stats = cache.stats();
  result.stats.cache_hits = cache_stats.hits;
  result.stats.cache_misses = cache_stats.misses;
  result.stats.cache_evictions = cache_stats.evictions;
  result.stats.cache_peak_entries = cache_stats.peak_entries;
  result.stats.dedup_ratio =
      result.stats.encode_tasks == 0
          ? 0.0
          : static_cast<double>(cache_stats.hits) /
                static_cast<double>(result.stats.encode_tasks);
  result.stats.tasks_executed = graph.executed();
  result.stats.steals = graph.steals();

  for (std::size_t d = 0; d < datasets.size(); ++d) {
    GridDatasetResult ds_result;
    ds_result.dataset = datasets[d].name;
    for (std::size_t m = 0; m < models.size(); ++m) {
      ds_result.models.push_back({models[m], std::move(cvs[d][m])});
    }
    if (config.nn_repeats > 0) {
      ds_result.has_nn = true;
      ds_result.nn = nns[d];
    }
    result.datasets.push_back(std::move(ds_result));
  }
  return result;
}

}  // namespace

GridResult run_grid(std::span<const GridDatasetSpec> datasets,
                    const GridConfig& config) {
  if (config.kfold < 2) throw std::invalid_argument("run_grid: kfold < 2");
  for (const GridDatasetSpec& spec : datasets) {
    if (spec.data == nullptr) {
      throw std::invalid_argument("run_grid: null dataset " + spec.name);
    }
  }
  const std::vector<std::string> models = model_names(config);
  // Resolve every name eagerly: make_model throws on unknown names, and a
  // throw from inside a scheduled task would take down the pool instead.
  for (const std::string& model : models) {
    ml::make_model(model, config.experiment.model_budget);
  }
  GridResult result = config.scheduled
                          ? run_grid_scheduled(datasets, config, models)
                          : run_grid_serial(datasets, config, models);
  // Provenance over the whole sweep (after the run, so the embedded obs
  // snapshot includes the grid's own counters).
  if (!datasets.empty()) {
    result.manifest =
        make_run_manifest(*datasets[0].data, datasets[0].name, config.experiment);
    std::string names;
    std::uint64_t hash = 0;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    for (const GridDatasetSpec& spec : datasets) {
      if (!names.empty()) names.push_back(',');
      names += spec.name;
      hash = mix_hash(hash, dataset_fingerprint(*spec.data));
      rows += spec.data->n_rows();
      cols = std::max<std::uint64_t>(cols, spec.data->n_cols());
    }
    result.manifest.dataset = std::move(names);
    result.manifest.dataset_hash = hash;
    result.manifest.rows = rows;
    result.manifest.cols = cols;
    result.manifest.threads = result.stats.workers;
  }
  return result;
}

}  // namespace hdc::core
