// Hamming-distance classification over patient hypervectors — the paper's
// pure HDC model (Section II-C): 1-nearest-neighbour by Hamming distance,
// validated with leave-one-out. A prototype (associative-memory) mode is
// also provided: each class is bundled into one prototype hypervector and
// queries snap to the nearer prototype.
#pragma once

#include <vector>

#include "eval/metrics.hpp"
#include "hv/bitvector.hpp"
#include "hv/ops.hpp"
#include "hv/search.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::core {

enum class HammingMode {
  kNearestNeighbor,  // the paper's model
  kPrototype,        // classic HDC associative memory
};

class HammingClassifier {
 public:
  /// `k` = number of nearest neighbours voting in kNearestNeighbor mode
  /// (the paper uses 1); ignored in prototype mode.
  explicit HammingClassifier(HammingMode mode = HammingMode::kNearestNeighbor,
                             std::size_t k = 1)
      : mode_(mode), k_(k) {
    if (k_ == 0) throw std::invalid_argument("HammingClassifier: k must be >= 1");
  }

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  /// Store (and, in prototype mode, bundle) the training hypervectors.
  void fit(std::vector<hv::BitVector> vectors, std::vector<int> labels);

  [[nodiscard]] bool fitted() const noexcept { return !labels_.empty(); }
  [[nodiscard]] HammingMode mode() const noexcept { return mode_; }

  /// Predicted class of a query hypervector.
  [[nodiscard]] int predict(const hv::BitVector& query) const;

  /// Distance-ratio score in [0,1]; > 0.5 favours the positive class.
  [[nodiscard]] double predict_score(const hv::BitVector& query) const;

  /// Class prototypes (prototype mode only).
  [[nodiscard]] const hv::BitVector& prototype(int label) const;

  /// Stored training data (for serialization).
  [[nodiscard]] const std::vector<hv::BitVector>& training_vectors() const noexcept {
    return vectors_;
  }
  [[nodiscard]] const std::vector<int>& training_labels() const noexcept {
    return labels_;
  }

 private:
  HammingMode mode_;
  std::size_t k_ = 1;
  std::vector<hv::BitVector> vectors_;
  hv::PackedHVs packed_;  // training vectors packed for the search kernel
  std::vector<int> labels_;
  hv::BitVector prototypes_[2];
};

/// Leave-one-out evaluation of the 1-NN Hamming model over a full dataset of
/// hypervectors (the paper's validation protocol): each vector is classified
/// by its nearest *other* vector. Runs through the blocked all-pairs kernel
/// in hv/search; results are identical for any `pool` / thread count.
[[nodiscard]] std::vector<int> hamming_loo_predictions(
    const std::vector<hv::BitVector>& vectors, const std::vector<int>& labels,
    parallel::ThreadPool* pool = nullptr);

/// Convenience: LOO predictions -> full metrics.
[[nodiscard]] eval::BinaryMetrics hamming_loo_metrics(
    const std::vector<hv::BitVector>& vectors, const std::vector<int>& labels,
    parallel::ThreadPool* pool = nullptr);

}  // namespace hdc::core
