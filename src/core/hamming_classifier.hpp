// Hamming-distance classification over patient hypervectors — the paper's
// pure HDC model (Section II-C): 1-nearest-neighbour by Hamming distance,
// validated with leave-one-out. A prototype (associative-memory) mode is
// also provided: each class is bundled into one prototype hypervector and
// queries snap to the nearer prototype.
#pragma once

#include <optional>
#include <vector>

#include "eval/metrics.hpp"
#include "hv/ann.hpp"
#include "hv/bitvector.hpp"
#include "hv/ops.hpp"
#include "hv/search.hpp"

namespace hdc::parallel {
class ThreadPool;
}

namespace hdc::core {

enum class HammingMode {
  kNearestNeighbor,  // the paper's model
  kPrototype,        // classic HDC associative memory
};

class HammingClassifier {
 public:
  /// `k` = number of nearest neighbours voting in kNearestNeighbor mode
  /// (the paper uses 1); ignored in prototype mode.
  explicit HammingClassifier(HammingMode mode = HammingMode::kNearestNeighbor,
                             std::size_t k = 1)
      : mode_(mode), k_(k) {
    if (k_ == 0) throw std::invalid_argument("HammingClassifier: k must be >= 1");
  }

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  /// Store (and, in prototype mode, bundle) the training hypervectors.
  void fit(std::vector<hv::BitVector> vectors, std::vector<int> labels);

  [[nodiscard]] bool fitted() const noexcept { return !labels_.empty(); }
  [[nodiscard]] HammingMode mode() const noexcept { return mode_; }

  /// Predicted class of a query hypervector. The optional `stats` out-param
  /// receives the ANN work accounting when the index path answered the query
  /// (untouched on the exact path — callers can zero-init and inspect).
  [[nodiscard]] int predict(const hv::BitVector& query,
                            hv::ann::SearchStats* stats = nullptr) const;

  /// Distance-ratio score in [0,1]; > 0.5 favours the positive class.
  [[nodiscard]] double predict_score(const hv::BitVector& query,
                                     hv::ann::SearchStats* stats = nullptr) const;

  /// Build (or rebuild) an approximate-NN index over the stored training
  /// vectors; k-NN queries then route through it. Prototype mode has no
  /// database to index, so enabling there throws.
  void enable_ann(const hv::ann::Config& config = {});

  /// Adopt a prebuilt index (bundle load path — avoids paying the build at
  /// serve start-up). The index fingerprint must match the stored training
  /// vectors; throws std::invalid_argument otherwise.
  void attach_ann(hv::ann::Index index);

  void disable_ann() noexcept { ann_.reset(); }
  [[nodiscard]] bool ann_enabled() const noexcept { return ann_.has_value(); }
  /// The attached index, or nullptr (for bundle save / introspection).
  [[nodiscard]] const hv::ann::Index* ann_index() const noexcept {
    return ann_ ? &*ann_ : nullptr;
  }
  /// Per-query probe-width override for the attached index (0 = the index
  /// default). Serve's --nprobe flag lands here.
  void set_ann_nprobe(std::size_t nprobe) noexcept { ann_nprobe_ = nprobe; }
  [[nodiscard]] std::size_t ann_nprobe() const noexcept { return ann_nprobe_; }

  /// Packed training vectors (the ANN index's database).
  [[nodiscard]] const hv::PackedHVs& packed_vectors() const noexcept {
    return packed_;
  }

  /// Class prototypes (prototype mode only).
  [[nodiscard]] const hv::BitVector& prototype(int label) const;

  /// Stored training data (for serialization).
  [[nodiscard]] const std::vector<hv::BitVector>& training_vectors() const noexcept {
    return vectors_;
  }
  [[nodiscard]] const std::vector<int>& training_labels() const noexcept {
    return labels_;
  }

 private:
  HammingMode mode_;
  std::size_t k_ = 1;
  std::vector<hv::BitVector> vectors_;
  hv::PackedHVs packed_;  // training vectors packed for the search kernel
  std::vector<int> labels_;
  hv::BitVector prototypes_[2];
  std::optional<hv::ann::Index> ann_;  // opt-in sub-linear k-NN path
  std::size_t ann_nprobe_ = 0;         // 0 = index default
};

/// Leave-one-out evaluation of the 1-NN Hamming model over a full dataset of
/// hypervectors (the paper's validation protocol): each vector is classified
/// by its nearest *other* vector. Runs through the blocked all-pairs kernel
/// in hv/search; results are identical for any `pool` / thread count.
[[nodiscard]] std::vector<int> hamming_loo_predictions(
    const std::vector<hv::BitVector>& vectors, const std::vector<int>& labels,
    parallel::ThreadPool* pool = nullptr);

/// Convenience: LOO predictions -> full metrics.
[[nodiscard]] eval::BinaryMetrics hamming_loo_metrics(
    const std::vector<hv::BitVector>& vectors, const std::vector<int>& labels,
    parallel::ThreadPool* pool = nullptr);

}  // namespace hdc::core
