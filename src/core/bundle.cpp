#include "core/bundle.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/serialize.hpp"
#include "ml/zoo.hpp"
#include "util/serde.hpp"
#include "util/str.hpp"

namespace hdc::core {

namespace {

constexpr const char* kBundleMagic = "hdc-bundle v1";
constexpr std::size_t kMaxSections = 4096;
constexpr std::size_t kMaxSectionBytes = 1ULL << 30;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("load_bundle: " + message);
}

std::string read_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    fail(std::string("unexpected end of input at ") + what);
  }
  return line;
}

/// One parsed-but-not-yet-decoded section.
struct RawSection {
  std::string name;
  std::string body;
};

std::vector<RawSection> read_sections(std::istream& in) {
  if (read_line(in, "magic") != kBundleMagic) {
    fail("bad magic (not a bundle, or unsupported version)");
  }
  std::istringstream counts(read_line(in, "section count"));
  std::string keyword;
  std::size_t n_sections = 0;
  if (!(counts >> keyword >> n_sections) || keyword != "sections") {
    fail("bad section-count line");
  }
  if (n_sections > kMaxSections) fail("section count out of range");

  std::vector<RawSection> sections;
  sections.reserve(n_sections);
  for (std::size_t s = 0; s < n_sections; ++s) {
    std::istringstream header(read_line(in, "section header"));
    std::string name_token;
    std::size_t bytes = 0;
    std::string checksum;
    std::string trailing;
    if (!(header >> keyword >> name_token >> bytes >> checksum) ||
        keyword != "section" || (header >> trailing)) {
      fail("bad section header");
    }
    if (name_token.empty() || name_token.front() != '~') {
      fail("bad section name token '" + name_token + "'");
    }
    RawSection section;
    try {
      section.name = util::serde::unescape(std::string_view(name_token).substr(1));
    } catch (const std::runtime_error& e) {
      fail(std::string("bad section name token: ") + e.what());
    }
    if (bytes > kMaxSectionBytes) {
      fail("section '" + section.name + "' byte count out of range");
    }
    section.body.resize(bytes);
    in.read(section.body.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes) {
      fail("section '" + section.name + "' truncated");
    }
    // Integrity check before any parser sees the body.
    const std::string expected = util::serde::hex16(util::serde::fnv1a64(section.body));
    if (checksum != expected) {
      fail("section '" + section.name + "' checksum mismatch (header " + checksum +
           ", body " + expected + ")");
    }
    if (in.get() != '\n') {
      fail("section '" + section.name + "' missing trailing newline");
    }
    for (const RawSection& seen : sections) {
      if (seen.name == section.name) {
        fail("duplicate section '" + section.name + "'");
      }
    }
    sections.push_back(std::move(section));
  }
  if (util::trim(read_line(in, "end marker")) != "end") fail("missing end marker");
  return sections;
}

void write_section(std::ostream& out, std::string_view name,
                   const std::string& body) {
  out << "section ~" << util::serde::escape(name) << ' ' << body.size() << ' '
      << util::serde::hex16(util::serde::fnv1a64(body)) << '\n';
  out << body << '\n';
}

}  // namespace

const ml::Classifier* ModelBundle::find_model(std::string_view name) const {
  for (const auto& model : models) {
    if (model && model->name() == name) return model.get();
  }
  return nullptr;
}

std::vector<std::string> ModelBundle::model_names() const {
  std::vector<std::string> names;
  names.reserve(models.size());
  for (const auto& model : models) {
    if (model) names.push_back(model->name());
  }
  return names;
}

void save_bundle(std::ostream& out, const ModelBundle& bundle) {
  std::vector<std::pair<std::string, std::string>> sections;
  const auto add = [&sections](std::string name, const auto& saver) {
    std::ostringstream body;
    saver(body);
    sections.emplace_back(std::move(name), body.str());
  };

  if (bundle.extractor) {
    add("extractor",
        [&](std::ostream& o) { save_extractor(o, *bundle.extractor); });
  }
  if (bundle.hamming) {
    add("hamming", [&](std::ostream& o) { save_hamming(o, *bundle.hamming); });
    if (const hv::ann::Index* ann = bundle.hamming->ann_index()) {
      // The prebuilt ANN index rides along so serve start-up skips the
      // build; load re-verifies its fingerprint against the hamming rows.
      add("ann", [&](std::ostream& o) { ann->save(o); });
    }
  }
  if (bundle.minmax_scaler && bundle.minmax_scaler->fitted()) {
    add("scaler.minmax", [&](std::ostream& o) { bundle.minmax_scaler->save(o); });
  }
  if (bundle.standard_scaler && bundle.standard_scaler->fitted()) {
    add("scaler.standard",
        [&](std::ostream& o) { bundle.standard_scaler->save(o); });
  }
  if (bundle.online && bundle.online->fitted()) {
    add("online", [&](std::ostream& o) { bundle.online->save(o); });
  }
  if (bundle.nn) {
    add("nn", [&](std::ostream& o) { bundle.nn->save_state(o); });
  }
  for (const auto& model : bundle.models) {
    if (!model) continue;
    add("model:" + model->name(),
        [&](std::ostream& o) { model->save_state(o); });
  }
  if (bundle.manifest) {
    add("manifest",
        [&](std::ostream& o) { save_manifest(o, *bundle.manifest); });
  }
  if (sections.empty()) {
    throw std::logic_error("save_bundle: bundle has no fitted members");
  }

  out << kBundleMagic << '\n';
  out << "sections " << sections.size() << '\n';
  for (const auto& [name, body] : sections) write_section(out, name, body);
  out << "end\n";
}

ModelBundle load_bundle(std::istream& in) {
  ModelBundle bundle;
  std::optional<hv::ann::Index> ann_section;
  for (RawSection& section : read_sections(in)) {
    std::istringstream body(section.body);
    try {
      if (section.name == "extractor") {
        bundle.extractor = load_extractor(body);
      } else if (section.name == "hamming") {
        bundle.hamming = load_hamming(body);
      } else if (section.name == "ann") {
        // Attached after the loop: section order in the file is not a
        // contract, and the index must verify against the hamming rows.
        ann_section = hv::ann::Index::load(body);
      } else if (section.name == "scaler.minmax") {
        bundle.minmax_scaler.emplace();
        bundle.minmax_scaler->load(body);
      } else if (section.name == "scaler.standard") {
        bundle.standard_scaler.emplace();
        bundle.standard_scaler->load(body);
      } else if (section.name == "online") {
        bundle.online.emplace();
        bundle.online->load(body);
      } else if (section.name == "nn") {
        bundle.nn = std::make_unique<nn::Sequential>();
        bundle.nn->load_state(body);
      } else if (section.name == "manifest") {
        bundle.manifest = load_manifest(body);
      } else if (section.name.rfind("model:", 0) == 0) {
        // make_model throws on unknown names, covering bad model sections.
        auto model = ml::make_model(section.name.substr(6));
        model->load_state(body);
        bundle.models.push_back(std::move(model));
      } else {
        throw std::runtime_error("unknown section name");
      }
    } catch (const std::runtime_error& e) {
      fail("section '" + section.name + "': " + e.what());
    } catch (const std::invalid_argument& e) {
      fail("section '" + section.name + "': " + e.what());
    }
  }
  if (ann_section) {
    if (!bundle.hamming) {
      fail("section 'ann': requires a hamming section");
    }
    try {
      bundle.hamming->attach_ann(std::move(*ann_section));
    } catch (const std::exception& e) {
      fail(std::string("section 'ann': ") + e.what());
    }
  }
  return bundle;
}

void save_bundle_file(const std::string& path, const ModelBundle& bundle) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_bundle: cannot open " + path);
  save_bundle(out, bundle);
  if (!out) throw std::runtime_error("save_bundle: write failed for " + path);
}

ModelBundle load_bundle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_bundle: cannot open " + path);
  return load_bundle(in);
}

}  // namespace hdc::core
