// Online / retrained HDC classification — the "self-improving" models the
// paper's future-work section points to, using the standard HDC retraining
// scheme (Imani et al.): class prototypes live in integer space; an initial
// pass bundles every training vector into its class prototype, then
// retraining epochs add each misclassified vector to its true class and
// subtract it from the wrongly predicted class. partial_fit() applies the
// same rule to one new labelled patient at a time, which is what a
// follow-up-visit deployment needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "eval/metrics.hpp"
#include "hv/bitvector.hpp"
#include "hv/int_vector.hpp"

namespace hdc::core {

struct OnlineHdConfig {
  std::size_t max_epochs = 30;
  /// Stop retraining as soon as a full epoch makes no update.
  bool stop_when_converged = true;
  /// Process samples in a deterministic shuffled order per epoch.
  std::uint64_t seed = 97;
};

class OnlineHdClassifier {
 public:
  explicit OnlineHdClassifier(OnlineHdConfig config = {});

  /// Bundle + retrain on a labelled set of patient hypervectors.
  void fit(const std::vector<hv::BitVector>& vectors, const std::vector<int>& labels);

  [[nodiscard]] bool fitted() const noexcept { return dimensions_ != 0; }

  /// Single-sample online update (initialises the model on first call).
  void partial_fit(const hv::BitVector& vector, int label);

  [[nodiscard]] int predict(const hv::BitVector& vector) const;

  /// Margin score: cosine(v, proto1) - cosine(v, proto0); positive favours
  /// the positive class.
  [[nodiscard]] double margin(const hv::BitVector& vector) const;

  /// Misclassification-driven updates applied in each retraining epoch of
  /// the last fit(); converged when the trailing entry is 0.
  [[nodiscard]] const std::vector<std::size_t>& updates_per_epoch() const noexcept {
    return updates_per_epoch_;
  }

  [[nodiscard]] const hv::IntVector& prototype(int label) const;

  /// Persist / restore the integer prototypes and config (bundle section).
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  void ensure_dimensions(std::size_t dims);

  OnlineHdConfig config_;
  std::size_t dimensions_ = 0;
  hv::IntVector prototypes_[2];
  std::vector<std::size_t> updates_per_epoch_;
};

}  // namespace hdc::core
