#include "core/serve.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hv/bit_matrix.hpp"
#include "hv/search.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace hdc::core {

namespace {

parallel::ThreadPool& resolve_pool(parallel::ThreadPool* pool) {
  return pool != nullptr ? *pool : parallel::ThreadPool::global();
}

/// Streaming per-request latency for live /metrics scrapes (p50/p90/p99
/// over the retained windows). Registered once; record() is obs-gated.
obs::WindowedHistogram& serve_latency() {
  static obs::WindowedHistogram& h =
      obs::windowed_histogram("serve.latency_seconds");
  return h;
}

}  // namespace

ServeEngine::ServeEngine(ModelBundle bundle, ServeConfig config)
    : bundle_(std::move(bundle)), config_(std::move(config)) {
  if (!bundle_.extractor || !bundle_.extractor->fitted()) {
    throw std::invalid_argument("ServeEngine: bundle has no fitted extractor");
  }
  if (config_.max_batch == 0) {
    throw std::invalid_argument("ServeEngine: max_batch must be >= 1");
  }
  const std::string& want = config_.model;
  if (want.empty() || want == "hamming") {
    if (bundle_.hamming) {
      kind_ = PredictorKind::kHamming;
      model_name_ = "hamming";
    } else if (want == "hamming") {
      throw std::invalid_argument("ServeEngine: bundle has no hamming section");
    }
  }
  if (model_name_.empty() && (want.empty() || want == "nn")) {
    if (bundle_.nn) {
      kind_ = PredictorKind::kNn;
      model_name_ = "nn";
    } else if (want == "nn") {
      throw std::invalid_argument("ServeEngine: bundle has no nn section");
    }
  }
  if (model_name_.empty()) {
    if (want.empty()) {
      if (bundle_.models.empty()) {
        throw std::invalid_argument("ServeEngine: bundle has no predictor");
      }
      ml_model_ = bundle_.models.front().get();
    } else {
      ml_model_ = bundle_.find_model(want);
      if (ml_model_ == nullptr) {
        throw std::invalid_argument("ServeEngine: bundle has no model '" + want +
                                    "'");
      }
    }
    kind_ = PredictorKind::kMl;
    model_name_ = ml_model_->name();
  }
  if (config_.ann && kind_ != PredictorKind::kHamming) {
    throw std::invalid_argument(
        "ServeEngine: ann requires the hamming predictor");
  }
  if (bundle_.hamming) {
    if (config_.ann) {
      // Prefer the index persisted in the bundle (attached by load_bundle);
      // build one here only when the bundle carries none.
      if (!bundle_.hamming->ann_enabled()) bundle_.hamming->enable_ann();
      bundle_.hamming->set_ann_nprobe(config_.nprobe);
    } else {
      // Exact serving stays byte-identical to the kernels even when the
      // bundle happens to carry an index.
      bundle_.hamming->disable_ann();
    }
  }
}

ServeEngine::~ServeEngine() { shutdown(); }

std::unique_ptr<ServeEngine::Scratch> ServeEngine::acquire_scratch() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<Scratch> scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<Scratch>();
}

void ServeEngine::release_scratch(std::unique_ptr<Scratch> scratch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  scratch_pool_.push_back(std::move(scratch));
}

int ServeEngine::predict_encoded(const hv::BitVector& encoded) const {
  switch (kind_) {
    case PredictorKind::kHamming: {
      if (bundle_.hamming->ann_enabled()) {
        hv::ann::SearchStats stats;
        const int prediction = bundle_.hamming->predict(encoded, &stats);
        if (obs::enabled() && stats.queries > 0) {
          obs::counter("serve.ann.candidates").add(stats.candidates);
          obs::counter("serve.ann.probes").add(stats.probes);
          if (stats.candidates > 0) {
            obs::histogram("serve.ann.rerank_fraction")
                .record(static_cast<double>(stats.reranked) /
                        static_cast<double>(stats.candidates));
          }
        }
        return prediction;
      }
      return bundle_.hamming->predict(encoded);
    }
    case PredictorKind::kNn: {
      // Per-row evaluation in both serve paths, so batching cannot change
      // the answer.
      std::vector<double> dense(encoded.size());
      for (std::size_t i = 0; i < dense.size(); ++i) {
        dense[i] = encoded.get(i) ? 1.0 : 0.0;
      }
      return bundle_.nn->predict_proba(dense) >= 0.5 ? 1 : 0;
    }
    case PredictorKind::kMl:
      break;
  }
  // Single request through the same packed row-independent kernel the
  // coalesced path uses — bit-identical by construction.
  hv::PackedHVs packed(encoded.size(), 1);
  packed.set_row(0, encoded);
  return ml_model_->predict_all_bits(hv::BitMatrix::from_rows(std::move(packed)))
      .front();
}

int ServeEngine::classify(std::span<const double> row) {
  obs::Span span("serve.classify");
  const util::Timer timer;  // one clock read; negligible next to encode
  std::unique_ptr<Scratch> scratch = acquire_scratch();
  int prediction = 0;
  try {
    const hv::BitVector encoded = bundle_.extractor->encode_row(
        row, scratch->encoder, scratch->row_buffer);
    prediction = predict_encoded(encoded);
  } catch (...) {
    release_scratch(std::move(scratch));
    throw;
  }
  release_scratch(std::move(scratch));
  served_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("serve.requests").add(1);
  serve_latency().record(timer.seconds());
  return prediction;
}

std::future<int> ServeEngine::submit(std::vector<double> row) {
  Request request;
  request.row = std::move(row);
  std::future<int> result = request.result.get_future();
  bool start_drain = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("ServeEngine: submit after shutdown");
    }
    queue_.push_back(std::move(request));
    obs::gauge("serve.queue_depth").add(1);
    if (!draining_) {
      draining_ = true;
      start_drain = true;
    }
  }
  if (start_drain) {
    resolve_pool(config_.pool).submit([this] { drain(); });
  }
  return result;
}

void ServeEngine::drain() {
  obs::Span span("serve.drain");
  // ThreadPool tasks must not throw; every failure lands in a promise.
  for (;;) {
    std::vector<Request> batch;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const std::size_t take = std::min(queue_.size(), config_.max_batch);
      if (take == 0) {
        draining_ = false;
        idle_cv_.notify_all();
        return;
      }
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      obs::gauge("serve.queue_depth").add(-static_cast<std::int64_t>(take));
    }
    const util::Timer batch_timer;

    std::unique_ptr<Scratch> scratch = acquire_scratch();
    // Encode sequentially; a bad record fails its own promise only.
    std::vector<hv::BitVector> encoded;
    std::vector<std::size_t> valid;  // batch index of each encoded row
    encoded.reserve(batch.size());
    valid.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        encoded.push_back(bundle_.extractor->encode_row(
            batch[i].row, scratch->encoder, scratch->row_buffer));
        valid.push_back(i);
      } catch (...) {
        batch[i].result.set_exception(std::current_exception());
      }
    }
    release_scratch(std::move(scratch));

    if (kind_ == PredictorKind::kMl && !encoded.empty()) {
      // The coalescing payoff: one packed predict for the whole sweep.
      std::vector<int> predictions;
      try {
        hv::PackedHVs packed(encoded.front().size(), encoded.size());
        for (std::size_t i = 0; i < encoded.size(); ++i) {
          packed.set_row(i, encoded[i]);
        }
        predictions =
            ml_model_->predict_all_bits(hv::BitMatrix::from_rows(std::move(packed)));
      } catch (...) {
        for (const std::size_t i : valid) {
          batch[i].result.set_exception(std::current_exception());
        }
      }
      if (predictions.size() == valid.size()) {
        for (std::size_t i = 0; i < valid.size(); ++i) {
          batch[valid[i]].result.set_value(predictions[i]);
        }
        served_.fetch_add(valid.size(), std::memory_order_relaxed);
        obs::counter("serve.requests").add(valid.size());
      }
    } else {
      for (std::size_t i = 0; i < valid.size(); ++i) {
        try {
          batch[valid[i]].result.set_value(predict_encoded(encoded[i]));
          served_.fetch_add(1, std::memory_order_relaxed);
          obs::counter("serve.requests").add(1);
        } catch (...) {
          batch[valid[i]].result.set_exception(std::current_exception());
        }
      }
    }
    obs::counter("serve.batches").add(1);
    obs::histogram("serve.batch_size").record(static_cast<double>(batch.size()));
    if (obs::enabled() && !batch.empty()) {
      // Per-request share of the batch's wall time: the coalesced analogue
      // of classify()'s latency sample.
      const double per_request =
          batch_timer.seconds() / static_cast<double>(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        serve_latency().record(per_request);
      }
    }
  }
}

void ServeEngine::shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  idle_cv_.wait(lock, [this] { return queue_.empty() && !draining_; });
}

std::uint64_t ServeEngine::requests_served() const noexcept {
  return served_.load(std::memory_order_relaxed);
}

}  // namespace hdc::core
