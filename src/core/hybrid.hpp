// HybridModel — the paper's HDC+ML pipeline: hypervector feature extraction
// feeding any downstream classifier (including the Sequential NN, which is
// itself an ml::Classifier). Fitting the hybrid fits the extractor on the
// training rows only, so encoding ranges never leak test data.
#pragma once

#include <memory>

#include "core/extractor.hpp"
#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "ml/classifier.hpp"

namespace hdc::core {

class HybridModel {
 public:
  HybridModel(ExtractorConfig extractor_config,
              std::unique_ptr<ml::Classifier> downstream);

  /// Fit extractor + downstream model on a dataset.
  void fit(const data::Dataset& train);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Predict one raw feature row (it is encoded internally).
  [[nodiscard]] int predict(std::span<const double> row) const;
  [[nodiscard]] double predict_proba(std::span<const double> row) const;

  /// Predict a whole dataset.
  [[nodiscard]] std::vector<int> predict_all(const data::Dataset& ds) const;

  /// Evaluate on a held-out dataset.
  [[nodiscard]] eval::BinaryMetrics evaluate(const data::Dataset& test) const;

  [[nodiscard]] const HdcFeatureExtractor& extractor() const noexcept {
    return extractor_;
  }
  [[nodiscard]] const ml::Classifier& downstream() const { return *downstream_; }

 private:
  HdcFeatureExtractor extractor_;
  std::unique_ptr<ml::Classifier> downstream_;
  bool fitted_ = false;
};

}  // namespace hdc::core
