#include "core/hamming_classifier.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace hdc::core {

void HammingClassifier::fit(std::vector<hv::BitVector> vectors,
                            std::vector<int> labels) {
  if (vectors.empty() || vectors.size() != labels.size()) {
    throw std::invalid_argument("HammingClassifier: bad training data");
  }
  for (const int y : labels) {
    if (y != 0 && y != 1) {
      throw std::invalid_argument("HammingClassifier: labels must be 0/1");
    }
  }
  vectors_ = std::move(vectors);
  labels_ = std::move(labels);

  if (mode_ == HammingMode::kPrototype) {
    hv::BitAccumulator acc[2] = {hv::BitAccumulator(vectors_.front().size()),
                                 hv::BitAccumulator(vectors_.front().size())};
    for (std::size_t i = 0; i < vectors_.size(); ++i) {
      acc[static_cast<std::size_t>(labels_[i])].add(vectors_[i]);
    }
    for (int c : {0, 1}) {
      if (acc[c].total() == 0) {
        throw std::invalid_argument("HammingClassifier: prototype mode needs both classes");
      }
      prototypes_[c] = acc[c].to_majority();
    }
  }
}

int HammingClassifier::predict(const hv::BitVector& query) const {
  return predict_score(query) >= 0.5 ? 1 : 0;
}

double HammingClassifier::predict_score(const hv::BitVector& query) const {
  if (!fitted()) throw std::logic_error("HammingClassifier: not fitted");
  if (mode_ == HammingMode::kPrototype) {
    const double d0 = query.hamming_fraction(prototypes_[0]);
    const double d1 = query.hamming_fraction(prototypes_[1]);
    const double total = d0 + d1;
    return total > 0.0 ? d0 / total : 0.5;  // closer to prototype 1 -> > 0.5
  }
  // k-NN vote (k = 1 gives the paper's model: score 1 iff the nearest
  // neighbour is positive). Distance ties resolve toward the earliest
  // training row, matching a stable sort.
  const std::size_t k = std::min(k_, vectors_.size());
  if (k == 1) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    int best_label = 0;
    for (std::size_t i = 0; i < vectors_.size(); ++i) {
      const std::size_t d = query.hamming(vectors_[i]);
      if (d < best) {
        best = d;
        best_label = labels_[i];
      }
    }
    return best_label == 1 ? 1.0 : 0.0;
  }
  std::vector<std::pair<std::size_t, std::size_t>> dist;  // (distance, index)
  dist.reserve(vectors_.size());
  for (std::size_t i = 0; i < vectors_.size(); ++i) {
    dist.emplace_back(query.hamming(vectors_[i]), i);
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());
  std::size_t positive_votes = 0;
  for (std::size_t i = 0; i < k; ++i) {
    positive_votes += labels_[dist[i].second] == 1 ? 1 : 0;
  }
  return static_cast<double>(positive_votes) / static_cast<double>(k);
}

const hv::BitVector& HammingClassifier::prototype(int label) const {
  if (mode_ != HammingMode::kPrototype) {
    throw std::logic_error("HammingClassifier: prototypes need kPrototype mode");
  }
  if (label != 0 && label != 1) {
    throw std::invalid_argument("HammingClassifier: label must be 0/1");
  }
  return prototypes_[static_cast<std::size_t>(label)];
}

std::vector<int> hamming_loo_predictions(const std::vector<hv::BitVector>& vectors,
                                         const std::vector<int>& labels) {
  if (vectors.size() != labels.size() || vectors.size() < 2) {
    throw std::invalid_argument("hamming_loo: need >= 2 labelled vectors");
  }
  std::vector<int> predictions(vectors.size());
  parallel::parallel_for(0, vectors.size(), [&](std::size_t i) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    int best_label = 0;
    for (std::size_t j = 0; j < vectors.size(); ++j) {
      if (j == i) continue;
      const std::size_t d = vectors[i].hamming(vectors[j]);
      if (d < best) {
        best = d;
        best_label = labels[j];
      }
    }
    predictions[i] = best_label;
  });
  return predictions;
}

eval::BinaryMetrics hamming_loo_metrics(const std::vector<hv::BitVector>& vectors,
                                        const std::vector<int>& labels) {
  return eval::compute_metrics(labels, hamming_loo_predictions(vectors, labels));
}

}  // namespace hdc::core
