#include "core/hamming_classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "eval/cross_validation.hpp"
#include "parallel/thread_pool.hpp"

namespace hdc::core {

void HammingClassifier::fit(std::vector<hv::BitVector> vectors,
                            std::vector<int> labels) {
  if (vectors.empty() || vectors.size() != labels.size()) {
    throw std::invalid_argument("HammingClassifier: bad training data");
  }
  for (const int y : labels) {
    if (y != 0 && y != 1) {
      throw std::invalid_argument("HammingClassifier: labels must be 0/1");
    }
  }
  vectors_ = std::move(vectors);
  packed_ = hv::PackedHVs::pack(vectors_);
  labels_ = std::move(labels);
  ann_.reset();  // any attached index was built over the previous database

  if (mode_ == HammingMode::kPrototype) {
    hv::BitAccumulator acc[2] = {hv::BitAccumulator(vectors_.front().size()),
                                 hv::BitAccumulator(vectors_.front().size())};
    for (std::size_t i = 0; i < vectors_.size(); ++i) {
      acc[static_cast<std::size_t>(labels_[i])].add(vectors_[i]);
    }
    for (int c : {0, 1}) {
      if (acc[c].total() == 0) {
        throw std::invalid_argument("HammingClassifier: prototype mode needs both classes");
      }
      prototypes_[c] = acc[c].to_majority();
    }
  }
}

int HammingClassifier::predict(const hv::BitVector& query,
                               hv::ann::SearchStats* stats) const {
  return predict_score(query, stats) >= 0.5 ? 1 : 0;
}

double HammingClassifier::predict_score(const hv::BitVector& query,
                                        hv::ann::SearchStats* stats) const {
  if (!fitted()) throw std::logic_error("HammingClassifier: not fitted");
  if (mode_ == HammingMode::kPrototype) {
    const double d0 = query.hamming_fraction(prototypes_[0]);
    const double d1 = query.hamming_fraction(prototypes_[1]);
    const double total = d0 + d1;
    return total > 0.0 ? d0 / total : 0.5;  // closer to prototype 1 -> > 0.5
  }
  // k-NN vote (k = 1 gives the paper's model: score 1 iff the nearest
  // neighbour is positive). Distance ties resolve toward the earliest
  // training row; both kernels guarantee (distance, index) ordering, and
  // the ANN path preserves it over its reranked candidate set.
  const std::size_t k = std::min(k_, vectors_.size());
  const hv::PackedHVs packed_query = hv::PackedHVs::pack({&query, 1});
  if (ann_) {
    hv::ann::SearchOptions options;
    options.nprobe = ann_nprobe_;
    if (k == 1) {
      const std::vector<hv::Neighbor> nearest =
          ann_->nearest(packed_query, packed_, options, stats);
      return labels_[nearest.front().index] == 1 ? 1.0 : 0.0;
    }
    const std::vector<std::vector<hv::Neighbor>> nearest =
        ann_->top_k(packed_query, packed_, k, options, stats);
    std::size_t positive_votes = 0;
    for (const hv::Neighbor& n : nearest.front()) {
      positive_votes += labels_[n.index] == 1 ? 1 : 0;
    }
    return static_cast<double>(positive_votes) / static_cast<double>(k);
  }
  if (k == 1) {
    const std::vector<hv::Neighbor> nearest =
        hv::nearest_neighbors(packed_query, packed_);
    return labels_[nearest.front().index] == 1 ? 1.0 : 0.0;
  }
  const std::vector<std::vector<hv::Neighbor>> nearest =
      hv::top_k_neighbors(packed_query, packed_, k);
  std::size_t positive_votes = 0;
  for (const hv::Neighbor& n : nearest.front()) {
    positive_votes += labels_[n.index] == 1 ? 1 : 0;
  }
  return static_cast<double>(positive_votes) / static_cast<double>(k);
}

void HammingClassifier::enable_ann(const hv::ann::Config& config) {
  if (!fitted()) throw std::logic_error("HammingClassifier: not fitted");
  if (mode_ == HammingMode::kPrototype) {
    throw std::logic_error(
        "HammingClassifier: ANN needs kNearestNeighbor mode (prototype mode "
        "has no training database to index)");
  }
  ann_ = hv::ann::Index::build(packed_, config);
}

void HammingClassifier::attach_ann(hv::ann::Index index) {
  if (!fitted()) throw std::logic_error("HammingClassifier: not fitted");
  if (mode_ == HammingMode::kPrototype) {
    throw std::logic_error(
        "HammingClassifier: ANN needs kNearestNeighbor mode");
  }
  index.check_database(packed_);  // throws on fingerprint/shape mismatch
  ann_ = std::move(index);
}

const hv::BitVector& HammingClassifier::prototype(int label) const {
  if (mode_ != HammingMode::kPrototype) {
    throw std::logic_error("HammingClassifier: prototypes need kPrototype mode");
  }
  if (label != 0 && label != 1) {
    throw std::invalid_argument("HammingClassifier: label must be 0/1");
  }
  return prototypes_[static_cast<std::size_t>(label)];
}

std::vector<int> hamming_loo_predictions(const std::vector<hv::BitVector>& vectors,
                                         const std::vector<int>& labels,
                                         parallel::ThreadPool* pool) {
  return eval::hamming_loocv(vectors, labels, pool).predictions;
}

eval::BinaryMetrics hamming_loo_metrics(const std::vector<hv::BitVector>& vectors,
                                        const std::vector<int>& labels,
                                        parallel::ThreadPool* pool) {
  return eval::hamming_loocv(vectors, labels, pool).metrics;
}

}  // namespace hdc::core
