#include "core/hybrid.hpp"

#include <stdexcept>

#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"

namespace hdc::core {

HybridModel::HybridModel(ExtractorConfig extractor_config,
                         std::unique_ptr<ml::Classifier> downstream)
    : extractor_(extractor_config), downstream_(std::move(downstream)) {
  if (downstream_ == nullptr) {
    throw std::invalid_argument("HybridModel: null downstream classifier");
  }
}

void HybridModel::fit(const data::Dataset& train) {
  extractor_.fit(train);
  // Hypervector features are 0/1, so hand the downstream model the
  // bit-packed design matrix directly; it never sees a dense double copy.
  // Predictions are bit-identical to the dense route (the packed kernels
  // mirror the dense arithmetic exactly); HDC_ML_PACKED=0 restores it.
  if (ml::packed_enabled()) {
    const hv::BitMatrix X = extractor_.transform_bits(train);
    downstream_->fit_bits(X, train.labels());
  } else {
    const ml::Matrix X = extractor_.transform_to_matrix(train);
    downstream_->fit(X, train.labels());
  }
  fitted_ = true;
}

int HybridModel::predict(std::span<const double> row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

double HybridModel::predict_proba(std::span<const double> row) const {
  if (!fitted_) throw std::logic_error("HybridModel: not fitted");
  return downstream_->predict_proba(extractor_.encode_row(row).to_doubles());
}

std::vector<int> HybridModel::predict_all(const data::Dataset& ds) const {
  if (!fitted_) throw std::logic_error("HybridModel: not fitted");
  if (ml::packed_enabled()) {
    return downstream_->predict_all_bits(extractor_.transform_bits(ds));
  }
  const ml::Matrix X = extractor_.transform_to_matrix(ds);
  return downstream_->predict_all(X);
}

eval::BinaryMetrics HybridModel::evaluate(const data::Dataset& test) const {
  return eval::compute_metrics(test.labels(), predict_all(test));
}

}  // namespace hdc::core
