// Save / load for the deployable pieces of the pipeline: the fitted feature
// extractor (column encodings + encoding seed — a few hundred bytes) and the
// Hamming classifier (training hypervectors + labels). The format is a
// versioned line-oriented text format: human-inspectable, append-safe, and
// stable across platforms (hypervector words are written as hex).
#pragma once

#include <iosfwd>
#include <string>

#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "hv/bitvector.hpp"

namespace hdc::core {

/// BitVector <-> hex text (words little-endian, lowercase hex).
void write_bitvector(std::ostream& out, const hv::BitVector& vector);
[[nodiscard]] hv::BitVector read_bitvector(std::istream& in);

/// Fitted extractor round-trip. Throws std::runtime_error on malformed input.
void save_extractor(std::ostream& out, const HdcFeatureExtractor& extractor);
[[nodiscard]] HdcFeatureExtractor load_extractor(std::istream& in);
void save_extractor_file(const std::string& path, const HdcFeatureExtractor& extractor);
[[nodiscard]] HdcFeatureExtractor load_extractor_file(const std::string& path);

/// Fitted Hamming classifier round-trip (1-NN and prototype modes).
void save_hamming(std::ostream& out, const HammingClassifier& model);
[[nodiscard]] HammingClassifier load_hamming(std::istream& in);
void save_hamming_file(const std::string& path, const HammingClassifier& model);
[[nodiscard]] HammingClassifier load_hamming_file(const std::string& path);

}  // namespace hdc::core
