#include "core/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/serde.hpp"
#include "util/str.hpp"

namespace hdc::core {

namespace {

constexpr const char* kExtractorMagic = "hdc-extractor v1";
constexpr const char* kHammingMagic = "hdc-hamming v2";

std::string expect_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(std::string("load: unexpected end of input at ") + what);
  }
  return std::string(util::trim(line));
}

long long expect_int(std::istream& in, const char* what) {
  const auto value = util::parse_int(expect_line(in, what));
  if (!value) throw std::runtime_error(std::string("load: bad integer for ") + what);
  return *value;
}

double expect_double(std::istream& in, const char* what) {
  const auto value = util::parse_double(expect_line(in, what));
  if (!value) throw std::runtime_error(std::string("load: bad number for ") + what);
  return *value;
}

/// Hard cap on persisted hypervector width: well above any configuration we
/// ship (paper uses 1k-10k dimensions) and small enough that a corrupted
/// size field cannot trigger a giant allocation.
constexpr std::size_t kMaxBitvectorBits = 1ULL << 26;

/// Exactly 16 lowercase hex digits -> word; anything else (odd-length hex,
/// uppercase, stray characters) throws.
std::uint64_t parse_hex16_word(const std::string& tok) {
  if (tok.size() != 16) {
    throw std::runtime_error("load: bad bitvector word '" + tok +
                             "': expected exactly 16 hex digits");
  }
  std::uint64_t word = 0;
  for (const char c : tok) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    if (digit < 0) {
      throw std::runtime_error("load: bad bitvector word '" + tok + "'");
    }
    word = (word << 4) | static_cast<std::uint64_t>(digit);
  }
  return word;
}

const char* kind_name(data::ColumnKind kind) {
  switch (kind) {
    case data::ColumnKind::kBinary: return "binary";
    case data::ColumnKind::kCategorical: return "categorical";
    default: return "continuous";
  }
}

data::ColumnKind parse_kind(std::string_view name) {
  if (name == "binary") return data::ColumnKind::kBinary;
  if (name == "categorical") return data::ColumnKind::kCategorical;
  if (name == "continuous") return data::ColumnKind::kContinuous;
  throw std::runtime_error("load: unknown column kind '" + std::string(name) + "'");
}

}  // namespace

void write_bitvector(std::ostream& out, const hv::BitVector& vector) {
  out << vector.size();
  // Fixed-width words: every token is exactly 16 lowercase hex digits, so
  // the reader can reject odd-length / truncated hex instead of guessing.
  for (const std::uint64_t word : vector.words()) {
    out << ' ' << util::serde::hex16(word);
  }
  out << '\n';
}

hv::BitVector read_bitvector(std::istream& in) {
  const std::string line = expect_line(in, "bitvector");
  std::istringstream tokens(line);
  std::string tok;
  if (!(tokens >> tok)) throw std::runtime_error("load: bad bitvector size");
  const auto parsed_bits = util::parse_int(tok);
  if (!parsed_bits || *parsed_bits < 0) {
    throw std::runtime_error("load: bad bitvector size '" + tok + "'");
  }
  const auto bits = static_cast<std::size_t>(*parsed_bits);
  if (bits > kMaxBitvectorBits) {
    throw std::runtime_error("load: bitvector size out of range");
  }
  hv::BitVector out(bits);
  const std::size_t n_words = (bits + 63) / 64;
  for (std::size_t w = 0; w < n_words; ++w) {
    if (!(tokens >> tok)) throw std::runtime_error("load: truncated bitvector");
    const std::uint64_t word = parse_hex16_word(tok);
    if (w + 1 == n_words && bits % 64 != 0 &&
        (word & (~0ULL << (bits % 64))) != 0) {
      throw std::runtime_error("load: nonzero padding bits in bitvector");
    }
    for (std::size_t b = 0; b < 64; ++b) {
      const std::size_t bit = w * 64 + b;
      if (bit < bits && ((word >> b) & 1ULL)) out.set(bit, true);
    }
  }
  if (tokens >> tok) {
    throw std::runtime_error("load: trailing data after bitvector");
  }
  return out;
}

void save_extractor(std::ostream& out, const HdcFeatureExtractor& extractor) {
  if (!extractor.fitted()) {
    throw std::invalid_argument("save_extractor: extractor is not fitted");
  }
  const ExtractorConfig& config = extractor.config();
  out << kExtractorMagic << '\n';
  out << config.dimensions << '\n';
  out << config.seed << '\n';
  out << (config.tie == hv::TiePolicy::kZero ? 0 : 1) << '\n';
  out << (config.missing_as_min ? 1 : 0) << '\n';
  const auto& columns = extractor.column_encodings();
  out << columns.size() << '\n';
  for (const ColumnEncoding& column : columns) {
    // name may contain spaces; keep it last on its own line.
    out << kind_name(column.kind) << ' ' << util::format_double(column.lo, 17) << ' '
        << util::format_double(column.hi, 17) << ' ' << column.name << '\n';
  }
}

HdcFeatureExtractor load_extractor(std::istream& in) {
  if (expect_line(in, "magic") != kExtractorMagic) {
    throw std::runtime_error("load_extractor: bad magic");
  }
  ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(expect_int(in, "dimensions"));
  config.seed = static_cast<std::uint64_t>(expect_int(in, "seed"));
  config.tie = expect_int(in, "tie") == 0 ? hv::TiePolicy::kZero : hv::TiePolicy::kOne;
  config.missing_as_min = expect_int(in, "missing_as_min") != 0;
  const long long n_columns = expect_int(in, "column count");
  if (n_columns <= 0) throw std::runtime_error("load_extractor: no columns");

  std::vector<ColumnEncoding> columns;
  columns.reserve(static_cast<std::size_t>(n_columns));
  for (long long j = 0; j < n_columns; ++j) {
    const std::string line = expect_line(in, "column");
    std::istringstream tokens(line);
    std::string kind;
    double lo = 0.0;
    double hi = 0.0;
    if (!(tokens >> kind >> lo >> hi)) {
      throw std::runtime_error("load_extractor: bad column line '" + line + "'");
    }
    std::string name;
    std::getline(tokens, name);
    ColumnEncoding column;
    column.kind = parse_kind(kind);
    column.lo = lo;
    column.hi = hi;
    column.name = std::string(util::trim(name));
    columns.push_back(std::move(column));
  }

  HdcFeatureExtractor extractor(config);
  extractor.fit_from_columns(std::move(columns));
  return extractor;
}

void save_hamming(std::ostream& out, const HammingClassifier& model) {
  if (!model.fitted()) {
    throw std::invalid_argument("save_hamming: model is not fitted");
  }
  out << kHammingMagic << '\n';
  out << (model.mode() == HammingMode::kPrototype ? "prototype" : "nearest") << '\n';
  const auto& vectors = model.training_vectors();
  const auto& labels = model.training_labels();
  out << vectors.size() << '\n';
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    out << labels[i] << '\n';
    write_bitvector(out, vectors[i]);
  }
}

HammingClassifier load_hamming(std::istream& in) {
  if (expect_line(in, "magic") != kHammingMagic) {
    throw std::runtime_error("load_hamming: bad magic");
  }
  const std::string mode_name = expect_line(in, "mode");
  HammingMode mode = HammingMode::kNearestNeighbor;
  if (mode_name == "prototype") {
    mode = HammingMode::kPrototype;
  } else if (mode_name != "nearest") {
    throw std::runtime_error("load_hamming: unknown mode '" + mode_name + "'");
  }
  const long long count = expect_int(in, "vector count");
  if (count <= 0) throw std::runtime_error("load_hamming: empty model");
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
  vectors.reserve(static_cast<std::size_t>(count));
  labels.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    labels.push_back(static_cast<int>(expect_int(in, "label")));
    vectors.push_back(read_bitvector(in));
  }
  HammingClassifier model(mode);
  model.fit(std::move(vectors), std::move(labels));
  return model;
}

namespace {
template <typename Saver, typename Value>
void save_to_file(const std::string& path, const Value& value, Saver saver) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save: cannot open " + path);
  saver(out, value);
  if (!out) throw std::runtime_error("save: write failed for " + path);
}
}  // namespace

void save_extractor_file(const std::string& path, const HdcFeatureExtractor& extractor) {
  save_to_file(path, extractor,
               [](std::ostream& out, const HdcFeatureExtractor& e) {
                 save_extractor(out, e);
               });
}

HdcFeatureExtractor load_extractor_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load: cannot open " + path);
  return load_extractor(in);
}

void save_hamming_file(const std::string& path, const HammingClassifier& model) {
  save_to_file(path, model, [](std::ostream& out, const HammingClassifier& m) {
    save_hamming(out, m);
  });
}

HammingClassifier load_hamming_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load: cannot open " + path);
  return load_hamming(in);
}

}  // namespace hdc::core
