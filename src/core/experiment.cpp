#include "core/experiment.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/hamming_classifier.hpp"
#include "data/split.hpp"
#include "eval/metrics.hpp"
#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/sharded.hpp"
#include "ml/zoo.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace hdc::core {

std::string to_string(InputMode mode) {
  return mode == InputMode::kRawFeatures ? "Features" : "Hypervectors";
}

FoldData materialize_fold(const data::Dataset& ds,
                          std::span<const std::size_t> train,
                          std::span<const std::size_t> test, InputMode mode,
                          const ExperimentConfig& config, bool allow_packed) {
  FoldData fold;
  const std::vector<std::size_t> train_vec(train.begin(), train.end());
  const std::vector<std::size_t> test_vec(test.begin(), test.end());
  const data::Dataset train_ds = ds.subset(train_vec);
  const data::Dataset test_ds = ds.subset(test_vec);

  if (mode == InputMode::kRawFeatures) {
    fold.train_X = train_ds.feature_matrix();
    fold.test_X = test_ds.feature_matrix();
  } else {
    obs::Span span("experiment.encode");
    HdcFeatureExtractor extractor(config.extractor);
    extractor.fit(train_ds);
    if (allow_packed && config.packed_ml && ml::packed_enabled()) {
      if (config.max_resident_rows > 0) {
        // Shard-at-a-time encode: each block is produced independently, so
        // the peak bitplane working set tracks max_resident_rows, and the
        // shard set is byte-identical to the unsharded encode row for row.
        fold.train_shards =
            extractor.transform_bits_chunked(train_ds, config.max_resident_rows);
        fold.test_shards =
            extractor.transform_bits_chunked(test_ds, config.max_resident_rows);
      } else {
        fold.train_bits = extractor.transform_bits(train_ds);
        fold.test_bits = extractor.transform_bits(test_ds);
      }
    } else {
      fold.train_X = extractor.transform_to_matrix(train_ds);
      fold.test_X = extractor.transform_to_matrix(test_ds);
    }
  }
  fold.train_y = train_ds.labels();
  fold.test_y = test_ds.labels();
  return fold;
}

void fit_fold_model(ml::Classifier& model, const FoldData& fold) {
  if (fold.train_shards) {
    const ml::MaterializedShardSource src(*fold.train_shards, fold.train_y);
    model.fit_shards(src);
  } else if (fold.train_bits) {
    model.fit_bits(*fold.train_bits, fold.train_y);
  } else {
    model.fit(fold.train_X, fold.train_y);
  }
}

double fold_accuracy(const ml::Classifier& model, const FoldData& fold) {
  if (fold.test_shards) {
    const ml::MaterializedShardSource src(*fold.test_shards, fold.test_y);
    const std::vector<int> pred = model.predict_all_shards(src);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == fold.test_y[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(pred.size());
  }
  return fold.test_bits ? model.accuracy_bits(*fold.test_bits, fold.test_y)
                        : model.accuracy(fold.test_X, fold.test_y);
}

eval::CvResult kfold_cv_accuracy(const data::Dataset& ds,
                                 const std::string& model_name, InputMode mode,
                                 std::size_t k, const ExperimentConfig& config) {
  return eval::kfold_run(
      ds.labels(), k, config.seed,
      [&](std::span<const std::size_t> train, std::span<const std::size_t> test) {
        obs::Span fold_span("experiment.fold");
        obs::counter("experiment.folds").increment();
        const FoldData fold = materialize_fold(ds, train, test, mode, config,
                                               /*allow_packed=*/true);
        const auto model = ml::make_model(model_name, config.model_budget);
        {
          obs::Span fit_span("experiment.fit");
          fit_fold_model(*model, fold);
        }
        obs::Span eval_span("experiment.eval");
        return fold_accuracy(*model, fold);
      });
}

eval::BinaryMetrics holdout_metrics(const data::Dataset& ds,
                                    const std::string& model_name, InputMode mode,
                                    double test_fraction,
                                    const ExperimentConfig& config) {
  const data::TrainTestIndices split =
      data::stratified_split(ds.labels(), test_fraction, config.seed);
  const FoldData fold = materialize_fold(ds, split.train, split.test, mode,
                                         config, /*allow_packed=*/true);
  const auto model = ml::make_model(model_name, config.model_budget);
  {
    obs::Span fit_span("experiment.fit");
    fit_fold_model(*model, fold);
  }
  obs::Span eval_span("experiment.eval");
  if (fold.test_shards) {
    const ml::MaterializedShardSource src(*fold.test_shards, fold.test_y);
    return eval::compute_metrics(fold.test_y, model->predict_all_shards(src));
  }
  return eval::compute_metrics(fold.test_y,
                               fold.test_bits
                                   ? model->predict_all_bits(*fold.test_bits)
                                   : model->predict_all(fold.test_X));
}

eval::BinaryMetrics hamming_loo(const data::Dataset& ds,
                                const ExperimentConfig& config) {
  // threads > 0 runs encode + search on a dedicated pool of that size; the
  // result is the same either way, only the wall time changes.
  std::optional<parallel::ThreadPool> local_pool;
  parallel::ThreadPool* pool = nullptr;
  if (config.threads > 0) pool = &local_pool.emplace(config.threads);

  HdcFeatureExtractor extractor(config.extractor);
  extractor.fit(ds);
  std::vector<hv::BitVector> vectors;
  {
    obs::Span encode_span("experiment.encode");
    vectors = extractor.transform(ds, pool);
  }
  obs::Span search_span("experiment.search");
  return hamming_loo_metrics(vectors, ds.labels(), pool);
}

ExperimentResult hamming_loo_observed(const data::Dataset& ds,
                                      const ExperimentConfig& config,
                                      std::string_view dataset_name) {
  ExperimentResult result;
  result.metrics = hamming_loo(ds, config);
  result.obs = obs::snapshot();
  result.manifest = make_run_manifest(ds, dataset_name, config);
  return result;
}

NnProtocolResult nn_protocol(const data::Dataset& ds, InputMode mode,
                             std::size_t repeats, const ExperimentConfig& config,
                             nn::SequentialConfig nn_config) {
  if (repeats == 0) throw std::invalid_argument("nn_protocol: zero repeats");
  NnProtocolResult result;
  std::vector<double> test_accs;
  test_accs.reserve(repeats);

  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const std::uint64_t rep_seed = util::mix_seed(config.seed, rep + 1);
    const data::TrainValTestIndices split =
        data::stratified_split3(ds.labels(), 0.15, 0.15, rep_seed);

    // Encode (or pass through) with extractor fitted on the training rows.
    ExperimentConfig rep_config = config;
    rep_config.extractor.seed = util::mix_seed(config.extractor.seed, rep);
    // The Sequential NN consumes dense matrices; keep this protocol unpacked.
    FoldData tt = materialize_fold(ds, split.train, split.test, mode, rep_config,
                                   /*allow_packed=*/false);
    const data::Dataset val_ds = ds.subset(split.val);
    ml::Matrix val_X;
    if (mode == InputMode::kRawFeatures) {
      val_X = val_ds.feature_matrix();
    } else {
      HdcFeatureExtractor extractor(rep_config.extractor);
      extractor.fit(ds.subset(std::vector<std::size_t>(split.train.begin(),
                                                       split.train.end())));
      val_X = extractor.transform_to_matrix(val_ds);
    }

    nn::SequentialConfig cfg = nn_config;
    cfg.seed = util::mix_seed(rep_seed, 7);
    nn::Sequential net(cfg);
    const nn::TrainHistory history =
        net.fit_with_validation(tt.train_X, tt.train_y, val_X, val_ds.labels());

    std::size_t hits = 0;
    for (std::size_t i = 0; i < tt.test_X.size(); ++i) {
      if (net.predict(tt.test_X[i]) == tt.test_y[i]) ++hits;
    }
    const double acc = static_cast<double>(hits) /
                       static_cast<double>(tt.test_X.size());
    test_accs.push_back(acc);

    std::size_t val_hits = 0;
    for (std::size_t i = 0; i < val_X.size(); ++i) {
      if (net.predict(val_X[i]) == val_ds.label(i)) ++val_hits;
    }
    result.mean_val_accuracy += static_cast<double>(val_hits) /
                                static_cast<double>(val_X.size());
    result.mean_epochs += static_cast<double>(history.train_loss.size());
  }

  double sum = 0.0;
  for (const double a : test_accs) sum += a;
  result.mean_test_accuracy = sum / static_cast<double>(repeats);
  double var = 0.0;
  for (const double a : test_accs) {
    const double diff = a - result.mean_test_accuracy;
    var += diff * diff;
  }
  result.stddev_test_accuracy = std::sqrt(var / static_cast<double>(repeats));
  result.mean_val_accuracy /= static_cast<double>(repeats);
  result.mean_epochs /= static_cast<double>(repeats);
  return result;
}

}  // namespace hdc::core
