// core::RunManifest — provenance for every produced artifact.
//
// A result (ExperimentResult, GridResult, ModelBundle, BENCH_*.json) is only
// reproducible if it records exactly how it was produced: which dataset
// bytes, which seeds and dimensions, which SIMD tier the dispatcher picked,
// how many threads ran, and which fast-path switches (packed ML, fold cache)
// were engaged. RunManifest captures all of that, plus the obs snapshot as
// embedded JSON, at the moment a run finishes. The dataset fingerprint is a
// streaming FNV-1a over the exact value bit patterns, labels, and column
// specs — any edit to the data changes the hash.
//
// Manifests are observability output: embedding or dropping them never
// changes any metric or prediction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "data/dataset.hpp"

namespace hdc::core {

struct ExperimentConfig;  // core/experiment.hpp

struct RunManifest {
  std::string dataset;            // name(s); comma-joined for grid runs
  std::uint64_t dataset_hash = 0; // dataset_fingerprint(); mixed across grids
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t dimensions = 0;   // hypervector width
  std::uint64_t extractor_seed = 0;
  std::uint64_t split_seed = 0;   // CV / holdout split seed
  std::string simd_tier;          // simd::tier_name(active_tier())
  std::uint64_t threads = 0;      // configured worker count (0 = global pool)
  std::uint64_t hardware_threads = 0;
  bool packed_ml = false;         // config AND runtime switch
  bool fold_cache = false;
  bool obs_enabled = false;
  bool trace_enabled = false;
  std::uint64_t shard_rows = 0;   // ExperimentConfig::max_resident_rows
  std::uint64_t num_shards = 0;   // shard plan size over `rows`
  std::string obs_json;           // obs::to_json(snapshot()) at capture time
};

/// Streaming FNV-1a 64 over the dataset's column specs, labels, and value
/// bit patterns. Deterministic across platforms for identical data.
[[nodiscard]] std::uint64_t dataset_fingerprint(const data::Dataset& ds);

/// Fold `value` into an accumulated fingerprint (for multi-dataset runs).
/// Start from 0; order-sensitive, like the grid's dataset order.
[[nodiscard]] std::uint64_t mix_hash(std::uint64_t acc, std::uint64_t value) noexcept;

/// Capture a manifest for a run over `ds` under `config`, including the
/// current obs snapshot and runtime switch states.
[[nodiscard]] RunManifest make_run_manifest(const data::Dataset& ds,
                                            std::string_view dataset_name,
                                            const ExperimentConfig& config);

/// One JSON object (obs_json embedded verbatim under "obs").
[[nodiscard]] std::string to_json(const RunManifest& manifest);

/// util::serde token round-trip (the bundle "manifest" section body).
void save_manifest(std::ostream& out, const RunManifest& manifest);
[[nodiscard]] RunManifest load_manifest(std::istream& in);

}  // namespace hdc::core
