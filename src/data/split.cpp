#include "data/split.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::data {

namespace {

/// Per-class index lists, each shuffled with its own derived seed.
std::array<std::vector<std::size_t>, 2> shuffled_by_class(const std::vector<int>& labels,
                                                          std::uint64_t seed) {
  std::array<std::vector<std::size_t>, 2> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int y = labels[i];
    if (y != 0 && y != 1) throw std::invalid_argument("split: labels must be 0/1");
    by_class[static_cast<std::size_t>(y)].push_back(i);
  }
  for (int y : {0, 1}) {
    util::Rng rng(util::mix_seed(seed, static_cast<std::uint64_t>(y) + 101));
    rng.shuffle(by_class[static_cast<std::size_t>(y)]);
  }
  return by_class;
}

}  // namespace

TrainTestIndices stratified_split(const std::vector<int>& labels, double test_fraction,
                                  std::uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: bad test_fraction");
  }
  auto by_class = shuffled_by_class(labels, seed);
  TrainTestIndices out;
  for (auto& idx : by_class) {
    const std::size_t n_test = static_cast<std::size_t>(
        std::llround(test_fraction * static_cast<double>(idx.size())));
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < n_test ? out.test : out.train).push_back(idx[i]);
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

TrainValTestIndices stratified_split3(const std::vector<int>& labels,
                                      double val_fraction, double test_fraction,
                                      std::uint64_t seed) {
  if (val_fraction < 0.0 || test_fraction <= 0.0 ||
      val_fraction + test_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split3: bad fractions");
  }
  auto by_class = shuffled_by_class(labels, seed);
  TrainValTestIndices out;
  for (auto& idx : by_class) {
    const double n = static_cast<double>(idx.size());
    const std::size_t n_test =
        static_cast<std::size_t>(std::llround(test_fraction * n));
    const std::size_t n_val = static_cast<std::size_t>(std::llround(val_fraction * n));
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (i < n_test) {
        out.test.push_back(idx[i]);
      } else if (i < n_test + n_val) {
        out.val.push_back(idx[i]);
      } else {
        out.train.push_back(idx[i]);
      }
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.val.begin(), out.val.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

StratifiedKFold::StratifiedKFold(const std::vector<int>& labels, std::size_t k,
                                 std::uint64_t seed)
    : n_(labels.size()), folds_(k) {
  if (k < 2) throw std::invalid_argument("StratifiedKFold: k must be >= 2");
  if (k > labels.size()) throw std::invalid_argument("StratifiedKFold: k > n");
  const auto by_class = shuffled_by_class(labels, seed);
  for (const auto& idx : by_class) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      folds_[i % k].push_back(idx[i]);
    }
  }
  for (auto& fold : folds_) std::sort(fold.begin(), fold.end());
}

std::vector<std::size_t> StratifiedKFold::fold_train(std::size_t i) const {
  const std::vector<std::size_t>& test = folds_.at(i);
  std::vector<std::size_t> train;
  train.reserve(n_ - test.size());
  std::size_t cursor = 0;
  for (std::size_t row = 0; row < n_; ++row) {
    if (cursor < test.size() && test[cursor] == row) {
      ++cursor;
    } else {
      train.push_back(row);
    }
  }
  return train;
}

}  // namespace hdc::data
