// Out-of-core row-range access to datasets.
//
// A ChunkedDataset materializes any contiguous row range [begin, end) as an
// ordinary in-memory Dataset on demand; no backend requires the full cohort
// resident at once. Chunking is invariant by contract: for any split of
// [0, n_rows()) into consecutive ranges, concatenating the chunks equals
// chunk(0, n_rows()) row for row — the property the sharded encode and train
// paths (hv::ShardedBitMatrix, ml::ShardSource) gate their bit-identity on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/csv.hpp"
#include "data/csv_detail.hpp"
#include "data/dataset.hpp"

namespace hdc::data {

/// Half-open row range [begin, end).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t rows() const noexcept { return end - begin; }
  bool operator==(const ChunkRange&) const noexcept = default;
};

/// Contiguous shard plan covering [0, rows) in ascending order: every shard
/// is `shard_rows` long except a shorter tail. shard_rows == 0 means "one
/// shard with everything"; rows == 0 yields an empty plan.
[[nodiscard]] std::vector<ChunkRange> make_shard_plan(std::size_t rows,
                                                      std::size_t shard_rows);

/// Abstract chunk source. chunk(begin, end) is a pure function of the range:
/// calling it twice, or in any order, yields identical rows.
class ChunkedDataset {
 public:
  virtual ~ChunkedDataset() = default;
  [[nodiscard]] virtual std::size_t n_rows() const = 0;
  [[nodiscard]] virtual const std::vector<ColumnSpec>& columns() const = 0;
  /// Materialize rows [begin, end); requires begin <= end <= n_rows().
  [[nodiscard]] virtual Dataset chunk(std::size_t begin,
                                      std::size_t end) const = 0;
  [[nodiscard]] std::size_t n_cols() const { return columns().size(); }

 protected:
  /// Shared range validation for chunk() implementations.
  void check_range(std::size_t begin, std::size_t end, const char* who) const;
};

/// Chunk view over an already-resident Dataset (caller keeps it alive).
class InMemoryChunks final : public ChunkedDataset {
 public:
  explicit InMemoryChunks(const Dataset& ds) : ds_(&ds) {}
  [[nodiscard]] std::size_t n_rows() const override { return ds_->n_rows(); }
  [[nodiscard]] const std::vector<ColumnSpec>& columns() const override {
    return ds_->columns();
  }
  [[nodiscard]] Dataset chunk(std::size_t begin, std::size_t end) const override;

 private:
  const Dataset* ds_;
};

/// Deterministic synthetic cohort: chunks come from
/// make_synthetic_cohort_range, where row i is a pure function of (i, seed),
/// so nothing is resident until a chunk is requested.
class SyntheticCohortChunks final : public ChunkedDataset {
 public:
  SyntheticCohortChunks(std::size_t rows, std::uint64_t seed);
  [[nodiscard]] std::size_t n_rows() const override { return rows_; }
  [[nodiscard]] const std::vector<ColumnSpec>& columns() const override {
    return columns_;
  }
  [[nodiscard]] Dataset chunk(std::size_t begin, std::size_t end) const override;

 private:
  std::size_t rows_;
  std::uint64_t seed_;
  std::vector<ColumnSpec> columns_;
};

/// Streaming CSV chunks. A construction-time prescan parses the header,
/// validates every data line (cell-count mismatches get an error carrying
/// the 1-based file line number), infers binary column kinds, and records
/// one byte offset per data row — so chunk() is random access and only the
/// requested rows are ever resident. chunk() re-reads from the recorded
/// offsets and re-validates, so a file rewritten mid-stream with a different
/// column count fails with the same row-numbered error instead of producing
/// silently misaligned rows.
class CsvStreamChunks final : public ChunkedDataset {
 public:
  explicit CsvStreamChunks(std::string path, CsvOptions options = {});
  [[nodiscard]] std::size_t n_rows() const override { return offsets_.size(); }
  [[nodiscard]] const std::vector<ColumnSpec>& columns() const override {
    return columns_;
  }
  [[nodiscard]] Dataset chunk(std::size_t begin, std::size_t end) const override;

 private:
  std::string path_;
  CsvOptions options_;
  detail::CsvHeader header_;
  std::vector<ColumnSpec> columns_;
  std::vector<std::uint64_t> offsets_;  // byte offset of each data row
  std::vector<std::uint64_t> lines_;    // 1-based file line of each data row
};

}  // namespace hdc::data
