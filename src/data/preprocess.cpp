#include "data/preprocess.hpp"

#include "util/serde.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hdc::data {

Dataset remove_missing_rows(const Dataset& ds) {
  std::vector<std::size_t> keep;
  keep.reserve(ds.n_rows());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    if (!ds.row_has_missing(i)) keep.push_back(i);
  }
  return ds.subset(keep);
}

namespace {

Dataset impute_with(const Dataset& ds,
                    const std::vector<std::vector<double>>& fill_by_class) {
  Dataset out(ds.columns());
  std::vector<double> row(ds.n_cols());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const auto src = ds.row(i);
    const int y = ds.label(i);
    for (std::size_t j = 0; j < ds.n_cols(); ++j) {
      row[j] = Dataset::is_missing(src[j]) ? fill_by_class[static_cast<std::size_t>(y)][j]
                                           : src[j];
    }
    out.add_row(row, y);
  }
  return out;
}

}  // namespace

Dataset impute_class_median(const Dataset& ds) {
  std::vector<std::vector<double>> fill(2, std::vector<double>(ds.n_cols(), 0.0));
  for (std::size_t j = 0; j < ds.n_cols(); ++j) {
    const ColumnStats overall = ds.column_stats(j);
    for (int y : {0, 1}) {
      const ColumnStats cs = ds.column_stats_for_class(j, y);
      fill[static_cast<std::size_t>(y)][j] = cs.present > 0 ? cs.median : overall.median;
    }
  }
  return impute_with(ds, fill);
}

Dataset impute_median(const Dataset& ds) {
  std::vector<std::vector<double>> fill(2, std::vector<double>(ds.n_cols(), 0.0));
  for (std::size_t j = 0; j < ds.n_cols(); ++j) {
    const double m = ds.column_stats(j).median;
    fill[0][j] = m;
    fill[1][j] = m;
  }
  return impute_with(ds, fill);
}

void MinMaxScaler::fit(const Dataset& ds) {
  lo_.assign(ds.n_cols(), 0.0);
  hi_.assign(ds.n_cols(), 1.0);
  for (std::size_t j = 0; j < ds.n_cols(); ++j) {
    const ColumnStats s = ds.column_stats(j);
    if (s.present == 0) continue;
    lo_[j] = s.min;
    hi_[j] = s.max;
  }
}

Dataset MinMaxScaler::transform(const Dataset& ds) const {
  if (!fitted()) throw std::logic_error("MinMaxScaler: not fitted");
  if (ds.n_cols() != lo_.size()) {
    throw std::invalid_argument("MinMaxScaler: column count mismatch");
  }
  Dataset out(ds.columns());
  std::vector<double> row(ds.n_cols());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const auto src = ds.row(i);
    for (std::size_t j = 0; j < ds.n_cols(); ++j) {
      if (Dataset::is_missing(src[j])) {
        row[j] = src[j];
      } else {
        const double span = hi_[j] - lo_[j];
        row[j] = span > 0.0 ? (src[j] - lo_[j]) / span : 0.0;
      }
    }
    out.add_row(row, ds.label(i));
  }
  return out;
}

void StandardScaler::fit(const Dataset& ds) {
  mean_.assign(ds.n_cols(), 0.0);
  stddev_.assign(ds.n_cols(), 1.0);
  for (std::size_t j = 0; j < ds.n_cols(); ++j) {
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < ds.n_rows(); ++i) {
      const double v = ds.value(i, j);
      if (Dataset::is_missing(v)) continue;
      sum += v;
      sum_sq += v * v;
      ++n;
    }
    if (n == 0) continue;
    const double mean = sum / static_cast<double>(n);
    const double var = sum_sq / static_cast<double>(n) - mean * mean;
    mean_[j] = mean;
    stddev_[j] = var > 0.0 ? std::sqrt(var) : 1.0;
  }
}

Dataset StandardScaler::transform(const Dataset& ds) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (ds.n_cols() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  Dataset out(ds.columns());
  std::vector<double> row(ds.n_cols());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const auto src = ds.row(i);
    for (std::size_t j = 0; j < ds.n_cols(); ++j) {
      row[j] = Dataset::is_missing(src[j]) ? src[j] : (src[j] - mean_[j]) / stddev_[j];
    }
    out.add_row(row, ds.label(i));
  }
  return out;
}

void MinMaxScaler::save(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("MinMaxScaler: save of unfitted scaler");
  util::serde::Writer w(out);
  w.tag("scaler.minmax").tag("v1").nl();
  w.vec_f64(lo_).nl();
  w.vec_f64(hi_).nl();
}

void MinMaxScaler::load(std::istream& in) {
  util::serde::Reader r(in, "load scaler.minmax");
  r.expect("scaler.minmax", "scaler tag");
  r.expect("v1", "format version");
  lo_ = r.vec_f64("lo", 1ULL << 24);
  hi_ = r.vec_f64("hi", 1ULL << 24);
  if (lo_.empty() || lo_.size() != hi_.size()) throw r.error("lo/hi arity mismatch");
}

void StandardScaler::save(std::ostream& out) const {
  if (!fitted()) throw std::logic_error("StandardScaler: save of unfitted scaler");
  util::serde::Writer w(out);
  w.tag("scaler.standard").tag("v1").nl();
  w.vec_f64(mean_).nl();
  w.vec_f64(stddev_).nl();
}

void StandardScaler::load(std::istream& in) {
  util::serde::Reader r(in, "load scaler.standard");
  r.expect("scaler.standard", "scaler tag");
  r.expect("v1", "format version");
  mean_ = r.vec_f64("mean", 1ULL << 24);
  stddev_ = r.vec_f64("stddev", 1ULL << 24);
  if (mean_.empty() || mean_.size() != stddev_.size()) {
    throw r.error("mean/stddev arity mismatch");
  }
}

}  // namespace hdc::data
