// Missing-value policies and feature scalers.
//
// The paper evaluates two cleanings of the Pima dataset:
//  * Pima R — rows with any missing value removed;
//  * Pima M — each missing value replaced with the median of its *class*
//    (Artem's Kaggle preprocessing). Note that per-class imputation leaks
//    label information into the features, which is precisely why every model
//    scores much higher on Pima M than on Pima R; our reproduction keeps
//    this behaviour on purpose and documents it.
#pragma once

#include <iosfwd>

#include "data/dataset.hpp"

namespace hdc::data {

/// New dataset with every row containing a missing value dropped (Pima R).
[[nodiscard]] Dataset remove_missing_rows(const Dataset& ds);

/// New dataset with each missing cell replaced by the median of the
/// non-missing values *of the same class* in that column (Pima M).
/// Falls back to the overall column median when a class has no data.
[[nodiscard]] Dataset impute_class_median(const Dataset& ds);

/// New dataset with each missing cell replaced by the overall column median
/// (leakage-free variant, used by the ablation benches).
[[nodiscard]] Dataset impute_median(const Dataset& ds);

/// Min-max scaler fitted on one dataset (train) and applied to others.
/// Missing values pass through unchanged.
class MinMaxScaler {
 public:
  void fit(const Dataset& ds);
  [[nodiscard]] Dataset transform(const Dataset& ds) const;
  [[nodiscard]] bool fitted() const noexcept { return !lo_.empty(); }

  /// Persist / restore the fitted bounds (bundle sections). Load throws
  /// std::runtime_error on malformed input; save throws std::logic_error
  /// when unfitted.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Z-score scaler (mean 0, stddev 1). Missing values pass through.
class StandardScaler {
 public:
  void fit(const Dataset& ds);
  [[nodiscard]] Dataset transform(const Dataset& ds) const;
  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace hdc::data
