#include "data/csv.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "data/csv_detail.hpp"
#include "util/str.hpp"

namespace hdc::data {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool is_missing_token(std::string_view s) {
  return s.empty() || util::iequals(s, "na") || util::iequals(s, "nan") || s == "?";
}

/// Textual truthy/falsy cell values seen in the Sylhet CSV.
std::optional<double> parse_cell(std::string_view raw) {
  const std::string_view s = util::trim(raw);
  if (is_missing_token(s)) return kNaN;
  if (const auto num = util::parse_double(s)) return *num;
  if (util::iequals(s, "yes") || util::iequals(s, "true") || util::iequals(s, "male")) {
    return 1.0;
  }
  if (util::iequals(s, "no") || util::iequals(s, "false") || util::iequals(s, "female")) {
    return 0.0;
  }
  return std::nullopt;
}

}  // namespace

namespace detail {

CsvHeader parse_csv_header(std::string_view line, const CsvOptions& options,
                           const std::string& who) {
  CsvHeader header;
  header.names = util::split(std::string(util::trim(line)), options.delimiter);
  for (std::string& name : header.names) name = std::string(util::trim(name));
  if (header.names.size() < 2) {
    throw std::runtime_error(who + ": need >= 2 columns");
  }

  header.label_idx = header.names.size() - 1;
  if (!options.label_column.empty()) {
    bool found = false;
    for (std::size_t j = 0; j < header.names.size(); ++j) {
      if (util::iequals(header.names[j], options.label_column)) {
        header.label_idx = j;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error(who + ": label column '" + options.label_column +
                               "' not found");
    }
  }

  header.zero_missing.assign(header.names.size(), false);
  for (const std::string& name : options.zero_is_missing) {
    for (std::size_t j = 0; j < header.names.size(); ++j) {
      if (util::iequals(header.names[j], name)) header.zero_missing[j] = true;
    }
  }
  return header;
}

int parse_csv_row(std::string_view line, const CsvHeader& header,
                  const CsvOptions& options, std::size_t line_no,
                  const std::string& who, std::vector<double>& row) {
  const std::vector<std::string> cells =
      util::split(std::string(util::trim(line)), options.delimiter);
  if (cells.size() != header.names.size()) {
    throw std::runtime_error(who + ": line " + std::to_string(line_no) +
                             " has " + std::to_string(cells.size()) +
                             " cells, expected " +
                             std::to_string(header.names.size()));
  }
  row.clear();
  row.reserve(header.names.size() - 1);
  int label = -1;
  for (std::size_t j = 0; j < cells.size(); ++j) {
    if (j == header.label_idx) {
      const std::string_view s = util::trim(cells[j]);
      bool positive = false;
      for (const std::string& tok : options.positive_labels) {
        if (util::iequals(s, tok)) positive = true;
      }
      if (!positive) {
        if (const auto num = util::parse_double(s)) positive = *num >= 0.5;
      }
      label = positive ? 1 : 0;
      continue;
    }
    const auto value = parse_cell(cells[j]);
    if (!value) {
      throw std::runtime_error(who + ": line " + std::to_string(line_no) +
                               ", column '" + header.names[j] + "': bad cell '" +
                               cells[j] + "'");
    }
    double v = *value;
    if (header.zero_missing[j] && v == 0.0) v = kNaN;
    row.push_back(v);
  }
  return label;
}

}  // namespace detail

Dataset read_csv(std::istream& in, const CsvOptions& options) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("read_csv: empty input");
  const detail::CsvHeader header =
      detail::parse_csv_header(line, options, "read_csv");

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::vector<double> row;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    const int label =
        detail::parse_csv_row(line, header, options, line_no, "read_csv", row);
    rows.push_back(row);
    labels.push_back(label);
  }

  // Infer column kinds: all non-missing values in {0,1} -> binary.
  std::vector<ColumnSpec> specs;
  for (std::size_t j = 0; j < header.names.size(); ++j) {
    if (j == header.label_idx) continue;
    specs.push_back(ColumnSpec{header.names[j], ColumnKind::kContinuous});
  }
  std::vector<bool> binary(specs.size(), true);
  for (const auto& r : rows) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      const double v = r[j];
      if (!std::isnan(v) && v != 0.0 && v != 1.0) binary[j] = false;
    }
  }
  for (std::size_t j = 0; j < specs.size(); ++j) {
    if (binary[j]) specs[j].kind = ColumnKind::kBinary;
  }

  Dataset ds(std::move(specs));
  for (std::size_t i = 0; i < rows.size(); ++i) ds.add_row(rows[i], labels[i]);
  return ds;
}

Dataset read_csv_file(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in, options);
}

void write_csv(std::ostream& out, const Dataset& ds, char delimiter) {
  for (std::size_t j = 0; j < ds.n_cols(); ++j) {
    out << ds.column(j).name << delimiter;
  }
  out << "label\n";
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    for (std::size_t j = 0; j < ds.n_cols(); ++j) {
      const double v = ds.value(i, j);
      if (!Dataset::is_missing(v)) out << util::format_double(v, 6);
      out << delimiter;
    }
    out << ds.label(i) << '\n';
  }
}

void write_csv_file(const std::string& path, const Dataset& ds, char delimiter) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(out, ds, delimiter);
}

}  // namespace hdc::data
