#include "data/describe.hpp"

#include <sstream>

#include "util/str.hpp"
#include "util/table.hpp"

namespace hdc::data {

namespace {
const char* kind_label(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kBinary: return "binary";
    case ColumnKind::kCategorical: return "categorical";
    default: return "continuous";
  }
}
}  // namespace

std::string describe(const Dataset& ds) {
  std::ostringstream out;
  const auto [neg, pos] = ds.class_counts();
  out << "rows: " << ds.n_rows() << "  columns: " << ds.n_cols()
      << "  classes: " << neg << " negative / " << pos << " positive"
      << "  rows with missing: " << ds.rows_with_missing() << '\n';

  util::Table table({"Column", "Kind", "Missing", "Min", "Max", "Mean", "Median",
                     "Mean(neg)", "Mean(pos)"});
  for (std::size_t j = 0; j < ds.n_cols(); ++j) {
    const ColumnStats s = ds.column_stats(j);
    const ColumnStats sn = ds.column_stats_for_class(j, 0);
    const ColumnStats sp = ds.column_stats_for_class(j, 1);
    table.add_row({ds.column(j).name, kind_label(ds.column(j).kind),
                   std::to_string(s.missing), util::format_double(s.min, 2),
                   util::format_double(s.max, 2), util::format_double(s.mean, 2),
                   util::format_double(s.median, 2),
                   sn.present > 0 ? util::format_double(sn.mean, 2) : "-",
                   sp.present > 0 ? util::format_double(sp.mean, 2) : "-"});
  }
  out << table.render();
  return out.str();
}

}  // namespace hdc::data
