// Synthetic dataset generators substituting for the paper's two datasets.
//
// We do not ship the original Pima / Sylhet CSV files; instead we sample
// datasets whose per-class marginals match the statistics published in the
// paper (Table I) and in the source dataset papers. See DESIGN.md §3 for the
// substitution rationale. The CSV loader (data/csv.hpp) can read the real
// files, so a user with access to them can swap them in unchanged.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace hdc::data {

/// Configuration for the Pima Indians substitute.
struct PimaConfig {
  std::size_t n_negative = 500;  // raw dataset class counts (768 rows total)
  std::size_t n_positive = 268;
  bool inject_missing = true;  // reproduce the raw dataset's missingness
  /// Fraction of subjects whose label contradicts their features. The real
  /// cohort's outcome is "diabetes within 5 years by GTT", which mislabels
  /// borderline subjects both ways (the original curation explicitly tried
  /// to reduce, but could not eliminate, misdiagnosed non-diabetics); this
  /// irreducible noise is why distance-based models trail on Pima.
  double label_noise = 0.05;
  std::uint64_t seed = 2023;
};

/// Raw Pima-like dataset: 8 continuous features (Pregnancies, Glucose,
/// BloodPressure, SkinThickness, Insulin, BMI, DPF, Age), NaN for missing.
/// Feed through remove_missing_rows() for "Pima R" or impute_class_median()
/// for "Pima M".
[[nodiscard]] Dataset make_pima(const PimaConfig& config = {});

/// Configuration for the Sylhet (early-stage diabetes risk) substitute.
struct SylhetConfig {
  std::size_t n_negative = 200;
  std::size_t n_positive = 320;
  std::uint64_t seed = 520;
};

/// Sylhet-like dataset: Age (continuous) + Sex + 14 binary symptom features.
/// No missing values (the real dataset is complete).
[[nodiscard]] Dataset make_sylhet(const SylhetConfig& config = {});

/// Scalable Pima-like cohort for ANN benches and large-n tests: 8 complete
/// continuous features (no injected missingness) drawn from the same
/// per-class marginals as make_pima, ~35% positive. Row i is generated from
/// its own seeded substream (util::mix_seed(seed, i)), so the generator is a
/// pure function of (i, seed): make_synthetic_cohort(n, s) row i equals
/// make_synthetic_cohort_range(i, i+1, s) row 0, and any chunking of
/// [0, n) concatenates to the same cohort. That is the row-range hook the
/// out-of-core path (ROADMAP item 2) will stream through.
[[nodiscard]] Dataset make_synthetic_cohort(std::size_t rows,
                                            std::uint64_t seed = 2023);

/// Rows [begin, end) of the same cohort, bit-identical to the corresponding
/// slice of make_synthetic_cohort(end, seed).
[[nodiscard]] Dataset make_synthetic_cohort_range(std::size_t begin,
                                                  std::size_t end,
                                                  std::uint64_t seed = 2023);

/// Two spherical Gaussian blobs in `n_features` dimensions, centred at
/// +/- `separation`/2 along every axis. Used by the ML substrate tests.
[[nodiscard]] Dataset make_two_gaussians(std::size_t n_per_class,
                                         std::size_t n_features, double separation,
                                         std::uint64_t seed);

/// XOR-like dataset in 2 continuous dimensions (not linearly separable);
/// exercises the non-linear models.
[[nodiscard]] Dataset make_xor(std::size_t n_per_quadrant, double noise,
                               std::uint64_t seed);

}  // namespace hdc::data
