#include "data/chunked.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "data/synthetic.hpp"
#include "util/str.hpp"

namespace hdc::data {

std::vector<ChunkRange> make_shard_plan(std::size_t rows,
                                        std::size_t shard_rows) {
  std::vector<ChunkRange> plan;
  if (rows == 0) return plan;
  if (shard_rows == 0) shard_rows = rows;
  plan.reserve((rows + shard_rows - 1) / shard_rows);
  for (std::size_t begin = 0; begin < rows; begin += shard_rows) {
    plan.push_back(ChunkRange{begin, std::min(rows, begin + shard_rows)});
  }
  return plan;
}

void ChunkedDataset::check_range(std::size_t begin, std::size_t end,
                                 const char* who) const {
  if (begin > end || end > n_rows()) {
    throw std::out_of_range(std::string(who) + ": chunk [" +
                            std::to_string(begin) + ", " + std::to_string(end) +
                            ") out of range for " + std::to_string(n_rows()) +
                            " rows");
  }
}

Dataset InMemoryChunks::chunk(std::size_t begin, std::size_t end) const {
  check_range(begin, end, "InMemoryChunks");
  std::vector<std::size_t> indices(end - begin);
  std::iota(indices.begin(), indices.end(), begin);
  return ds_->subset(indices);
}

SyntheticCohortChunks::SyntheticCohortChunks(std::size_t rows,
                                             std::uint64_t seed)
    : rows_(rows), seed_(seed) {
  // An empty range still carries the column specs.
  columns_ = make_synthetic_cohort_range(0, 0, seed_).columns();
}

Dataset SyntheticCohortChunks::chunk(std::size_t begin, std::size_t end) const {
  check_range(begin, end, "SyntheticCohortChunks");
  return make_synthetic_cohort_range(begin, end, seed_);
}

CsvStreamChunks::CsvStreamChunks(std::string path, CsvOptions options)
    : path_(std::move(path)), options_(std::move(options)) {
  std::ifstream in(path_);
  if (!in) throw std::runtime_error("CsvStreamChunks: cannot open " + path_);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("CsvStreamChunks: empty input");
  }
  header_ = detail::parse_csv_header(line, options_, "CsvStreamChunks");

  // Prescan: validate every line, infer binary kinds incrementally, and
  // record each data row's byte offset so chunk() can seek straight to it.
  std::vector<bool> binary(header_.names.size() - 1, true);
  std::vector<double> row;
  std::size_t line_no = 1;
  for (;;) {
    const std::ifstream::pos_type pos = in.tellg();
    if (!std::getline(in, line)) break;
    ++line_no;
    if (util::trim(line).empty()) continue;
    (void)detail::parse_csv_row(line, header_, options_, line_no,
                                "CsvStreamChunks", row);
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double v = row[j];
      if (!std::isnan(v) && v != 0.0 && v != 1.0) binary[j] = false;
    }
    offsets_.push_back(static_cast<std::uint64_t>(pos));
    lines_.push_back(line_no);
  }

  for (std::size_t j = 0; j < header_.names.size(); ++j) {
    if (j == header_.label_idx) continue;
    columns_.push_back(ColumnSpec{header_.names[j], ColumnKind::kContinuous});
  }
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    if (binary[j]) columns_[j].kind = ColumnKind::kBinary;
  }
}

Dataset CsvStreamChunks::chunk(std::size_t begin, std::size_t end) const {
  check_range(begin, end, "CsvStreamChunks");
  Dataset ds(columns_);
  std::ifstream in(path_);
  if (!in) throw std::runtime_error("CsvStreamChunks: cannot open " + path_);
  std::string line;
  std::vector<double> row;
  for (std::size_t i = begin; i < end; ++i) {
    in.clear();
    in.seekg(static_cast<std::streamoff>(offsets_[i]));
    if (!std::getline(in, line)) {
      throw std::runtime_error("CsvStreamChunks: line " +
                               std::to_string(lines_[i]) +
                               " vanished mid-stream in " + path_);
    }
    // Re-validates the cell count, so a file rewritten behind our back with
    // a different column count fails with the offending row's line number.
    const int label = detail::parse_csv_row(line, header_, options_, lines_[i],
                                            "CsvStreamChunks", row);
    ds.add_row(row, label);
  }
  return ds;
}

}  // namespace hdc::data
