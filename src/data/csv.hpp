// CSV I/O for datasets. The loader accepts the common encodings of the Pima
// and Sylhet CSV files: a header row, numeric cells, and a label column.
// Empty cells, "NA", "nan" and "?" are read as missing.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace hdc::data {

struct CsvOptions {
  char delimiter = ',';
  /// Name of the label column; if empty, the last column is the label.
  std::string label_column;
  /// Strings treated as a positive label (case-insensitive) in addition to
  /// any numeric value >= 0.5.
  std::vector<std::string> positive_labels = {"positive", "yes", "1", "true"};
  /// Treat literal zero in these columns as missing (the raw Pima CSV uses 0
  /// as its missing marker for glucose/BP/skin/insulin/BMI).
  std::vector<std::string> zero_is_missing;
};

/// Parse a dataset from a stream. Column kinds are inferred: a column whose
/// non-missing values are all in {0, 1} (or yes/no strings) becomes kBinary,
/// anything else kContinuous.
[[nodiscard]] Dataset read_csv(std::istream& in, const CsvOptions& options = {});

/// Parse from a file; throws std::runtime_error if unreadable.
[[nodiscard]] Dataset read_csv_file(const std::string& path,
                                    const CsvOptions& options = {});

/// Write header + rows; missing values are written as empty cells, labels as
/// a final "label" column with values 0/1.
void write_csv(std::ostream& out, const Dataset& ds, char delimiter = ',');
void write_csv_file(const std::string& path, const Dataset& ds, char delimiter = ',');

}  // namespace hdc::data
