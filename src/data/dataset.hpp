// Column-typed tabular dataset with binary labels.
//
// Values are doubles; missing values are NaN. Column kinds drive how the HDC
// record encoder treats each feature (linear level encoding vs binary seed /
// orthogonal pair), matching the paper's per-dataset encoding choices.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hdc::data {

enum class ColumnKind { kContinuous, kBinary, kCategorical };

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kContinuous;
};

/// Per-column summary statistics (missing values excluded).
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  std::size_t present = 0;  // non-missing count
  std::size_t missing = 0;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {}

  [[nodiscard]] std::size_t n_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t n_cols() const noexcept { return columns_.size(); }

  [[nodiscard]] const std::vector<ColumnSpec>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const ColumnSpec& column(std::size_t j) const { return columns_.at(j); }

  /// Row values (length n_cols()).
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * n_cols(), n_cols()};
  }
  [[nodiscard]] double value(std::size_t i, std::size_t j) const {
    return values_[i * n_cols() + j];
  }
  void set_value(std::size_t i, std::size_t j, double v) { values_[i * n_cols() + j] = v; }

  /// Binary class label (0 = negative, 1 = positive).
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const noexcept { return labels_; }

  /// Append a row; `row` must have n_cols() entries, label must be 0 or 1.
  void add_row(std::span<const double> row, int label);

  [[nodiscard]] static bool is_missing(double v) noexcept { return std::isnan(v); }

  /// True if row i has at least one missing value.
  [[nodiscard]] bool row_has_missing(std::size_t i) const;

  /// Rows with at least one missing value.
  [[nodiscard]] std::size_t rows_with_missing() const;

  /// Count of rows with each label: {negatives, positives}.
  [[nodiscard]] std::pair<std::size_t, std::size_t> class_counts() const;

  /// Column statistics over all rows / over rows of one class.
  [[nodiscard]] ColumnStats column_stats(std::size_t j) const;
  [[nodiscard]] ColumnStats column_stats_for_class(std::size_t j, int label) const;

  /// New dataset containing the given rows (in the given order).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Feature matrix as row-major vectors (copies; for ML substrates).
  [[nodiscard]] std::vector<std::vector<double>> feature_matrix() const;

 private:
  std::vector<ColumnSpec> columns_;
  std::vector<double> values_;  // row-major, n_rows * n_cols
  std::vector<int> labels_;
};

}  // namespace hdc::data
