#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace hdc::data {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Per-class marginal spec for one Pima feature, from the paper's Table I.
struct PimaFeatureSpec {
  const char* name;
  // mean / min / max per class (index 0 = negative, 1 = positive)
  double mean[2];
  double lo[2];
  double hi[2];
  bool integer;     // rounded to whole number (counts, mmHg, years, ...)
  bool skewed;      // right-skewed (gamma-shaped) rather than ~normal
  int latent;       // index of shared latent factor (-1 = none); couples
                    // correlated features (BMI & skin, glucose & insulin, ...)
  double latent_w;  // weight of the shared factor in [0, 1)
};

// Table I of the paper: value is the class average, parentheses the range.
// Latent factors: 0 = adiposity (BMI, skin thickness), 1 = glycemia
// (glucose, insulin), 2 = age/parity (age, pregnancies).
constexpr PimaFeatureSpec kPimaSpecs[] = {
    // name             mean(neg,pos)  lo(neg,pos)   hi(neg,pos)  int  skew latent w
    {"Pregnancies",     {3.0, 4.0},    {0.0, 0.0},   {13.0, 17.0}, true,  true,  2, 0.55},
    {"Glucose",         {111.0, 145.0},{56.0, 78.0}, {197.0, 198.0}, true, false, 1, 0.65},
    {"BloodPressure",   {69.0, 74.0},  {24.0, 30.0}, {106.0, 110.0}, true, false, 0, 0.25},
    {"SkinThickness",   {27.0, 33.0},  {7.0, 7.0},   {60.0, 63.0}, true, false, 0, 0.60},
    {"Insulin",         {130.0, 207.0},{15.0, 14.0}, {744.0, 846.0}, true, true, 1, 0.55},
    {"BMI",             {32.0, 36.0},  {18.0, 23.0}, {57.0, 67.0}, false, false, 0, 0.65},
    {"DPF",             {0.47, 0.60},  {0.08, 0.12}, {2.39, 2.42}, false, true, -1, 0.0},
    {"Age",             {28.0, 36.0},  {21.0, 21.0}, {81.0, 60.0}, true,  true,  2, 0.60},
};

/// Sample one feature value for class `y` given the subject's latent factors.
double sample_pima_feature(const PimaFeatureSpec& spec, int y, const double latents[3],
                           util::Rng& rng) {
  const auto c = static_cast<std::size_t>(y);
  const double lo = spec.lo[c];
  const double hi = spec.hi[c];
  const double mean = spec.mean[c];
  // Clamp to the union of the class ranges: clamping to per-class bounds
  // would place class-specific probability atoms at the boundaries, an
  // artificial separability leak the real data does not have.
  const double clamp_lo = std::min(spec.lo[0], spec.lo[1]);
  const double clamp_hi = std::max(spec.hi[0], spec.hi[1]);
  const double shared = spec.latent >= 0 ? latents[spec.latent] : 0.0;
  const double w = spec.latent_w;
  const double z = w * shared + std::sqrt(1.0 - w * w) * rng.normal();

  double v = 0.0;
  if (spec.skewed) {
    // Shifted gamma: right tail reaches toward hi while the mass sits near
    // the class mean. Shape 2 gives a realistic skew for counts / insulin.
    const double shape = 2.0;
    const double scale = std::max(1e-9, (mean - lo) / shape);
    // Re-use the same z through the normal->gamma approximation (Wilson-
    // Hilferty) so latent correlation carries over to skewed features.
    const double g = shape * std::pow(std::max(0.0, 1.0 - 1.0 / (9.0 * shape) +
                                                         z / (3.0 * std::sqrt(shape))),
                                      3.0);
    v = lo + scale * g;
  } else {
    // Truncated normal. The divisor is a calibration constant: real Pima
    // classes overlap heavily (glucose alone classifies ~74%), so the
    // within-class spread is wider than a clean range/6 sigma.
    const double sd = (hi - lo) / 4.0;
    v = mean + sd * z;
  }
  v = std::clamp(v, clamp_lo, clamp_hi);
  if (spec.integer) v = std::round(v);
  return v;
}

}  // namespace

Dataset make_pima(const PimaConfig& config) {
  std::vector<ColumnSpec> columns;
  columns.reserve(std::size(kPimaSpecs));
  for (const auto& spec : kPimaSpecs) {
    columns.push_back(ColumnSpec{spec.name, ColumnKind::kContinuous});
  }
  Dataset ds(std::move(columns));

  util::Rng rng(config.seed);
  const std::size_t total = config.n_negative + config.n_positive;
  std::vector<double> row(std::size(kPimaSpecs));
  for (std::size_t i = 0; i < total; ++i) {
    const int y = i < config.n_negative ? 0 : 1;
    // Label noise: the recorded label stays y (class counts are fixed), but
    // the subject's physiology is drawn from the other class.
    const int effective = rng.bernoulli(config.label_noise) ? 1 - y : y;
    double latents[3] = {rng.normal(), rng.normal(), rng.normal()};
    for (std::size_t j = 0; j < std::size(kPimaSpecs); ++j) {
      row[j] = sample_pima_feature(kPimaSpecs[j], effective, latents, rng);
    }

    if (config.inject_missing) {
      // The raw Pima CSV marks missing values as zeros; roughly half of the
      // rows lack Insulin and/or SkinThickness, and they co-occur (a subject
      // without the GTT follow-up usually lacks both). Keeping the joint
      // structure reproduces the real "Pima R keeps ~51% of rows" ratio.
      const double u = rng.uniform();
      if (u < 0.27) {
        row[4] = kNaN;  // Insulin
        row[3] = kNaN;  // SkinThickness
      } else if (u < 0.455) {
        row[4] = kNaN;
      } else if (u < 0.465) {
        row[3] = kNaN;
      }
      if (rng.bernoulli(0.035)) row[2] = kNaN;  // BloodPressure
      if (rng.bernoulli(0.012)) row[5] = kNaN;  // BMI
      if (rng.bernoulli(0.006)) row[1] = kNaN;  // Glucose
    }
    ds.add_row(row, y);
  }
  return ds;
}

Dataset make_synthetic_cohort_range(std::size_t begin, std::size_t end,
                                    std::uint64_t seed) {
  if (begin > end) {
    throw std::invalid_argument("make_synthetic_cohort_range: begin > end");
  }
  std::vector<ColumnSpec> columns;
  columns.reserve(std::size(kPimaSpecs));
  for (const auto& spec : kPimaSpecs) {
    columns.push_back(ColumnSpec{spec.name, ColumnKind::kContinuous});
  }
  Dataset ds(std::move(columns));

  // One independent substream per row: row i is a pure function of
  // (i, seed), which is what makes arbitrary chunkings bit-identical.
  std::vector<double> row(std::size(kPimaSpecs));
  for (std::size_t i = begin; i < end; ++i) {
    util::Rng rng(util::mix_seed(seed, i));
    const int y = rng.bernoulli(0.35) ? 1 : 0;  // ~Pima prevalence
    double latents[3] = {rng.normal(), rng.normal(), rng.normal()};
    for (std::size_t j = 0; j < std::size(kPimaSpecs); ++j) {
      row[j] = sample_pima_feature(kPimaSpecs[j], y, latents, rng);
    }
    ds.add_row(row, y);
  }
  return ds;
}

Dataset make_synthetic_cohort(std::size_t rows, std::uint64_t seed) {
  return make_synthetic_cohort_range(0, rows, seed);
}

Dataset make_sylhet(const SylhetConfig& config) {
  // Per-class symptom prevalences P(yes | class), estimated from the source
  // dataset publication (Islam et al. 2020). Polyuria and polydipsia are the
  // strongly discriminative symptoms; itching / delayed healing carry almost
  // no signal — which is what makes nearly every classifier reach >= 90%.
  struct Symptom {
    const char* name;
    double p_neg;
    double p_pos;
  };
  constexpr Symptom kSymptoms[] = {
      {"Sex(Male)",        0.92, 0.53},
      {"Polyuria",         0.06, 0.78},
      {"Polydipsia",       0.04, 0.72},
      {"SuddenWeightLoss", 0.17, 0.54},
      {"Weakness",         0.40, 0.68},
      {"Polyphagia",       0.23, 0.57},
      {"GenitalThrush",    0.19, 0.24},
      {"VisualBlurring",   0.28, 0.54},
      {"Itching",          0.50, 0.48},
      {"Irritability",     0.11, 0.31},
      {"DelayedHealing",   0.44, 0.48},
      {"PartialParesis",   0.15, 0.60},
      {"MuscleStiffness",  0.30, 0.42},
      {"Alopecia",         0.50, 0.24},
      {"Obesity",          0.13, 0.19},
  };

  std::vector<ColumnSpec> columns;
  columns.push_back(ColumnSpec{"Age", ColumnKind::kContinuous});
  for (const auto& s : kSymptoms) {
    columns.push_back(ColumnSpec{s.name, ColumnKind::kBinary});
  }
  Dataset ds(std::move(columns));

  // Questionnaire data is clumpy: the real CSV contains many (near-)
  // duplicate symptom profiles, which is what lets a 1-NN Hamming model
  // reach ~96% on it. We reproduce that structure with a per-class mixture
  // of symptom archetypes: each archetype is drawn from the class's
  // published prevalences, and each patient is a noisy copy (per-symptom
  // flip probability kFlip) of one archetype.
  util::Rng rng(config.seed);
  constexpr std::size_t kArchetypes = 12;
  constexpr double kFlip = 0.10;
  constexpr std::size_t kSymptomCount = std::size(kSymptoms);
  std::vector<std::uint8_t> archetypes[2];
  for (int y : {0, 1}) {
    auto& bank = archetypes[static_cast<std::size_t>(y)];
    bank.resize(kArchetypes * kSymptomCount);
    for (std::size_t a = 0; a < kArchetypes; ++a) {
      for (std::size_t s = 0; s < kSymptomCount; ++s) {
        const double p = y == 1 ? kSymptoms[s].p_pos : kSymptoms[s].p_neg;
        bank[a * kSymptomCount + s] = rng.bernoulli(p) ? 1 : 0;
      }
    }
  }

  const std::size_t total = config.n_negative + config.n_positive;
  std::vector<double> row(1 + kSymptomCount);
  for (std::size_t i = 0; i < total; ++i) {
    const int y = i < config.n_negative ? 0 : 1;
    const double age_mean = y == 1 ? 49.0 : 46.0;
    row[0] = std::round(std::clamp(rng.normal(age_mean, 12.0), 16.0, 90.0));
    const auto& bank = archetypes[static_cast<std::size_t>(y)];
    const std::size_t a = static_cast<std::size_t>(rng.below(kArchetypes));
    for (std::size_t s = 0; s < kSymptomCount; ++s) {
      bool value = bank[a * kSymptomCount + s] != 0;
      if (rng.bernoulli(kFlip)) value = !value;
      row[1 + s] = value ? 1.0 : 0.0;
    }
    ds.add_row(row, y);
  }
  return ds;
}

Dataset make_two_gaussians(std::size_t n_per_class, std::size_t n_features,
                           double separation, std::uint64_t seed) {
  std::vector<ColumnSpec> columns;
  for (std::size_t j = 0; j < n_features; ++j) {
    columns.push_back(ColumnSpec{"x" + std::to_string(j), ColumnKind::kContinuous});
  }
  Dataset ds(std::move(columns));
  util::Rng rng(seed);
  std::vector<double> row(n_features);
  for (int y : {0, 1}) {
    const double centre = (y == 0 ? -0.5 : 0.5) * separation;
    for (std::size_t i = 0; i < n_per_class; ++i) {
      for (std::size_t j = 0; j < n_features; ++j) row[j] = centre + rng.normal();
      ds.add_row(row, y);
    }
  }
  return ds;
}

Dataset make_xor(std::size_t n_per_quadrant, double noise, std::uint64_t seed) {
  Dataset ds({ColumnSpec{"x0", ColumnKind::kContinuous},
              ColumnSpec{"x1", ColumnKind::kContinuous}});
  util::Rng rng(seed);
  constexpr double kCentres[4][2] = {{-1, -1}, {1, 1}, {-1, 1}, {1, -1}};
  for (int q = 0; q < 4; ++q) {
    const int y = q < 2 ? 0 : 1;  // same-sign quadrants = class 0
    for (std::size_t i = 0; i < n_per_quadrant; ++i) {
      const double row[2] = {kCentres[q][0] + noise * rng.normal(),
                             kCentres[q][1] + noise * rng.normal()};
      ds.add_row(row, y);
    }
  }
  return ds;
}

}  // namespace hdc::data
