// Train/validation/test splitting and cross-validation index generators.
// All splits are seeded and stratified (class proportions preserved) unless
// stated otherwise, matching the paper's validation protocols:
//   * leave-one-out CV for the pure Hamming model,
//   * 70/15/15 train/validation/test for the sequential NN,
//   * 10-fold CV for the ML model comparison (Table III),
//   * 90/10 holdout for the testing-metric tables (IV, V).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace hdc::data {

struct TrainTestIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

struct TrainValTestIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
  std::vector<std::size_t> test;
};

/// Stratified holdout: `test_fraction` of each class goes to test.
[[nodiscard]] TrainTestIndices stratified_split(const std::vector<int>& labels,
                                                double test_fraction,
                                                std::uint64_t seed);

/// Stratified three-way split with the given fractions (must sum to <= 1;
/// the remainder goes to train). Paper uses val = test = 0.15.
[[nodiscard]] TrainValTestIndices stratified_split3(const std::vector<int>& labels,
                                                    double val_fraction,
                                                    double test_fraction,
                                                    std::uint64_t seed);

/// Stratified k-fold: returns k disjoint test folds covering all rows.
/// fold_train(i) is everything outside fold i.
class StratifiedKFold {
 public:
  StratifiedKFold(const std::vector<int>& labels, std::size_t k, std::uint64_t seed);

  [[nodiscard]] std::size_t k() const noexcept { return folds_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& fold_test(std::size_t i) const {
    return folds_.at(i);
  }
  [[nodiscard]] std::vector<std::size_t> fold_train(std::size_t i) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<std::size_t>> folds_;
};

/// Leave-one-out: fold i tests on row i and trains on the rest.
[[nodiscard]] inline std::size_t loo_folds(const Dataset& ds) noexcept {
  return ds.n_rows();
}

}  // namespace hdc::data
