#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::data {

void Dataset::add_row(std::span<const double> row, int label) {
  if (row.size() != n_cols()) {
    throw std::invalid_argument("Dataset: row arity mismatch");
  }
  if (label != 0 && label != 1) {
    throw std::invalid_argument("Dataset: label must be 0 or 1");
  }
  values_.insert(values_.end(), row.begin(), row.end());
  labels_.push_back(label);
}

bool Dataset::row_has_missing(std::size_t i) const {
  const auto r = row(i);
  return std::any_of(r.begin(), r.end(), [](double v) { return is_missing(v); });
}

std::size_t Dataset::rows_with_missing() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    if (row_has_missing(i)) ++count;
  }
  return count;
}

std::pair<std::size_t, std::size_t> Dataset::class_counts() const {
  std::size_t neg = 0;
  std::size_t pos = 0;
  for (const int y : labels_) (y == 0 ? neg : pos)++;
  return {neg, pos};
}

namespace {
ColumnStats stats_from_values(std::vector<double>& present, std::size_t missing) {
  ColumnStats s;
  s.missing = missing;
  s.present = present.size();
  if (present.empty()) return s;
  std::sort(present.begin(), present.end());
  s.min = present.front();
  s.max = present.back();
  double sum = 0.0;
  for (const double v : present) sum += v;
  s.mean = sum / static_cast<double>(present.size());
  const std::size_t n = present.size();
  s.median = (n % 2 == 1) ? present[n / 2]
                          : 0.5 * (present[n / 2 - 1] + present[n / 2]);
  return s;
}
}  // namespace

ColumnStats Dataset::column_stats(std::size_t j) const {
  std::vector<double> present;
  present.reserve(n_rows());
  std::size_t missing = 0;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    const double v = value(i, j);
    if (is_missing(v)) {
      ++missing;
    } else {
      present.push_back(v);
    }
  }
  return stats_from_values(present, missing);
}

ColumnStats Dataset::column_stats_for_class(std::size_t j, int label) const {
  std::vector<double> present;
  std::size_t missing = 0;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    if (labels_[i] != label) continue;
    const double v = value(i, j);
    if (is_missing(v)) {
      ++missing;
    } else {
      present.push_back(v);
    }
  }
  return stats_from_values(present, missing);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(columns_);
  for (const std::size_t i : indices) {
    if (i >= n_rows()) throw std::out_of_range("Dataset::subset: index out of range");
    out.add_row(row(i), label(i));
  }
  return out;
}

std::vector<std::vector<double>> Dataset::feature_matrix() const {
  std::vector<std::vector<double>> out;
  out.reserve(n_rows());
  for (std::size_t i = 0; i < n_rows(); ++i) {
    const auto r = row(i);
    out.emplace_back(r.begin(), r.end());
  }
  return out;
}

}  // namespace hdc::data
