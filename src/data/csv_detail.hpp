// Shared CSV grammar between the eager loader (data/csv.hpp) and the
// streaming chunk reader (data/chunked.hpp): one header/row parser, two
// materialization modes. Internal — not part of the public data API.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "data/csv.hpp"

namespace hdc::data::detail {

/// Parsed CSV header: trimmed column names, the resolved label column and
/// the per-column zero-is-missing flags.
struct CsvHeader {
  std::vector<std::string> names;
  std::size_t label_idx = 0;
  std::vector<bool> zero_missing;
};

/// Parse the header line. `who` prefixes error messages ("read_csv",
/// "CsvStreamChunks") so both readers keep their own error identity.
[[nodiscard]] CsvHeader parse_csv_header(std::string_view line,
                                         const CsvOptions& options,
                                         const std::string& who);

/// Parse one non-empty data line against the header: fills `row` with the
/// feature cells (label column excluded, zero-is-missing applied) and
/// returns the 0/1 label. Throws a `who: line N ...` error on a cell-count
/// mismatch or an unparseable cell — `line_no` is the 1-based file line, so
/// streaming re-reads report the exact offending row.
[[nodiscard]] int parse_csv_row(std::string_view line, const CsvHeader& header,
                                const CsvOptions& options, std::size_t line_no,
                                const std::string& who,
                                std::vector<double>& row);

}  // namespace hdc::data::detail
