// Human-readable dataset summaries (the `df.describe()` of this library):
// per-column kind, missingness, range, mean/median, and per-class means —
// the table a practitioner checks before trusting any downstream number.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace hdc::data {

/// Multi-line ASCII summary: header with shape/class balance, then one row
/// per column.
[[nodiscard]] std::string describe(const Dataset& ds);

}  // namespace hdc::data
