file(REMOVE_RECURSE
  "CMakeFiles/table3_training_accuracy.dir/table3_training_accuracy.cpp.o"
  "CMakeFiles/table3_training_accuracy.dir/table3_training_accuracy.cpp.o.d"
  "table3_training_accuracy"
  "table3_training_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_training_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
