# Empty compiler generated dependencies file for table3_training_accuracy.
# This may be replaced when dependencies are built.
