file(REMOVE_RECURSE
  "CMakeFiles/table4_pima_m_metrics.dir/table4_pima_m_metrics.cpp.o"
  "CMakeFiles/table4_pima_m_metrics.dir/table4_pima_m_metrics.cpp.o.d"
  "table4_pima_m_metrics"
  "table4_pima_m_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pima_m_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
