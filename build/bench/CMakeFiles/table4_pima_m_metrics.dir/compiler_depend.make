# Empty compiler generated dependencies file for table4_pima_m_metrics.
# This may be replaced when dependencies are built.
