file(REMOVE_RECURSE
  "CMakeFiles/ablation_vsa.dir/ablation_vsa.cpp.o"
  "CMakeFiles/ablation_vsa.dir/ablation_vsa.cpp.o.d"
  "ablation_vsa"
  "ablation_vsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
