# Empty compiler generated dependencies file for ablation_vsa.
# This may be replaced when dependencies are built.
