file(REMOVE_RECURSE
  "CMakeFiles/table2_hamming_nn.dir/table2_hamming_nn.cpp.o"
  "CMakeFiles/table2_hamming_nn.dir/table2_hamming_nn.cpp.o.d"
  "table2_hamming_nn"
  "table2_hamming_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hamming_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
