# Empty dependencies file for table2_hamming_nn.
# This may be replaced when dependencies are built.
