# Empty compiler generated dependencies file for table1_pima_stats.
# This may be replaced when dependencies are built.
