file(REMOVE_RECURSE
  "CMakeFiles/table5_sylhet_metrics.dir/table5_sylhet_metrics.cpp.o"
  "CMakeFiles/table5_sylhet_metrics.dir/table5_sylhet_metrics.cpp.o.d"
  "table5_sylhet_metrics"
  "table5_sylhet_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_sylhet_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
