# Empty dependencies file for table5_sylhet_metrics.
# This may be replaced when dependencies are built.
