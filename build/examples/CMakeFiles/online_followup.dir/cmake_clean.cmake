file(REMOVE_RECURSE
  "CMakeFiles/online_followup.dir/online_followup.cpp.o"
  "CMakeFiles/online_followup.dir/online_followup.cpp.o.d"
  "online_followup"
  "online_followup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_followup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
