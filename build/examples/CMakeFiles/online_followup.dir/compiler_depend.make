# Empty compiler generated dependencies file for online_followup.
# This may be replaced when dependencies are built.
