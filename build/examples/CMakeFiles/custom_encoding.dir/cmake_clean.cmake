file(REMOVE_RECURSE
  "CMakeFiles/custom_encoding.dir/custom_encoding.cpp.o"
  "CMakeFiles/custom_encoding.dir/custom_encoding.cpp.o.d"
  "custom_encoding"
  "custom_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
