# Empty compiler generated dependencies file for custom_encoding.
# This may be replaced when dependencies are built.
