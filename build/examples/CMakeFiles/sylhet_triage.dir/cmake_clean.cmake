file(REMOVE_RECURSE
  "CMakeFiles/sylhet_triage.dir/sylhet_triage.cpp.o"
  "CMakeFiles/sylhet_triage.dir/sylhet_triage.cpp.o.d"
  "sylhet_triage"
  "sylhet_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sylhet_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
