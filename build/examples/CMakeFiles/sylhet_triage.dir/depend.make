# Empty dependencies file for sylhet_triage.
# This may be replaced when dependencies are built.
