# Empty dependencies file for model_zoo.
# This may be replaced when dependencies are built.
