file(REMOVE_RECURSE
  "CMakeFiles/model_zoo.dir/model_zoo.cpp.o"
  "CMakeFiles/model_zoo.dir/model_zoo.cpp.o.d"
  "model_zoo"
  "model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
