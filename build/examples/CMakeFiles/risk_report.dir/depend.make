# Empty dependencies file for risk_report.
# This may be replaced when dependencies are built.
