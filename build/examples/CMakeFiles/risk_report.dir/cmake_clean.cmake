file(REMOVE_RECURSE
  "CMakeFiles/risk_report.dir/risk_report.cpp.o"
  "CMakeFiles/risk_report.dir/risk_report.cpp.o.d"
  "risk_report"
  "risk_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
