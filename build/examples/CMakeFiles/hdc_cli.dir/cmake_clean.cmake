file(REMOVE_RECURSE
  "CMakeFiles/hdc_cli.dir/hdc_cli.cpp.o"
  "CMakeFiles/hdc_cli.dir/hdc_cli.cpp.o.d"
  "hdc_cli"
  "hdc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
