# Empty dependencies file for hdc_cli.
# This may be replaced when dependencies are built.
