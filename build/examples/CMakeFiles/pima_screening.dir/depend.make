# Empty dependencies file for pima_screening.
# This may be replaced when dependencies are built.
