file(REMOVE_RECURSE
  "CMakeFiles/pima_screening.dir/pima_screening.cpp.o"
  "CMakeFiles/pima_screening.dir/pima_screening.cpp.o.d"
  "pima_screening"
  "pima_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
