# Empty compiler generated dependencies file for hdc.
# This may be replaced when dependencies are built.
