
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/hdc.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/CMakeFiles/hdc.dir/core/extractor.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/core/extractor.cpp.o.d"
  "/root/repo/src/core/hamming_classifier.cpp" "src/CMakeFiles/hdc.dir/core/hamming_classifier.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/core/hamming_classifier.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/hdc.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/CMakeFiles/hdc.dir/core/online.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/core/online.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/hdc.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/core/serialize.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/hdc.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/hdc.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/describe.cpp" "src/CMakeFiles/hdc.dir/data/describe.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/data/describe.cpp.o.d"
  "/root/repo/src/data/preprocess.cpp" "src/CMakeFiles/hdc.dir/data/preprocess.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/data/preprocess.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/CMakeFiles/hdc.dir/data/split.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/data/split.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/hdc.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/eval/bootstrap.cpp" "src/CMakeFiles/hdc.dir/eval/bootstrap.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/eval/bootstrap.cpp.o.d"
  "/root/repo/src/eval/cross_validation.cpp" "src/CMakeFiles/hdc.dir/eval/cross_validation.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/eval/cross_validation.cpp.o.d"
  "/root/repo/src/eval/curves.cpp" "src/CMakeFiles/hdc.dir/eval/curves.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/eval/curves.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/hdc.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/hdc.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/eval/report.cpp.o.d"
  "/root/repo/src/hv/bitvector.cpp" "src/CMakeFiles/hdc.dir/hv/bitvector.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/hv/bitvector.cpp.o.d"
  "/root/repo/src/hv/encoders.cpp" "src/CMakeFiles/hdc.dir/hv/encoders.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/hv/encoders.cpp.o.d"
  "/root/repo/src/hv/int_vector.cpp" "src/CMakeFiles/hdc.dir/hv/int_vector.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/hv/int_vector.cpp.o.d"
  "/root/repo/src/hv/item_memory.cpp" "src/CMakeFiles/hdc.dir/hv/item_memory.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/hv/item_memory.cpp.o.d"
  "/root/repo/src/hv/ops.cpp" "src/CMakeFiles/hdc.dir/hv/ops.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/hv/ops.cpp.o.d"
  "/root/repo/src/hv/sequence.cpp" "src/CMakeFiles/hdc.dir/hv/sequence.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/hv/sequence.cpp.o.d"
  "/root/repo/src/ml/calibration.cpp" "src/CMakeFiles/hdc.dir/ml/calibration.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/calibration.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/CMakeFiles/hdc.dir/ml/classifier.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/classifier.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/CMakeFiles/hdc.dir/ml/forest.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/forest.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/CMakeFiles/hdc.dir/ml/gbdt.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/gbdt.cpp.o.d"
  "/root/repo/src/ml/hist_gbdt.cpp" "src/CMakeFiles/hdc.dir/ml/hist_gbdt.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/hist_gbdt.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/hdc.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/CMakeFiles/hdc.dir/ml/logistic.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/logistic.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/CMakeFiles/hdc.dir/ml/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/ordered_gbdt.cpp" "src/CMakeFiles/hdc.dir/ml/ordered_gbdt.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/ordered_gbdt.cpp.o.d"
  "/root/repo/src/ml/sgd.cpp" "src/CMakeFiles/hdc.dir/ml/sgd.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/sgd.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/CMakeFiles/hdc.dir/ml/svm.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/svm.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/CMakeFiles/hdc.dir/ml/tree.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/tree.cpp.o.d"
  "/root/repo/src/ml/zoo.cpp" "src/CMakeFiles/hdc.dir/ml/zoo.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/ml/zoo.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/hdc.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/hdc.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/CMakeFiles/hdc.dir/nn/matrix.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/hdc.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/hdc.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/hdc.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/hdc.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/hdc.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/hdc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/str.cpp" "src/CMakeFiles/hdc.dir/util/str.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/util/str.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/hdc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/hdc.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
