file(REMOVE_RECURSE
  "libhdc.a"
)
