# Empty compiler generated dependencies file for ml_zoo_test.
# This may be replaced when dependencies are built.
