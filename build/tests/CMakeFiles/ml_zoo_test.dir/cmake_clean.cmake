file(REMOVE_RECURSE
  "CMakeFiles/ml_zoo_test.dir/ml_zoo_test.cpp.o"
  "CMakeFiles/ml_zoo_test.dir/ml_zoo_test.cpp.o.d"
  "ml_zoo_test"
  "ml_zoo_test.pdb"
  "ml_zoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
