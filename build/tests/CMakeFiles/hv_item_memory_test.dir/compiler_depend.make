# Empty compiler generated dependencies file for hv_item_memory_test.
# This may be replaced when dependencies are built.
