file(REMOVE_RECURSE
  "CMakeFiles/hv_item_memory_test.dir/hv_item_memory_test.cpp.o"
  "CMakeFiles/hv_item_memory_test.dir/hv_item_memory_test.cpp.o.d"
  "hv_item_memory_test"
  "hv_item_memory_test.pdb"
  "hv_item_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_item_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
