file(REMOVE_RECURSE
  "CMakeFiles/hv_property_test.dir/hv_property_test.cpp.o"
  "CMakeFiles/hv_property_test.dir/hv_property_test.cpp.o.d"
  "hv_property_test"
  "hv_property_test.pdb"
  "hv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
