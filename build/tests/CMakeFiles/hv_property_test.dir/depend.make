# Empty dependencies file for hv_property_test.
# This may be replaced when dependencies are built.
