file(REMOVE_RECURSE
  "CMakeFiles/hv_int_vector_test.dir/hv_int_vector_test.cpp.o"
  "CMakeFiles/hv_int_vector_test.dir/hv_int_vector_test.cpp.o.d"
  "hv_int_vector_test"
  "hv_int_vector_test.pdb"
  "hv_int_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_int_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
