# Empty compiler generated dependencies file for hv_int_vector_test.
# This may be replaced when dependencies are built.
