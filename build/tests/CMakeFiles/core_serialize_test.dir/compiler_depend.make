# Empty compiler generated dependencies file for core_serialize_test.
# This may be replaced when dependencies are built.
