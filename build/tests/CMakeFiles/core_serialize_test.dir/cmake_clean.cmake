file(REMOVE_RECURSE
  "CMakeFiles/core_serialize_test.dir/core_serialize_test.cpp.o"
  "CMakeFiles/core_serialize_test.dir/core_serialize_test.cpp.o.d"
  "core_serialize_test"
  "core_serialize_test.pdb"
  "core_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
