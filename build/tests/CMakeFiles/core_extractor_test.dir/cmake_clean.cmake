file(REMOVE_RECURSE
  "CMakeFiles/core_extractor_test.dir/core_extractor_test.cpp.o"
  "CMakeFiles/core_extractor_test.dir/core_extractor_test.cpp.o.d"
  "core_extractor_test"
  "core_extractor_test.pdb"
  "core_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
