# Empty dependencies file for core_extractor_test.
# This may be replaced when dependencies are built.
