# Empty dependencies file for core_hamming_test.
# This may be replaced when dependencies are built.
