file(REMOVE_RECURSE
  "CMakeFiles/core_hamming_test.dir/core_hamming_test.cpp.o"
  "CMakeFiles/core_hamming_test.dir/core_hamming_test.cpp.o.d"
  "core_hamming_test"
  "core_hamming_test.pdb"
  "core_hamming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hamming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
