file(REMOVE_RECURSE
  "CMakeFiles/ml_tree_test.dir/ml_tree_test.cpp.o"
  "CMakeFiles/ml_tree_test.dir/ml_tree_test.cpp.o.d"
  "ml_tree_test"
  "ml_tree_test.pdb"
  "ml_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
