file(REMOVE_RECURSE
  "CMakeFiles/util_str_test.dir/util_str_test.cpp.o"
  "CMakeFiles/util_str_test.dir/util_str_test.cpp.o.d"
  "util_str_test"
  "util_str_test.pdb"
  "util_str_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_str_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
