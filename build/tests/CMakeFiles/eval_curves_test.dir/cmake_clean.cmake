file(REMOVE_RECURSE
  "CMakeFiles/eval_curves_test.dir/eval_curves_test.cpp.o"
  "CMakeFiles/eval_curves_test.dir/eval_curves_test.cpp.o.d"
  "eval_curves_test"
  "eval_curves_test.pdb"
  "eval_curves_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_curves_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
