# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ml_knn_nb_test.
