# Empty compiler generated dependencies file for ml_knn_nb_test.
# This may be replaced when dependencies are built.
