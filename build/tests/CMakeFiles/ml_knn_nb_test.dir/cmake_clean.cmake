file(REMOVE_RECURSE
  "CMakeFiles/ml_knn_nb_test.dir/ml_knn_nb_test.cpp.o"
  "CMakeFiles/ml_knn_nb_test.dir/ml_knn_nb_test.cpp.o.d"
  "ml_knn_nb_test"
  "ml_knn_nb_test.pdb"
  "ml_knn_nb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_knn_nb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
