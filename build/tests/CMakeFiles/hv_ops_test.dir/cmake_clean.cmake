file(REMOVE_RECURSE
  "CMakeFiles/hv_ops_test.dir/hv_ops_test.cpp.o"
  "CMakeFiles/hv_ops_test.dir/hv_ops_test.cpp.o.d"
  "hv_ops_test"
  "hv_ops_test.pdb"
  "hv_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
