# Empty dependencies file for hv_ops_test.
# This may be replaced when dependencies are built.
