# Empty dependencies file for ml_boost_test.
# This may be replaced when dependencies are built.
