file(REMOVE_RECURSE
  "CMakeFiles/ml_boost_test.dir/ml_boost_test.cpp.o"
  "CMakeFiles/ml_boost_test.dir/ml_boost_test.cpp.o.d"
  "ml_boost_test"
  "ml_boost_test.pdb"
  "ml_boost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_boost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
