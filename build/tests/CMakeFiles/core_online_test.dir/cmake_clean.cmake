file(REMOVE_RECURSE
  "CMakeFiles/core_online_test.dir/core_online_test.cpp.o"
  "CMakeFiles/core_online_test.dir/core_online_test.cpp.o.d"
  "core_online_test"
  "core_online_test.pdb"
  "core_online_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
