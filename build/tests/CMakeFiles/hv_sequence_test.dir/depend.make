# Empty dependencies file for hv_sequence_test.
# This may be replaced when dependencies are built.
