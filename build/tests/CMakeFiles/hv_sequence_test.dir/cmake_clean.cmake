file(REMOVE_RECURSE
  "CMakeFiles/hv_sequence_test.dir/hv_sequence_test.cpp.o"
  "CMakeFiles/hv_sequence_test.dir/hv_sequence_test.cpp.o.d"
  "hv_sequence_test"
  "hv_sequence_test.pdb"
  "hv_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
