# Empty dependencies file for eval_cv_test.
# This may be replaced when dependencies are built.
