file(REMOVE_RECURSE
  "CMakeFiles/eval_cv_test.dir/eval_cv_test.cpp.o"
  "CMakeFiles/eval_cv_test.dir/eval_cv_test.cpp.o.d"
  "eval_cv_test"
  "eval_cv_test.pdb"
  "eval_cv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
