file(REMOVE_RECURSE
  "CMakeFiles/core_experiment_test.dir/core_experiment_test.cpp.o"
  "CMakeFiles/core_experiment_test.dir/core_experiment_test.cpp.o.d"
  "core_experiment_test"
  "core_experiment_test.pdb"
  "core_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
