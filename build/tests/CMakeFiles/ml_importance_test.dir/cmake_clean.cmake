file(REMOVE_RECURSE
  "CMakeFiles/ml_importance_test.dir/ml_importance_test.cpp.o"
  "CMakeFiles/ml_importance_test.dir/ml_importance_test.cpp.o.d"
  "ml_importance_test"
  "ml_importance_test.pdb"
  "ml_importance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_importance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
