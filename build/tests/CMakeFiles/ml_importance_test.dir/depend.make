# Empty dependencies file for ml_importance_test.
# This may be replaced when dependencies are built.
