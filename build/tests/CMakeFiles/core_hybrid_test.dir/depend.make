# Empty dependencies file for core_hybrid_test.
# This may be replaced when dependencies are built.
