# Empty dependencies file for ml_linear_test.
# This may be replaced when dependencies are built.
