file(REMOVE_RECURSE
  "CMakeFiles/ml_linear_test.dir/ml_linear_test.cpp.o"
  "CMakeFiles/ml_linear_test.dir/ml_linear_test.cpp.o.d"
  "ml_linear_test"
  "ml_linear_test.pdb"
  "ml_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
