file(REMOVE_RECURSE
  "CMakeFiles/data_preprocess_test.dir/data_preprocess_test.cpp.o"
  "CMakeFiles/data_preprocess_test.dir/data_preprocess_test.cpp.o.d"
  "data_preprocess_test"
  "data_preprocess_test.pdb"
  "data_preprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_preprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
