file(REMOVE_RECURSE
  "CMakeFiles/nn_sequential_test.dir/nn_sequential_test.cpp.o"
  "CMakeFiles/nn_sequential_test.dir/nn_sequential_test.cpp.o.d"
  "nn_sequential_test"
  "nn_sequential_test.pdb"
  "nn_sequential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
