# Empty compiler generated dependencies file for ml_forest_test.
# This may be replaced when dependencies are built.
