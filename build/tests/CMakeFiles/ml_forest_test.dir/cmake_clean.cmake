file(REMOVE_RECURSE
  "CMakeFiles/ml_forest_test.dir/ml_forest_test.cpp.o"
  "CMakeFiles/ml_forest_test.dir/ml_forest_test.cpp.o.d"
  "ml_forest_test"
  "ml_forest_test.pdb"
  "ml_forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
