# Empty compiler generated dependencies file for core_zoo_hybrid_test.
# This may be replaced when dependencies are built.
