file(REMOVE_RECURSE
  "CMakeFiles/core_zoo_hybrid_test.dir/core_zoo_hybrid_test.cpp.o"
  "CMakeFiles/core_zoo_hybrid_test.dir/core_zoo_hybrid_test.cpp.o.d"
  "core_zoo_hybrid_test"
  "core_zoo_hybrid_test.pdb"
  "core_zoo_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_zoo_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
