file(REMOVE_RECURSE
  "CMakeFiles/data_split_test.dir/data_split_test.cpp.o"
  "CMakeFiles/data_split_test.dir/data_split_test.cpp.o.d"
  "data_split_test"
  "data_split_test.pdb"
  "data_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
