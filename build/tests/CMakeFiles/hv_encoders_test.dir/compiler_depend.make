# Empty compiler generated dependencies file for hv_encoders_test.
# This may be replaced when dependencies are built.
