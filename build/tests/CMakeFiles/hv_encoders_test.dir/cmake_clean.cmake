file(REMOVE_RECURSE
  "CMakeFiles/hv_encoders_test.dir/hv_encoders_test.cpp.o"
  "CMakeFiles/hv_encoders_test.dir/hv_encoders_test.cpp.o.d"
  "hv_encoders_test"
  "hv_encoders_test.pdb"
  "hv_encoders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_encoders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
