file(REMOVE_RECURSE
  "CMakeFiles/data_describe_test.dir/data_describe_test.cpp.o"
  "CMakeFiles/data_describe_test.dir/data_describe_test.cpp.o.d"
  "data_describe_test"
  "data_describe_test.pdb"
  "data_describe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
