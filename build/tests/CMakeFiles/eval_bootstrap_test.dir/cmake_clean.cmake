file(REMOVE_RECURSE
  "CMakeFiles/eval_bootstrap_test.dir/eval_bootstrap_test.cpp.o"
  "CMakeFiles/eval_bootstrap_test.dir/eval_bootstrap_test.cpp.o.d"
  "eval_bootstrap_test"
  "eval_bootstrap_test.pdb"
  "eval_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
