# Empty compiler generated dependencies file for ml_calibration_test.
# This may be replaced when dependencies are built.
