file(REMOVE_RECURSE
  "CMakeFiles/ml_calibration_test.dir/ml_calibration_test.cpp.o"
  "CMakeFiles/ml_calibration_test.dir/ml_calibration_test.cpp.o.d"
  "ml_calibration_test"
  "ml_calibration_test.pdb"
  "ml_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
