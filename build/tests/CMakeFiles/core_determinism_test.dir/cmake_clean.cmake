file(REMOVE_RECURSE
  "CMakeFiles/core_determinism_test.dir/core_determinism_test.cpp.o"
  "CMakeFiles/core_determinism_test.dir/core_determinism_test.cpp.o.d"
  "core_determinism_test"
  "core_determinism_test.pdb"
  "core_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
