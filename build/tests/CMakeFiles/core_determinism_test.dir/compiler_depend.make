# Empty compiler generated dependencies file for core_determinism_test.
# This may be replaced when dependencies are built.
