file(REMOVE_RECURSE
  "CMakeFiles/hv_bitvector_test.dir/hv_bitvector_test.cpp.o"
  "CMakeFiles/hv_bitvector_test.dir/hv_bitvector_test.cpp.o.d"
  "hv_bitvector_test"
  "hv_bitvector_test.pdb"
  "hv_bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
