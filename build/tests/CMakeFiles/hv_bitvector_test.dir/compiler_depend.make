# Empty compiler generated dependencies file for hv_bitvector_test.
# This may be replaced when dependencies are built.
