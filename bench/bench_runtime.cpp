// Batch-engine runtime bench: encode throughput and Hamming-LOOCV wall time
// at 1 / 2 / N threads over the synthetic Pima set (768 rows, d=10,000 by
// default), emitted as machine-readable JSON (BENCH_runtime.json) so future
// PRs have a perf trajectory to compare against.
//
// The run doubles as a determinism check: the LOOCV confusion matrix must be
// bit-identical at every thread count, or the bench exits non-zero.
//
// Flags: --dim N (default 10000), --seed S, --threads T (default 8; the
// thread set is {1, 2, T} plus hardware_threads() if distinct), --reps R
// (default 3, best-of), --out PATH (default BENCH_runtime.json), --fast.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "eval/cross_validation.hpp"
#include "hv/search.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using hdc::util::Timer;

struct ThreadSample {
  std::size_t threads = 0;
  double encode_seconds = 0.0;
  double loocv_seconds = 0.0;
  hdc::eval::BinaryMetrics metrics;
};

template <typename Fn>
double best_of(std::size_t reps, const Fn& fn) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = r == 0 ? timer.seconds() : std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::size_t dim =
      static_cast<std::size_t>(cli.get_int("--dim", fast ? 2000 : 10000));
  const std::uint64_t seed = cli.get_uint("--seed", 2023);
  const std::size_t max_threads =
      static_cast<std::size_t>(cli.get_int("--threads", 8));
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("--reps", fast ? 1 : 3));
  const std::string out_path = cli.get_string("--out", "BENCH_runtime.json");

  // The paper's Pima protocol: 768 rows, class-median imputed ("Pima M").
  hdc::data::PimaConfig pima_config;
  pima_config.seed = seed;
  const hdc::data::Dataset ds =
      hdc::data::impute_class_median(hdc::data::make_pima(pima_config));

  hdc::core::ExtractorConfig extractor_config;
  extractor_config.dimensions = dim;
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(ds);

  // Clamp the sweep to available hardware: oversubscribed "speedups" on a
  // 1-core box are scheduler noise, not engine scaling. speedup_valid in the
  // JSON records whether the speedup columns mean anything.
  const std::size_t hw_threads = hdc::parallel::hardware_threads();
  std::vector<std::size_t> thread_counts;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, max_threads, hw_threads}) {
    if (t >= 1 && t <= hw_threads) thread_counts.push_back(t);
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());
  const bool speedup_valid = hw_threads > 1 && thread_counts.size() > 1;
  // A one-point sweep is not a failed scaling run — it is a machine that
  // cannot measure scaling at all. Say so explicitly so downstream gates
  // can pass on single-core runners instead of reading "invalid".
  const char* speedup_skipped_reason =
      thread_counts.size() > 1 ? ""
      : hw_threads == 1        ? "hardware_threads==1"
                               : "single-point thread sweep";

  std::printf("# bench_runtime: rows=%zu dim=%zu seed=%llu reps=%zu hw_threads=%zu "
              "simd=%s\n",
              ds.n_rows(), dim, static_cast<unsigned long long>(seed), reps,
              hw_threads, hdc::simd::tier_name(hdc::simd::active_tier()));

  std::vector<ThreadSample> samples;
  for (const std::size_t t : thread_counts) {
    hdc::parallel::ThreadPool pool(t);
    ThreadSample sample;
    sample.threads = t;

    std::vector<hdc::hv::BitVector> vectors;
    sample.encode_seconds =
        best_of(reps, [&] { vectors = extractor.transform(ds, &pool); });
    sample.loocv_seconds = best_of(reps, [&] {
      sample.metrics = hdc::eval::hamming_loocv(vectors, ds.labels(), &pool).metrics;
    });
    std::printf("# threads=%zu encode=%.4fs (%.0f rows/s) loocv=%.4fs acc=%.6f f1=%.6f\n",
                t, sample.encode_seconds,
                static_cast<double>(ds.n_rows()) / sample.encode_seconds,
                sample.loocv_seconds, sample.metrics.accuracy, sample.metrics.f1);
    samples.push_back(sample);
  }

  // Instrumented pass (after the timed reps, so recording overhead never
  // touches the measured numbers): one encode + LOOCV with the obs registry
  // on, snapshotted into the JSON so the perf artefact is self-describing.
  hdc::obs::reset_metrics();
  hdc::obs::set_enabled(true);
  hdc::eval::BinaryMetrics obs_metrics;
  {
    hdc::parallel::ThreadPool pool(std::max<std::size_t>(2, max_threads));
    const std::vector<hdc::hv::BitVector> vectors = extractor.transform(ds, &pool);
    obs_metrics = hdc::eval::hamming_loocv(vectors, ds.labels(), &pool).metrics;
  }
  hdc::obs::set_enabled(false);
  const hdc::obs::MetricsSnapshot obs_snapshot = hdc::obs::snapshot();

  // Determinism gate: every thread count must produce the same confusion —
  // including the instrumented pass (recording must never perturb results).
  const auto& reference = samples.front().metrics.confusion;
  if (obs_metrics.confusion.tp != reference.tp ||
      obs_metrics.confusion.tn != reference.tn ||
      obs_metrics.confusion.fp != reference.fp ||
      obs_metrics.confusion.fn != reference.fn) {
    std::fprintf(stderr,
                 "FATAL: metrics differ between plain and obs-instrumented "
                 "runs — observability leaked into results\n");
    return 1;
  }
  for (const ThreadSample& s : samples) {
    if (s.metrics.confusion.tp != reference.tp ||
        s.metrics.confusion.tn != reference.tn ||
        s.metrics.confusion.fp != reference.fp ||
        s.metrics.confusion.fn != reference.fn) {
      std::fprintf(stderr,
                   "FATAL: metrics differ between 1 and %zu threads — the "
                   "batch engine lost its determinism guarantee\n",
                   s.threads);
      return 1;
    }
  }

  // Dispatch-tier invariance gate: every supported SIMD tier must reproduce
  // the reference confusion matrix bit-exactly (kernels may only change
  // throughput, never results).
  const hdc::simd::Tier initial_tier = hdc::simd::active_tier();
  std::string tiers_checked;
  for (const hdc::simd::Tier tier : hdc::simd::supported_tiers()) {
    hdc::simd::set_tier(tier);
    const std::vector<hdc::hv::BitVector> tier_vectors = extractor.transform(ds);
    const hdc::eval::BinaryMetrics tier_metrics =
        hdc::eval::hamming_loocv(tier_vectors, ds.labels()).metrics;
    if (tier_metrics.confusion.tp != reference.tp ||
        tier_metrics.confusion.tn != reference.tn ||
        tier_metrics.confusion.fp != reference.fp ||
        tier_metrics.confusion.fn != reference.fn) {
      std::fprintf(stderr,
                   "FATAL: metrics differ on SIMD tier '%s' — a kernel tier "
                   "is not bit-exact\n",
                   hdc::simd::tier_name(tier));
      return 1;
    }
    if (!tiers_checked.empty()) tiers_checked += ", ";
    tiers_checked += std::string("\"") + hdc::simd::tier_name(tier) + "\"";
  }
  hdc::simd::set_tier(initial_tier);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const ThreadSample& base = samples.front();  // threads == 1
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_runtime\",\n"
               "  \"dataset\": \"pima_m_synthetic\",\n"
               "  \"rows\": %zu,\n"
               "  \"dimensions\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"reps\": %zu,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"simd_tier\": \"%s\",\n"
               "  \"simd_tiers_checked\": [%s],\n"
               "  \"metrics\": {\"accuracy\": %.17g, \"f1\": %.17g, \"tp\": %zu, "
               "\"tn\": %zu, \"fp\": %zu, \"fn\": %zu},\n"
               "  \"metrics_identical_across_threads\": true,\n"
               "  \"metrics_identical_across_tiers\": true,\n"
               "  \"speedup_valid\": %s,\n"
               "  \"speedup_skipped_reason\": \"%s\",\n"
               "  \"threads\": [\n",
               ds.n_rows(), dim, static_cast<unsigned long long>(seed), reps,
               hw_threads, hdc::simd::tier_name(initial_tier),
               tiers_checked.c_str(), base.metrics.accuracy,
               base.metrics.f1, reference.tp, reference.tn, reference.fp,
               reference.fn, speedup_valid ? "true" : "false",
               speedup_skipped_reason);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const ThreadSample& s = samples[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"encode_seconds\": %.6f, "
                 "\"encode_rows_per_sec\": %.1f, \"loocv_seconds\": %.6f, "
                 "\"encode_speedup\": %.3f, \"loocv_speedup\": %.3f}%s\n",
                 s.threads, s.encode_seconds,
                 static_cast<double>(ds.n_rows()) / s.encode_seconds,
                 s.loocv_seconds, base.encode_seconds / s.encode_seconds,
                 base.loocv_seconds / s.loocv_seconds,
                 i + 1 < samples.size() ? "," : "");
  }
  // Self-describing obs section: headline derived stats + the full registry
  // snapshot from the (untimed) instrumented pass.
  const auto* encode_hist = obs_snapshot.histogram("hv.encode.chunk_seconds");
  const auto* search_hist = obs_snapshot.histogram("hv.search.chunk_seconds");
  hdc::core::ExperimentConfig manifest_config;
  manifest_config.extractor = extractor_config;
  manifest_config.seed = seed;
  std::fprintf(out,
               "  ],\n"
               "  \"obs\": {\n"
               "    \"encode_rows\": %llu,\n"
               "    \"search_word_ops\": %llu,\n"
               "    \"pool_tasks_completed\": %llu,\n"
               "    \"pool_queue_depth_peak\": %lld,\n"
               "    \"encode_stage_seconds\": %.6f,\n"
               "    \"search_stage_seconds\": %.6f,\n"
               "    \"snapshot\": %s\n"
               "  },\n"
               "  \"manifest\": %s\n}\n",
               static_cast<unsigned long long>(
                   obs_snapshot.counter_value("hv.encode.rows")),
               static_cast<unsigned long long>(
                   obs_snapshot.counter_value("hv.search.word_ops")),
               static_cast<unsigned long long>(
                   obs_snapshot.counter_value("pool.tasks_completed")),
               static_cast<long long>(obs_snapshot.gauge_max("pool.queue_depth")),
               encode_hist != nullptr ? encode_hist->sum : 0.0,
               search_hist != nullptr ? search_hist->sum : 0.0,
               hdc::obs::to_json(obs_snapshot).c_str(),
               hdc::bench::manifest_json(ds, "pima_m_synthetic", manifest_config)
                   .c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
