// Table I reproduction: per-class mean and range of the 8 Pima features on
// the cleaned (rows-removed) dataset. Validates that the synthetic Pima
// substitute matches the statistics the paper publishes.
#include <cstdio>

#include "bench_common.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  const char* feature;
  std::size_t column;
  const char* paper_positive;
  const char* paper_negative;
};

// Paper Table I values, for side-by-side comparison.
constexpr PaperRow kPaperRows[] = {
    {"Age", 7, "36 (21-60)", "28 (21-81)"},
    {"Pregnancies", 0, "4 (0-17)", "3 (0-13)"},
    {"Glucose", 1, "145 (78-198)", "111 (56-197)"},
    {"BMI", 5, "36 (23-67)", "32 (18-57)"},
    {"Skin Thickness", 3, "33 (7-63)", "27 (7-60)"},
    {"Insulin", 4, "207 (14-846)", "130 (15-744)"},
    {"DPF", 6, "0.6 (0.12-2.42)", "0.47 (0.08-2.39)"},
    {"Blood Pressure", 2, "74 (30-110)", "69 (24-106)"},
};

std::string cell(const hdc::data::ColumnStats& s, int decimals) {
  return hdc::util::format_double(s.mean, decimals) + " (" +
         hdc::util::format_double(s.min, decimals) + "-" +
         hdc::util::format_double(s.max, decimals) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Table I: Pima feature distribution (positive / negative) ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);
  const hdc::data::Dataset& ds = setup.pima_r;

  const auto [neg, pos] = ds.class_counts();
  std::printf("# Pima R classes: %zu negative, %zu positive (paper: 262 / 130)\n",
              neg, pos);

  hdc::util::Table table({"Feature", "Positive (ours)", "Positive (paper)",
                          "Negative (ours)", "Negative (paper)"});
  for (const PaperRow& row : kPaperRows) {
    const int decimals = row.column == 6 ? 2 : 0;  // DPF keeps decimals
    table.add_row({row.feature, cell(ds.column_stats_for_class(row.column, 1), decimals),
                   row.paper_positive,
                   cell(ds.column_stats_for_class(row.column, 0), decimals),
                   row.paper_negative});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
