// Table II reproduction: testing accuracy of the pure Hamming-distance HDC
// model (leave-one-out) and of the Sequential NN (70/15/15, early stopping,
// averaged over repeats) on raw features vs hypervectors, for Pima R,
// Pima M and Sylhet.
#include <cstdio>

#include "bench_common.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

struct PaperRef {
  const char* hamming;
  const char* nn_features;
  const char* nn_hypervectors;
};

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Table II: Hamming & Sequential NN testing accuracy ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  const std::pair<const char*, const hdc::data::Dataset*> datasets[] = {
      {"Pima R", &setup.pima_r}, {"Pima M", &setup.pima_m}, {"Syhlet", &setup.sylhet}};
  const PaperRef paper[] = {{"70.7%", "71.2%", "79.6%"},
                            {"78.8%", "75.9%", "88.8%"},
                            {"95.9%", "97.4%", "97.4%"}};

  // Raw-feature runs need the full 1000-epoch budget (Adam adapts slowly to
  // unscaled clinical features and each epoch is microseconds); hypervector
  // runs converge within ~200 epochs, so a small min_delta stops them early
  // — each 10k-input epoch costs ~0.4 s on one core.
  hdc::nn::SequentialConfig nn_feat_config;
  nn_feat_config.max_epochs = 1000;
  nn_feat_config.patience = 20;
  nn_feat_config.min_delta = 0.0;
  hdc::nn::SequentialConfig nn_hv_config = nn_feat_config;
  nn_hv_config.min_delta = 1e-4;

  hdc::util::Table table({"Dataset", "Hamming (ours)", "Hamming (paper)",
                          "NN feat (ours)", "NN feat (paper)", "NN HV (ours)",
                          "NN HV (paper)"});
  for (std::size_t d = 0; d < 3; ++d) {
    const auto& [name, ds] = datasets[d];
    std::fprintf(stderr, "[table2] %s: Hamming LOO...\n", name);
    const auto hamming = hdc::core::hamming_loo(*ds, setup.experiment);
    std::fprintf(stderr, "[table2] %s: Sequential NN on features...\n", name);
    const auto nn_feat =
        hdc::core::nn_protocol(*ds, hdc::core::InputMode::kRawFeatures,
                               setup.nn_repeats, setup.experiment, nn_feat_config);
    std::fprintf(stderr, "[table2] %s: Sequential NN on hypervectors...\n", name);
    const auto nn_hv =
        hdc::core::nn_protocol(*ds, hdc::core::InputMode::kHypervectors,
                               setup.nn_repeats, setup.experiment, nn_hv_config);
    table.add_row({name, hdc::util::format_percent(hamming.accuracy, 1),
                   paper[d].hamming,
                   hdc::util::format_percent(nn_feat.mean_test_accuracy, 1),
                   paper[d].nn_features,
                   hdc::util::format_percent(nn_hv.mean_test_accuracy, 1),
                   paper[d].nn_hypervectors});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "# Expected shape: HVs lift the NN on both Pima variants; no change on "
      "Sylhet; Hamming competitive on Sylhet.\n");
  return 0;
}
