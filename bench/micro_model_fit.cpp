// Runtime observations from Section III-A, as google-benchmark micro-
// benchmarks (formerly bench_runtime; the JSON batch-engine bench now owns
// that name):
//  * NN epoch time is similar for raw features and hypervector inputs
//    (the 32-unit hidden layers dominate only for tiny inputs; the paper
//    reports ~10 ms/epoch either way on its hardware),
//  * LGBM / XGBoost / CatBoost slow down >10x on hypervector inputs,
//  * core HDC primitives (Hamming distance, row encoding) are cheap.
#include <benchmark/benchmark.h>

#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "ml/gbdt.hpp"
#include "ml/hist_gbdt.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/ordered_gbdt.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace {

using hdc::core::ExtractorConfig;
using hdc::core::HdcFeatureExtractor;

struct Workload {
  hdc::data::Dataset dataset;
  hdc::ml::Matrix features;
  hdc::ml::Matrix hypervectors;

  static const Workload& instance() {
    static const Workload w = [] {
      Workload out{hdc::data::impute_class_median(
                       hdc::data::make_pima({130, 70, true, 0.05, 7})),
                   {}, {}};
      out.features = out.dataset.feature_matrix();
      ExtractorConfig config;
      config.dimensions = 10000;
      HdcFeatureExtractor extractor(config);
      extractor.fit(out.dataset);
      out.hypervectors = extractor.transform_to_matrix(out.dataset);
      return out;
    }();
    return w;
  }
};

void BM_HammingDistance10k(benchmark::State& state) {
  hdc::util::Rng rng(1);
  const auto a = hdc::hv::BitVector::random(10000, rng);
  const auto b = hdc::hv::BitVector::random(10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming(b));
  }
}
BENCHMARK(BM_HammingDistance10k);

void BM_EncodePatientRow(benchmark::State& state) {
  const Workload& w = Workload::instance();
  ExtractorConfig config;
  config.dimensions = static_cast<std::size_t>(state.range(0));
  HdcFeatureExtractor extractor(config);
  extractor.fit(w.dataset);
  const auto row = w.dataset.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.encode_row(row));
  }
}
BENCHMARK(BM_EncodePatientRow)->Arg(1000)->Arg(10000)->Arg(20000);

void BM_MajorityBundle(benchmark::State& state) {
  hdc::util::Rng rng(2);
  std::vector<hdc::hv::BitVector> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(hdc::hv::BitVector::random(10000, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::hv::majority(inputs));
  }
}
BENCHMARK(BM_MajorityBundle);

template <typename Model>
void fit_benchmark(benchmark::State& state, const hdc::ml::Matrix& X,
                   const hdc::data::Dataset& ds) {
  for (auto _ : state) {
    Model model = [] {
      if constexpr (std::is_same_v<Model, hdc::ml::GbdtClassifier>) {
        hdc::ml::GbdtConfig config;
        config.n_rounds = 10;
        return hdc::ml::GbdtClassifier(config);
      } else if constexpr (std::is_same_v<Model, hdc::ml::HistGbdtClassifier>) {
        hdc::ml::HistGbdtConfig config;
        config.n_rounds = 10;
        return hdc::ml::HistGbdtClassifier(config);
      } else if constexpr (std::is_same_v<Model, hdc::ml::OrderedGbdtClassifier>) {
        hdc::ml::OrderedGbdtConfig config;
        config.n_rounds = 10;
        return hdc::ml::OrderedGbdtClassifier(config);
      } else {
        return Model();
      }
    }();
    model.fit(X, ds.labels());
    benchmark::DoNotOptimize(model);
  }
}

void BM_XgbFit_Features(benchmark::State& state) {
  const Workload& w = Workload::instance();
  fit_benchmark<hdc::ml::GbdtClassifier>(state, w.features, w.dataset);
}
void BM_XgbFit_Hypervectors(benchmark::State& state) {
  const Workload& w = Workload::instance();
  fit_benchmark<hdc::ml::GbdtClassifier>(state, w.hypervectors, w.dataset);
}
BENCHMARK(BM_XgbFit_Features)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XgbFit_Hypervectors)->Unit(benchmark::kMillisecond);

void BM_LgbmFit_Features(benchmark::State& state) {
  const Workload& w = Workload::instance();
  fit_benchmark<hdc::ml::HistGbdtClassifier>(state, w.features, w.dataset);
}
void BM_LgbmFit_Hypervectors(benchmark::State& state) {
  const Workload& w = Workload::instance();
  fit_benchmark<hdc::ml::HistGbdtClassifier>(state, w.hypervectors, w.dataset);
}
BENCHMARK(BM_LgbmFit_Features)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LgbmFit_Hypervectors)->Unit(benchmark::kMillisecond);

void BM_CatBoostFit_Features(benchmark::State& state) {
  const Workload& w = Workload::instance();
  fit_benchmark<hdc::ml::OrderedGbdtClassifier>(state, w.features, w.dataset);
}
void BM_CatBoostFit_Hypervectors(benchmark::State& state) {
  const Workload& w = Workload::instance();
  fit_benchmark<hdc::ml::OrderedGbdtClassifier>(state, w.hypervectors, w.dataset);
}
BENCHMARK(BM_CatBoostFit_Features)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CatBoostFit_Hypervectors)->Unit(benchmark::kMillisecond);

void nn_epoch_benchmark(benchmark::State& state, const hdc::ml::Matrix& X,
                        const hdc::data::Dataset& ds) {
  hdc::nn::SequentialConfig config;
  config.max_epochs = 1;  // measure one epoch per iteration, like the paper
  config.patience = 1;
  config.internal_val_fraction = 0.15;
  for (auto _ : state) {
    hdc::nn::Sequential net(config);
    net.fit(X, ds.labels());
    benchmark::DoNotOptimize(net);
  }
}

void BM_NnEpoch_Features(benchmark::State& state) {
  const Workload& w = Workload::instance();
  nn_epoch_benchmark(state, w.features, w.dataset);
}
void BM_NnEpoch_Hypervectors(benchmark::State& state) {
  const Workload& w = Workload::instance();
  nn_epoch_benchmark(state, w.hypervectors, w.dataset);
}
BENCHMARK(BM_NnEpoch_Features)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NnEpoch_Hypervectors)->Unit(benchmark::kMillisecond);

void BM_KnnPredict_Hypervectors(benchmark::State& state) {
  const Workload& w = Workload::instance();
  hdc::ml::KnnClassifier model;
  model.fit(w.hypervectors, w.dataset.labels());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(w.hypervectors[0]));
  }
}
BENCHMARK(BM_KnnPredict_Hypervectors)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
