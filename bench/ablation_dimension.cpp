// Ablation A: hypervector dimensionality sweep. The paper (Section II)
// reports that 20k/30k dimensions "share similar properties" with 10k and
// bring no accuracy gain; this bench regenerates that observation with the
// Hamming leave-one-out model on all three datasets.
#include <cstdio>

#include "bench_common.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  std::printf("== Ablation: dimensionality sweep (Hamming LOO accuracy) ==\n");
  hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  const hdc::util::Cli cli(argc, argv);
  std::vector<std::size_t> dims = {1000, 2000, 5000, 10000, 20000};
  if (!cli.has_flag("--full")) {
    // keep the default run short on small machines; --full adds 30k
  } else {
    dims.push_back(30000);
  }

  const std::pair<const char*, const hdc::data::Dataset*> datasets[] = {
      {"Pima R", &setup.pima_r}, {"Pima M", &setup.pima_m}, {"Syhlet", &setup.sylhet}};

  hdc::util::Table table(
      {"Dim", "Pima R acc", "Pima M acc", "Syhlet acc", "Encode+LOO ms"});
  for (const std::size_t dim : dims) {
    std::vector<std::string> cells = {std::to_string(dim)};
    hdc::util::Timer timer;
    for (const auto& [name, ds] : datasets) {
      hdc::core::ExperimentConfig config = setup.experiment;
      config.extractor.dimensions = dim;
      const auto metrics = hdc::core::hamming_loo(*ds, config);
      cells.push_back(hdc::util::format_percent(metrics.accuracy, 1));
    }
    cells.push_back(hdc::util::format_double(timer.millis(), 0));
    table.add_row(std::move(cells));
    std::fprintf(stderr, "[ablation-dim] done dim=%zu\n", dim);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("# Expected shape: accuracy saturates near 10k dimensions; cost "
              "grows linearly.\n");
  return 0;
}
