// Serve-path bench: single-record latency and coalesced throughput over a
// round-tripped model bundle, with a determinism gate. Emits BENCH_serve.json.
//
// Protocol:
//   1. Fit extractor + Hamming + two zoo models on synthetic Pima M, save
//      the bundle to a string and load it back (every serve measurement runs
//      on the persisted artifact, not the in-memory originals).
//   2. Determinism gate: for every bundled predictor, the serve fast path
//      (classify) and the coalescing queue (submit) must answer exactly the
//      batch-path predictions for every row, or the bench exits non-zero.
//   3. Latency: per-request wall times of classify() over --reps sweeps of
//      the dataset -> p50/p99 microseconds + QPS.
//   4. Throughput: all rows pushed through the coalescing queue at once.
//   5. Paired exact-vs-ann serve: the same bundle served with the ANN index
//      attached (--ann path), reporting ann p50/p99/qps and the fraction of
//      requests whose prediction matches the exact engine.
//
// Flags (bench_common): --dim N, --seed S, --fast; plus --reps R (default 3)
// and --out PATH (default BENCH_serve.json).
#include <algorithm>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bundle.hpp"
#include "core/serve.hpp"
#include "hv/bit_matrix.hpp"
#include "ml/zoo.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using hdc::util::Timer;

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);
  const hdc::util::Cli cli(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("--reps", 3));
  const std::string out_path = cli.get_string("--out", "BENCH_serve.json");

  const hdc::data::Dataset& ds = setup.pima_m;
  const std::size_t n = ds.n_rows();

  // 1. Fit and round-trip the bundle.
  hdc::core::HdcFeatureExtractor extractor(setup.experiment.extractor);
  extractor.fit(ds);
  const hdc::hv::BitMatrix bits = extractor.transform_bits(ds);
  const std::vector<hdc::hv::BitVector> vectors = extractor.transform(ds);

  hdc::core::ModelBundle fitted;
  {
    hdc::core::HammingClassifier hamming;
    hamming.fit(vectors, ds.labels());
    fitted.hamming = std::move(hamming);
  }
  for (const char* name : {"Logistic Regression", "Random Forest"}) {
    auto model = hdc::ml::make_model(name, setup.experiment.model_budget);
    model->fit_bits(bits, ds.labels());
    fitted.models.push_back(std::move(model));
  }
  fitted.extractor = std::move(extractor);

  std::ostringstream saved;
  hdc::core::save_bundle(saved, fitted);
  std::istringstream stored(saved.str());
  hdc::core::ModelBundle bundle = hdc::core::load_bundle(stored);
  std::printf("# bundle: %zu bytes, sections=%zu models\n", saved.str().size(),
              bundle.models.size());

  // 2. Determinism gate: serve == batch path for every predictor.
  bool determinism_ok = true;
  std::vector<std::string> predictors = {"hamming"};
  for (const std::string& name : bundle.model_names()) predictors.push_back(name);
  for (const std::string& predictor : predictors) {
    // Batch-path reference from the *loaded* bundle.
    std::vector<int> reference;
    reference.reserve(n);
    if (predictor == "hamming") {
      for (const hdc::hv::BitVector& v : vectors) {
        reference.push_back(bundle.hamming->predict(v));
      }
    } else {
      reference = bundle.find_model(predictor)->predict_all_bits(bits);
    }

    for (const bool coalesce : {false, true}) {
      std::istringstream reload(saved.str());
      hdc::core::ServeConfig config;
      config.model = predictor;
      hdc::core::ServeEngine engine(hdc::core::load_bundle(reload), config);
      std::vector<int> served;
      served.reserve(n);
      if (coalesce) {
        std::vector<std::future<int>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          const std::span<const double> row = ds.row(i);
          futures.push_back(engine.submit({row.begin(), row.end()}));
        }
        for (auto& f : futures) served.push_back(f.get());
      } else {
        for (std::size_t i = 0; i < n; ++i) served.push_back(engine.classify(ds.row(i)));
      }
      if (served != reference) {
        determinism_ok = false;
        std::fprintf(stderr,
                     "FATAL: %s serve path for '%s' differs from the batch "
                     "path — the serve layer lost determinism\n",
                     coalesce ? "coalesced" : "sync", predictor.c_str());
      }
    }
  }

  // 3. Single-request latency through the Hamming predictor (the paper's
  // deployed model): per-request timing over `reps` dataset sweeps. The
  // obs registry is on for the timed sweeps so the serve layer's own
  // windowed latency sketch (serve.latency_seconds — what a live /metrics
  // scrape reports) can be emitted next to the exact oracle percentiles.
  std::istringstream reload(saved.str());
  hdc::core::ServeEngine engine(hdc::core::load_bundle(reload), {});
  for (std::size_t i = 0; i < n; ++i) {
    (void)engine.classify(ds.row(i));  // warm the scratch pool + caches
  }
  hdc::obs::reset_metrics();
  hdc::obs::set_enabled(true);
  std::vector<double> latencies_us;
  latencies_us.reserve(n * reps);
  Timer sweep;
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      Timer request;
      (void)engine.classify(ds.row(i));
      latencies_us.push_back(request.seconds() * 1e6);
    }
  }
  const double sync_seconds = sweep.seconds();
  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50_us = percentile(latencies_us, 0.50);
  const double p90_us = percentile(latencies_us, 0.90);
  const double p99_us = percentile(latencies_us, 0.99);
  const double qps =
      static_cast<double>(latencies_us.size()) / std::max(sync_seconds, 1e-12);

  // 4. Coalesced throughput: every row in flight at once.
  Timer coalesced;
  {
    std::vector<std::future<int>> futures;
    futures.reserve(n * reps);
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::span<const double> row = ds.row(i);
        futures.push_back(engine.submit({row.begin(), row.end()}));
      }
    }
    for (auto& f : futures) (void)f.get();
  }
  const double coalesced_seconds = coalesced.seconds();
  const double coalesced_qps = static_cast<double>(n * reps) /
                               std::max(coalesced_seconds, 1e-12);

  // The live-telemetry view of the same load: the windowed sketch the
  // /metrics endpoint serves must have seen every instrumented request.
  hdc::obs::set_enabled(false);
  const hdc::obs::MetricsSnapshot snap = hdc::obs::snapshot();
  const hdc::obs::WindowedSample* windowed =
      snap.windowed_sample("serve.latency_seconds");
  if (windowed == nullptr || windowed->total_count == 0 ||
      windowed->window_count == 0) {
    std::fprintf(stderr,
                 "FATAL: serve.latency_seconds windowed sketch is empty — the "
                 "serve path stopped recording latency telemetry\n");
    return 1;
  }
  std::string bounds_json;
  std::string counts_json;
  for (std::size_t b = 0; b < windowed->bucket_counts.size(); ++b) {
    if (b > 0) {
      bounds_json += ", ";
      counts_json += ", ";
    }
    char buffer[64];
    if (b < windowed->bounds.size()) {
      std::snprintf(buffer, sizeof buffer, "%.9g", windowed->bounds[b]);
    } else {
      std::snprintf(buffer, sizeof buffer, "\"+Inf\"");
    }
    bounds_json += buffer;
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(windowed->bucket_counts[b]));
    counts_json += buffer;
  }

  // 5. Paired exact-vs-ann serve: the same bundle served with the ANN index
  // attached (ServeConfig::ann). Predictions are compared request-for-request
  // against the exact engine; with the default index parameters the golden
  // recall gate (bench_ann) makes disagreement an anomaly worth surfacing.
  double ann_p50_us = 0.0;
  double ann_p99_us = 0.0;
  double ann_qps = 0.0;
  double ann_match_fraction = 0.0;
  std::string ann_skipped_reason;
  if (!bundle.hamming.has_value()) {
    ann_skipped_reason = "bundle has no hamming predictor";
  } else {
    std::vector<int> exact_predictions;
    exact_predictions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      exact_predictions.push_back(engine.classify(ds.row(i)));
    }

    std::istringstream ann_reload(saved.str());
    hdc::core::ServeConfig ann_config;
    ann_config.ann = true;
    hdc::core::ServeEngine ann_engine(hdc::core::load_bundle(ann_reload),
                                      ann_config);
    for (std::size_t i = 0; i < n; ++i) {
      (void)ann_engine.classify(ds.row(i));  // warm
    }
    std::vector<double> ann_us;
    ann_us.reserve(n * reps);
    std::size_t matches = 0;
    Timer ann_sweep;
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        Timer request;
        const int predicted = ann_engine.classify(ds.row(i));
        ann_us.push_back(request.seconds() * 1e6);
        if (predicted == exact_predictions[i]) ++matches;
      }
    }
    const double ann_seconds = ann_sweep.seconds();
    std::sort(ann_us.begin(), ann_us.end());
    ann_p50_us = percentile(ann_us, 0.50);
    ann_p99_us = percentile(ann_us, 0.99);
    ann_qps = static_cast<double>(ann_us.size()) / std::max(ann_seconds, 1e-12);
    ann_match_fraction =
        static_cast<double>(matches) / static_cast<double>(n * reps);
    std::printf("# ann: p50=%.1fus p99=%.1fus qps=%.0f match=%.4f\n",
                ann_p50_us, ann_p99_us, ann_qps, ann_match_fraction);
  }

  std::printf("# sync: p50=%.1fus p99=%.1fus qps=%.0f\n", p50_us, p99_us, qps);
  std::printf("# windowed sketch: p50=%.1fus p90=%.1fus p99=%.1fus over %llu "
              "requests\n",
              windowed->p50 * 1e6, windowed->p90 * 1e6, windowed->p99 * 1e6,
              static_cast<unsigned long long>(windowed->total_count));
  std::printf("# coalesced: qps=%.0f (%zu requests in %.3fs)\n", coalesced_qps,
              n * reps, coalesced_seconds);
  std::printf("# determinism: %s\n", determinism_ok ? "ok" : "FAILED");
  if (!determinism_ok) return 1;

  std::string ann_json;
  {
    char buffer[256];
    if (ann_skipped_reason.empty()) {
      std::snprintf(buffer, sizeof buffer,
                    "  \"ann_p50_us\": %.3f,\n  \"ann_p99_us\": %.3f,\n"
                    "  \"ann_qps\": %.1f,\n  \"ann_match_fraction\": %.6f,\n",
                    ann_p50_us, ann_p99_us, ann_qps, ann_match_fraction);
    } else {
      std::snprintf(buffer, sizeof buffer, "  \"ann_skipped_reason\": \"%s\",\n",
                    ann_skipped_reason.c_str());
    }
    ann_json = buffer;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_serve\",\n"
               "  \"dataset\": \"pima_m_synthetic\",\n"
               "  \"rows\": %zu,\n"
               "  \"dimensions\": %zu,\n"
               "  \"reps\": %zu,\n"
               "  \"predictors\": %zu,\n"
               "  \"bundle_bytes\": %zu,\n"
               "  \"p50_us\": %.3f,\n"
               "  \"p90_us\": %.3f,\n"
               "  \"p99_us\": %.3f,\n"
               "  \"qps\": %.1f,\n"
               "  \"coalesced_qps\": %.1f,\n"
               "  \"windowed_p50_us\": %.3f,\n"
               "  \"windowed_p90_us\": %.3f,\n"
               "  \"windowed_p99_us\": %.3f,\n"
               "  \"windowed_requests\": %llu,\n"
               "  \"latency_bucket_bounds\": [%s],\n"
               "  \"latency_bucket_counts\": [%s],\n"
               "%s"
               "  \"determinism_ok\": true,\n"
               "  \"manifest\": %s\n"
               "}\n",
               n, setup.experiment.extractor.dimensions, reps,
               predictors.size(), saved.str().size(), p50_us, p90_us, p99_us,
               qps, coalesced_qps, windowed->p50 * 1e6, windowed->p90 * 1e6,
               windowed->p99 * 1e6,
               static_cast<unsigned long long>(windowed->total_count),
               bounds_json.c_str(), counts_json.c_str(), ann_json.c_str(),
               hdc::bench::manifest_json(ds, "pima_m_synthetic",
                                         setup.experiment)
                   .c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
