// Ablation C: VSA model choice. The paper picks dense binary hypervectors
// "because binary operations on a Von Neumann architecture are easy and
// highly efficient", noting that "ternary and integer hypervectors could
// also be used". This bench quantifies that trade-off on all three datasets:
//   * binary majority bundle + 1-NN Hamming (the paper's model),
//   * binary prototypes (one-shot associative memory),
//   * integer prototypes with retraining (OnlineHdClassifier) — the
//     integer-space upgrade path,
// reporting leave-one-out (1-NN) or train/test (prototype) accuracy and the
// wall-clock cost of each.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hamming_classifier.hpp"
#include "core/online.hpp"
#include "data/split.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  std::printf("== Ablation: VSA model choice (binary vs integer prototypes) ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  const std::pair<const char*, const hdc::data::Dataset*> datasets[] = {
      {"Pima R", &setup.pima_r}, {"Pima M", &setup.pima_m}, {"Syhlet", &setup.sylhet}};

  hdc::util::Table table({"Dataset", "1-NN Hamming", "Binary prototype",
                          "Integer retrained", "Retrain epochs", "Fit ms"});
  for (const auto& [name, ds] : datasets) {
    // Shared encoding; hold out 20% to score the prototype variants.
    hdc::core::HdcFeatureExtractor extractor(setup.experiment.extractor);
    const auto split =
        hdc::data::stratified_split(ds->labels(), 0.2, setup.experiment.seed);
    const hdc::data::Dataset train = ds->subset(split.train);
    const hdc::data::Dataset test = ds->subset(split.test);
    extractor.fit(train);
    const auto train_vectors = extractor.transform(train);
    const auto test_vectors = extractor.transform(test);

    const auto score = [&](const auto& model) {
      std::size_t hits = 0;
      for (std::size_t i = 0; i < test_vectors.size(); ++i) {
        if (model.predict(test_vectors[i]) == test.label(i)) ++hits;
      }
      return static_cast<double>(hits) / static_cast<double>(test_vectors.size());
    };

    // 1-NN leave-one-out over the full dataset (the paper's protocol).
    const auto loo = hdc::core::hamming_loo(*ds, setup.experiment);

    hdc::util::Timer timer;
    hdc::core::HammingClassifier binary_proto(hdc::core::HammingMode::kPrototype);
    binary_proto.fit(train_vectors, train.labels());
    const double binary_acc = score(binary_proto);

    timer.reset();
    hdc::core::OnlineHdClassifier integer_retrained;
    integer_retrained.fit(train_vectors, train.labels());
    const double retrain_ms = timer.millis();
    const double integer_acc = score(integer_retrained);

    table.add_row({name, hdc::util::format_percent(loo.accuracy, 1),
                   hdc::util::format_percent(binary_acc, 1),
                   hdc::util::format_percent(integer_acc, 1),
                   std::to_string(integer_retrained.updates_per_epoch().size()),
                   hdc::util::format_double(retrain_ms, 1)});
    std::fprintf(stderr, "[ablation-vsa] done %s\n", name);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "# Expected shape: integer retraining recovers (or beats) one-shot "
      "binary prototypes at a small training cost; 1-NN stays the strongest "
      "pure-HDC model, as the paper uses.\n");
  return 0;
}
