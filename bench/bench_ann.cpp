// ANN-index bench: recall and work-reduction of hv::ann against the exact
// tiled sweep, on the golden datasets and on synthetic cohorts up to 100k
// rows. Emits BENCH_ann.json.
//
// Protocol:
//   1. Golden recall gate: encode Pima M and Sylhet, build the index with
//      default parameters, and measure tie-tolerant leave-one-out recall@1
//      against the exact kernels. The bench exits non-zero when the minimum
//      golden recall@1 drops below 0.999 (the ROADMAP acceptance gate).
//   2. Determinism gate: the `exact` fallback must match hv::nearest_neighbors
//      result-for-result, a rebuild under the same seed must serialize
//      byte-identically, and a save/load round-trip must serialize
//      byte-identically.
//   3. Scale sweep: synthetic cohorts (data::make_synthetic_cohort) at
//      n ∈ {1k, 10k, 100k} rows (reduced under --fast), with separately
//      generated query rows. Per size: build time, recall@1/@5,
//      candidates-per-query, word-ops reduction vs the exact sweep, and
//      per-query p50/p99 latency for both paths. At n >= 100k the measured
//      word-ops reduction must be >= 5x or the bench exits non-zero.
//   4. Streamed-build gates: Index::build_sharded over the same rows split
//      into {1, 4, 8} shards must serialize byte-identically to the
//      in-memory build, and its measured peak resident bytes must stay
//      within the analytic budget (largest shard + finished index + the
//      build's transient working set). Either failure exits non-zero.
//   5. Sketch-scan kernel sweep: per SIMD tier, one batched sketch_scan
//      call over a contiguous 4096-row sketch block versus the per-row
//      hamming loop it replaced. The best supported tier must come out
//      >= 2x faster per block or the bench exits non-zero.
//
// Flags (bench_common): --dim N, --seed S, --fast; plus --queries Q
// (default 1000, fast 200), --reps R (accepted for smoke-harness
// compatibility; unused) and --out PATH (default BENCH_ann.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "hv/ann.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/search.hpp"
#include "hv/sharded_bits.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using hdc::hv::Neighbor;
using hdc::hv::PackedHVs;
using hdc::util::Timer;
namespace ann = hdc::hv::ann;

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

std::string serialized(const ann::Index& index) {
  std::ostringstream out;
  index.save(out);
  return out.str();
}

/// Copy rows [begin, end) of `bits` into a standalone PackedHVs.
PackedHVs slice_rows(const hdc::hv::BitMatrix& bits, std::size_t begin,
                     std::size_t end) {
  PackedHVs out(bits.cols(), end - begin);
  const std::size_t words = bits.words_per_row();
  for (std::size_t i = begin; i < end; ++i) {
    std::memcpy(out.row(i - begin), bits.row_bits(i),
                words * sizeof(std::uint64_t));
  }
  return out;
}

/// Tie-tolerant leave-one-out recall@1 of the default-parameter index on one
/// encoded golden dataset, plus the exact-fallback identity check.
struct GoldenResult {
  std::size_t rows = 0;
  double recall_at_1 = 0.0;
  double build_seconds = 0.0;
  bool exact_fallback_ok = false;
};

GoldenResult golden_recall(const hdc::data::Dataset& ds,
                           const hdc::core::ExtractorConfig& config) {
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(ds);
  const PackedHVs packed = extractor.transform_packed(ds);

  GoldenResult result;
  result.rows = packed.rows();
  Timer build;
  const ann::Index index = ann::Index::build(packed);
  result.build_seconds = build.seconds();

  hdc::hv::SearchOptions exact_options;
  exact_options.exclude_same_index = true;
  const std::vector<Neighbor> exact =
      hdc::hv::nearest_neighbors(packed, packed, exact_options);

  ann::SearchOptions options;
  options.exclude_same_index = true;
  const std::vector<Neighbor> approx = index.nearest(packed, packed, options);

  std::size_t hits = 0;
  for (std::size_t q = 0; q < exact.size(); ++q) {
    // A hit is any neighbour at the true best distance (distance ties are
    // interchangeable for the 1-NN classifier).
    if (approx[q].distance == exact[q].distance) ++hits;
  }
  result.recall_at_1 =
      static_cast<double>(hits) / static_cast<double>(exact.size());

  ann::SearchOptions fallback;
  fallback.exact = true;
  fallback.exclude_same_index = true;
  result.exact_fallback_ok = index.nearest(packed, packed, fallback) == exact;
  return result;
}

struct SizeResult {
  std::size_t rows = 0;
  std::size_t queries = 0;
  double build_seconds = 0.0;
  double recall_at_1 = 0.0;
  double recall_at_5 = 0.0;
  double candidates_per_query = 0.0;
  std::uint64_t word_ops_exact = 0;
  std::uint64_t word_ops_ann = 0;
  double word_ops_reduction = 0.0;
  double exact_p50_us = 0.0;
  double exact_p99_us = 0.0;
  double ann_p50_us = 0.0;
  double ann_p99_us = 0.0;
};

SizeResult sweep_size(std::size_t rows, std::size_t n_queries,
                      const hdc::core::ExtractorConfig& extractor_config,
                      std::uint64_t seed) {
  SizeResult result;
  result.rows = rows;
  result.queries = n_queries;

  // Database and query rows come from disjoint index ranges of the same
  // deterministic cohort stream, so queries are unseen but identically
  // distributed (no exclude-self bookkeeping needed).
  const hdc::data::Dataset cohort =
      hdc::data::make_synthetic_cohort(rows + n_queries, seed);
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(cohort);
  const hdc::hv::BitMatrix bits = extractor.transform_bits(cohort);
  const PackedHVs database = slice_rows(bits, 0, rows);
  const PackedHVs queries = slice_rows(bits, rows, rows + n_queries);
  const std::size_t words = database.words_per_row();

  Timer build;
  const ann::Index index = ann::Index::build(database);
  result.build_seconds = build.seconds();

  // Exact reference + per-query latency (top-5 so recall@5 has its oracle).
  std::vector<std::vector<Neighbor>> exact(n_queries);
  std::vector<double> exact_us;
  exact_us.reserve(n_queries);
  for (std::size_t q = 0; q < n_queries; ++q) {
    PackedHVs one(queries.bits(), 1);
    std::memcpy(one.row(0), queries.row(q), words * sizeof(std::uint64_t));
    Timer t;
    exact[q] = hdc::hv::top_k_neighbors(one, database, 5).front();
    exact_us.push_back(t.seconds() * 1e6);
  }

  // ANN per-query latency + work accounting.
  std::vector<std::vector<Neighbor>> approx(n_queries);
  std::vector<double> ann_us;
  ann_us.reserve(n_queries);
  ann::SearchStats totals;
  for (std::size_t q = 0; q < n_queries; ++q) {
    PackedHVs one(queries.bits(), 1);
    std::memcpy(one.row(0), queries.row(q), words * sizeof(std::uint64_t));
    Timer t;
    ann::SearchStats stats;
    approx[q] = index.top_k(one, database, 5, {}, &stats).front();
    ann_us.push_back(t.seconds() * 1e6);
    totals.probes += stats.probes;
    totals.candidates += stats.candidates;
    totals.reranked += stats.reranked;
    totals.word_ops += stats.word_ops;
  }

  std::size_t hits_1 = 0;
  std::size_t hits_5 = 0;
  std::size_t want_5 = 0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    if (approx[q].front().distance == exact[q].front().distance) ++hits_1;
    // Tie-tolerant recall@5: an ANN neighbour counts when it is at least as
    // close as the exact 5th-best.
    const std::size_t k = std::min<std::size_t>(5, exact[q].size());
    const std::size_t kth = exact[q][k - 1].distance;
    want_5 += k;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, approx[q].size()); ++i) {
      if (approx[q][i].distance <= kth) ++hits_5;
    }
  }
  result.recall_at_1 =
      static_cast<double>(hits_1) / static_cast<double>(n_queries);
  result.recall_at_5 =
      static_cast<double>(hits_5) / static_cast<double>(want_5);
  result.candidates_per_query =
      static_cast<double>(totals.candidates) / static_cast<double>(n_queries);
  result.word_ops_exact =
      static_cast<std::uint64_t>(n_queries) * rows * words;
  result.word_ops_ann = totals.word_ops;
  result.word_ops_reduction =
      totals.word_ops > 0
          ? static_cast<double>(result.word_ops_exact) /
                static_cast<double>(totals.word_ops)
          : 0.0;

  std::sort(exact_us.begin(), exact_us.end());
  std::sort(ann_us.begin(), ann_us.end());
  result.exact_p50_us = percentile(exact_us, 0.50);
  result.exact_p99_us = percentile(exact_us, 0.99);
  result.ann_p50_us = percentile(ann_us, 0.50);
  result.ann_p99_us = percentile(ann_us, 0.99);
  return result;
}

/// Streamed-build identity + bounded-memory gates (protocol step 4).
struct StreamedResult {
  std::size_t rows = 0;
  bool identical = false;              // serialized cmp at every shard count
  std::uint64_t bytes_peak = 0;        // measured, at the max shard count
  std::uint64_t shard_bytes_max = 0;
  std::uint64_t index_bytes = 0;
  std::uint64_t budget = 0;            // analytic upper bound on bytes_peak
  bool within_budget = false;
  std::uint64_t database_bytes = 0;    // what a fully resident build holds
};

StreamedResult streamed_gates(std::size_t rows,
                              const hdc::core::ExtractorConfig& extractor_config,
                              std::uint64_t seed) {
  const hdc::data::Dataset cohort = hdc::data::make_synthetic_cohort(rows, seed);
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(cohort);
  const hdc::hv::BitMatrix bits = extractor.transform_bits(cohort);
  const PackedHVs database = slice_rows(bits, 0, rows);
  const std::size_t words = database.words_per_row();

  StreamedResult result;
  result.rows = rows;
  result.database_bytes = rows * words * sizeof(std::uint64_t);

  const ann::Index reference = ann::Index::build(database);
  const std::string reference_bytes = serialized(reference);

  result.identical = true;
  ann::BuildStats stats;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const std::size_t shard_rows = (rows + shards - 1) / shards;
    hdc::hv::ShardedBitMatrix sharded;
    for (std::size_t begin = 0; begin < rows; begin += shard_rows) {
      sharded.append_shard(hdc::hv::BitMatrix::from_rows(
          slice_rows(bits, begin, std::min(rows, begin + shard_rows))));
    }
    const hdc::hv::ShardedBitMatrixSource source(sharded);
    const ann::Index streamed =
        ann::Index::build_sharded(source, {}, nullptr, &stats);
    if (serialized(streamed) != reference_bytes) {
      result.identical = false;
      std::fprintf(stderr,
                   "FATAL: streamed build at %zu shards is not byte-identical\n",
                   shards);
    }
  }

  // Analytic budget, mirroring build_impl's checkpoint accounting term by
  // term (each container bounded from above, summed across phases, so the
  // measured peak can never legitimately exceed it): the largest resident
  // shard + the finished index + pre-compaction centroids, the Lloyd sample
  // with its per-row cells and per-cell bit counters, the full assignment,
  // and the pass-3 cursor/slot scratch.
  const ann::Config& resolved = reference.config();
  const std::size_t bits_n = reference.bits();
  const std::size_t sample_rows = std::min(rows, resolved.lloyd_sample);
  const std::size_t max_shard_rows = (rows + 7) / 8;  // largest shard at 8 shards
  result.bytes_peak = stats.bytes_peak;          // from the 8-shard build
  result.shard_bytes_max = stats.shard_bytes_max;
  result.index_bytes = stats.index_bytes;
  result.budget =
      stats.shard_bytes_max + stats.index_bytes +
      resolved.cells * words * sizeof(std::uint64_t) +
      sample_rows * words * sizeof(std::uint64_t) +
      sample_rows * sizeof(std::uint32_t) +
      resolved.cells * bits_n * sizeof(std::uint32_t) +
      resolved.cells * sizeof(std::uint64_t) +
      rows * sizeof(std::uint32_t) +
      (resolved.cells + 1) * sizeof(std::uint64_t) +
      max_shard_rows * sizeof(std::uint64_t);
  result.within_budget = result.bytes_peak <= result.budget;
  if (!result.within_budget) {
    std::fprintf(stderr,
                 "FATAL: streamed build peak %llu bytes exceeds the %llu budget\n",
                 static_cast<unsigned long long>(result.bytes_peak),
                 static_cast<unsigned long long>(result.budget));
  }
  return result;
}

/// Per-tier sketch_scan vs per-row-hamming sweep (protocol step 5). Times
/// one pass over a contiguous block of `kScanRows` 256-bit sketches, best
/// of `trials`, and reports nanoseconds per pass.
struct TierSketchResult {
  hdc::simd::Tier tier;
  double per_row_ns = 0.0;
  double scan_ns = 0.0;
  double speedup = 0.0;
};

constexpr std::size_t kScanRows = 4096;
constexpr std::size_t kScanWords = 4;  // 256-bit sketches, the default width

std::vector<TierSketchResult> sketch_scan_sweep(std::size_t reps,
                                                std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  std::vector<std::uint64_t> query(kScanWords);
  std::vector<std::uint64_t> block(kScanRows * kScanWords);
  for (auto& w : query) w = rng();
  for (auto& w : block) w = rng();
  std::vector<std::uint32_t> out(kScanRows);

  volatile std::uint64_t sink = 0;  // defeat dead-code elimination
  const auto best_of = [&](const auto& fn) {
    double best = 1e30;
    for (int trial = 0; trial < 5; ++trial) {
      Timer t;
      for (std::size_t r = 0; r < reps; ++r) fn();
      best = std::min(best, t.seconds() / static_cast<double>(reps));
    }
    return best * 1e9;
  };

  std::vector<TierSketchResult> results;
  for (const hdc::simd::Tier tier : hdc::simd::supported_tiers()) {
    const hdc::simd::Kernels& kernels = hdc::simd::kernels(tier);
    TierSketchResult r;
    r.tier = tier;
    r.per_row_ns = best_of([&] {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < kScanRows; ++i) {
        total += kernels.hamming(query.data(), block.data() + i * kScanWords,
                                 kScanWords);
      }
      sink = sink + total;
    });
    r.scan_ns = best_of([&] {
      kernels.sketch_scan(query.data(), block.data(), kScanRows, kScanWords,
                          out.data());
      sink = sink + out[0] + out[kScanRows - 1];
    });
    r.speedup = r.scan_ns > 0.0 ? r.per_row_ns / r.scan_ns : 0.0;
    results.push_back(r);
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::size_t n_queries =
      static_cast<std::size_t>(cli.get_int("--queries", fast ? 200 : 1000));
  const std::string out_path = cli.get_string("--out", "BENCH_ann.json");

  // 1. Golden recall gate (default index parameters, LOO protocol).
  const GoldenResult pima = golden_recall(setup.pima_m, setup.experiment.extractor);
  const GoldenResult sylhet = golden_recall(setup.sylhet, setup.experiment.extractor);
  const double recall_at_1 = std::min(pima.recall_at_1, sylhet.recall_at_1);
  std::printf("# golden: pima_m recall@1=%.4f (n=%zu), sylhet recall@1=%.4f (n=%zu)\n",
              pima.recall_at_1, pima.rows, sylhet.recall_at_1, sylhet.rows);

  // 2. Determinism gate: rebuild + round-trip byte identity on an encoded
  // golden set, exact fallback identity from the golden runs.
  bool determinism_ok = pima.exact_fallback_ok && sylhet.exact_fallback_ok;
  {
    hdc::core::HdcFeatureExtractor extractor(setup.experiment.extractor);
    extractor.fit(setup.sylhet);
    const PackedHVs packed = extractor.transform_packed(setup.sylhet);
    const ann::Index a = ann::Index::build(packed);
    const ann::Index b = ann::Index::build(packed);
    const std::string bytes = serialized(a);
    if (bytes != serialized(b)) {
      determinism_ok = false;
      std::fprintf(stderr, "FATAL: seeded rebuild is not byte-identical\n");
    }
    std::istringstream in(bytes);
    if (serialized(ann::Index::load(in)) != bytes) {
      determinism_ok = false;
      std::fprintf(stderr, "FATAL: save/load round-trip is not byte-identical\n");
    }
  }
  if (!determinism_ok) {
    std::fprintf(stderr, "FATAL: determinism gate failed\n");
  }

  // 3. Scale sweep over synthetic cohorts.
  std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{1000, 3000}
           : std::vector<std::size_t>{1000, 10000, 100000};
  std::vector<SizeResult> results;
  for (const std::size_t rows : sizes) {
    results.push_back(sweep_size(rows, n_queries, setup.experiment.extractor,
                                 setup.experiment.seed));
    const SizeResult& r = results.back();
    std::printf("# n=%zu: build=%.3fs recall@1=%.4f recall@5=%.4f "
                "cand/q=%.0f word-ops x%.1f exact p50=%.0fus ann p50=%.0fus\n",
                r.rows, r.build_seconds, r.recall_at_1, r.recall_at_5,
                r.candidates_per_query, r.word_ops_reduction, r.exact_p50_us,
                r.ann_p50_us);
  }
  const SizeResult& largest = results.back();

  // 4. Streamed-build identity + bounded-memory gates.
  const StreamedResult streamed = streamed_gates(
      fast ? 2000 : 20000, setup.experiment.extractor, setup.experiment.seed);
  std::printf("# streamed n=%zu: identical=%s peak=%llu budget=%llu "
              "(shard_max=%llu index=%llu full_db=%llu)\n",
              streamed.rows, streamed.identical ? "yes" : "NO",
              static_cast<unsigned long long>(streamed.bytes_peak),
              static_cast<unsigned long long>(streamed.budget),
              static_cast<unsigned long long>(streamed.shard_bytes_max),
              static_cast<unsigned long long>(streamed.index_bytes),
              static_cast<unsigned long long>(streamed.database_bytes));

  // 5. Per-tier sketch-scan speedup sweep.
  const std::vector<TierSketchResult> sketch_tiers =
      sketch_scan_sweep(fast ? 20 : 100, setup.experiment.seed);
  for (const TierSketchResult& r : sketch_tiers) {
    std::printf("# sketch_scan %s: per-row=%.0fns scan=%.0fns speedup=%.2fx\n",
                hdc::simd::tier_name(r.tier), r.per_row_ns, r.scan_ns,
                r.speedup);
  }
  const TierSketchResult& best_tier = sketch_tiers.back();

  // Hard gates.
  int exit_code = 0;
  if (recall_at_1 < 0.999) {
    std::fprintf(stderr,
                 "FATAL: golden recall@1 %.5f below the 0.999 gate\n",
                 recall_at_1);
    exit_code = 1;
  }
  if (!determinism_ok) exit_code = 1;
  if (largest.rows >= 100000 && largest.word_ops_reduction < 5.0) {
    std::fprintf(stderr,
                 "FATAL: word-ops reduction %.2fx at n=%zu below the 5x gate\n",
                 largest.word_ops_reduction, largest.rows);
    exit_code = 1;
  }
  if (!streamed.identical || !streamed.within_budget) exit_code = 1;
  if (best_tier.speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: sketch_scan speedup %.2fx on %s below the 2x gate\n",
                 best_tier.speedup, hdc::simd::tier_name(best_tier.tier));
    exit_code = 1;
  }

  std::string sizes_json;
  for (const SizeResult& r : results) {
    char buffer[640];
    std::snprintf(
        buffer, sizeof buffer,
        "%s    {\"rows\": %zu, \"queries\": %zu, \"build_seconds\": %.4f, "
        "\"recall_at_1\": %.6f, \"recall_at_5\": %.6f, "
        "\"candidates_per_query\": %.1f, \"word_ops_exact\": %llu, "
        "\"word_ops_ann\": %llu, \"word_ops_reduction\": %.3f, "
        "\"exact_p50_us\": %.2f, \"exact_p99_us\": %.2f, "
        "\"ann_p50_us\": %.2f, \"ann_p99_us\": %.2f}",
        sizes_json.empty() ? "" : ",\n", r.rows, r.queries, r.build_seconds,
        r.recall_at_1, r.recall_at_5, r.candidates_per_query,
        static_cast<unsigned long long>(r.word_ops_exact),
        static_cast<unsigned long long>(r.word_ops_ann),
        r.word_ops_reduction, r.exact_p50_us, r.exact_p99_us, r.ann_p50_us,
        r.ann_p99_us);
    sizes_json += buffer;
  }

  std::string tiers_json;
  for (const TierSketchResult& r : sketch_tiers) {
    char buffer[192];
    std::snprintf(buffer, sizeof buffer,
                  "%s    {\"tier\": \"%s\", \"per_row_ns\": %.1f, "
                  "\"scan_ns\": %.1f, \"speedup\": %.3f}",
                  tiers_json.empty() ? "" : ",\n",
                  hdc::simd::tier_name(r.tier), r.per_row_ns, r.scan_ns,
                  r.speedup);
    tiers_json += buffer;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_ann\",\n"
               "  \"dimensions\": %zu,\n"
               "  \"recall_at_1\": %.6f,\n"
               "  \"golden_pima_m_recall_at_1\": %.6f,\n"
               "  \"golden_sylhet_recall_at_1\": %.6f,\n"
               "  \"golden_rows\": [%zu, %zu],\n"
               "  \"determinism_ok\": %s,\n"
               "  \"rows_max\": %zu,\n"
               "  \"word_ops_reduction\": %.3f,\n"
               "  \"sizes\": [\n%s\n  ],\n"
               "  \"streamed_rows\": %zu,\n"
               "  \"streamed_build_identical\": %s,\n"
               "  \"build_bytes_peak\": %llu,\n"
               "  \"build_bytes_budget\": %llu,\n"
               "  \"build_bytes_within_budget\": %s,\n"
               "  \"build_shard_bytes_max\": %llu,\n"
               "  \"build_index_bytes\": %llu,\n"
               "  \"database_bytes\": %llu,\n"
               "  \"sketch_scan_rows\": %zu,\n"
               "  \"sketch_scan_words\": %zu,\n"
               "  \"sketch_scan_tier\": \"%s\",\n"
               "  \"sketch_scan_speedup\": %.3f,\n"
               "  \"sketch_tiers\": [\n%s\n  ],\n"
               "  \"manifest\": %s\n"
               "}\n",
               setup.experiment.extractor.dimensions, recall_at_1,
               pima.recall_at_1, sylhet.recall_at_1, pima.rows, sylhet.rows,
               determinism_ok ? "true" : "false", largest.rows,
               largest.word_ops_reduction, sizes_json.c_str(), streamed.rows,
               streamed.identical ? "true" : "false",
               static_cast<unsigned long long>(streamed.bytes_peak),
               static_cast<unsigned long long>(streamed.budget),
               streamed.within_budget ? "true" : "false",
               static_cast<unsigned long long>(streamed.shard_bytes_max),
               static_cast<unsigned long long>(streamed.index_bytes),
               static_cast<unsigned long long>(streamed.database_bytes),
               kScanRows, kScanWords, hdc::simd::tier_name(best_tier.tier),
               best_tier.speedup, tiers_json.c_str(),
               hdc::bench::manifest_json(setup.pima_m, "pima_m_synthetic",
                                         setup.experiment)
                   .c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return exit_code;
}
