// ANN-index bench: recall and work-reduction of hv::ann against the exact
// tiled sweep, on the golden datasets and on synthetic cohorts up to 100k
// rows. Emits BENCH_ann.json.
//
// Protocol:
//   1. Golden recall gate: encode Pima M and Sylhet, build the index with
//      default parameters, and measure tie-tolerant leave-one-out recall@1
//      against the exact kernels. The bench exits non-zero when the minimum
//      golden recall@1 drops below 0.999 (the ROADMAP acceptance gate).
//   2. Determinism gate: the `exact` fallback must match hv::nearest_neighbors
//      result-for-result, a rebuild under the same seed must serialize
//      byte-identically, and a save/load round-trip must serialize
//      byte-identically.
//   3. Scale sweep: synthetic cohorts (data::make_synthetic_cohort) at
//      n ∈ {1k, 10k, 100k} rows (reduced under --fast), with separately
//      generated query rows. Per size: build time, recall@1/@5,
//      candidates-per-query, word-ops reduction vs the exact sweep, and
//      per-query p50/p99 latency for both paths. At n >= 100k the measured
//      word-ops reduction must be >= 5x or the bench exits non-zero.
//
// Flags (bench_common): --dim N, --seed S, --fast; plus --queries Q
// (default 1000, fast 200), --reps R (accepted for smoke-harness
// compatibility; unused) and --out PATH (default BENCH_ann.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "hv/ann.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/search.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using hdc::hv::Neighbor;
using hdc::hv::PackedHVs;
using hdc::util::Timer;
namespace ann = hdc::hv::ann;

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

std::string serialized(const ann::Index& index) {
  std::ostringstream out;
  index.save(out);
  return out.str();
}

/// Copy rows [begin, end) of `bits` into a standalone PackedHVs.
PackedHVs slice_rows(const hdc::hv::BitMatrix& bits, std::size_t begin,
                     std::size_t end) {
  PackedHVs out(bits.cols(), end - begin);
  const std::size_t words = bits.words_per_row();
  for (std::size_t i = begin; i < end; ++i) {
    std::memcpy(out.row(i - begin), bits.row_bits(i),
                words * sizeof(std::uint64_t));
  }
  return out;
}

/// Tie-tolerant leave-one-out recall@1 of the default-parameter index on one
/// encoded golden dataset, plus the exact-fallback identity check.
struct GoldenResult {
  std::size_t rows = 0;
  double recall_at_1 = 0.0;
  double build_seconds = 0.0;
  bool exact_fallback_ok = false;
};

GoldenResult golden_recall(const hdc::data::Dataset& ds,
                           const hdc::core::ExtractorConfig& config) {
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(ds);
  const PackedHVs packed = extractor.transform_packed(ds);

  GoldenResult result;
  result.rows = packed.rows();
  Timer build;
  const ann::Index index = ann::Index::build(packed);
  result.build_seconds = build.seconds();

  hdc::hv::SearchOptions exact_options;
  exact_options.exclude_same_index = true;
  const std::vector<Neighbor> exact =
      hdc::hv::nearest_neighbors(packed, packed, exact_options);

  ann::SearchOptions options;
  options.exclude_same_index = true;
  const std::vector<Neighbor> approx = index.nearest(packed, packed, options);

  std::size_t hits = 0;
  for (std::size_t q = 0; q < exact.size(); ++q) {
    // A hit is any neighbour at the true best distance (distance ties are
    // interchangeable for the 1-NN classifier).
    if (approx[q].distance == exact[q].distance) ++hits;
  }
  result.recall_at_1 =
      static_cast<double>(hits) / static_cast<double>(exact.size());

  ann::SearchOptions fallback;
  fallback.exact = true;
  fallback.exclude_same_index = true;
  result.exact_fallback_ok = index.nearest(packed, packed, fallback) == exact;
  return result;
}

struct SizeResult {
  std::size_t rows = 0;
  std::size_t queries = 0;
  double build_seconds = 0.0;
  double recall_at_1 = 0.0;
  double recall_at_5 = 0.0;
  double candidates_per_query = 0.0;
  std::uint64_t word_ops_exact = 0;
  std::uint64_t word_ops_ann = 0;
  double word_ops_reduction = 0.0;
  double exact_p50_us = 0.0;
  double exact_p99_us = 0.0;
  double ann_p50_us = 0.0;
  double ann_p99_us = 0.0;
};

SizeResult sweep_size(std::size_t rows, std::size_t n_queries,
                      const hdc::core::ExtractorConfig& extractor_config,
                      std::uint64_t seed) {
  SizeResult result;
  result.rows = rows;
  result.queries = n_queries;

  // Database and query rows come from disjoint index ranges of the same
  // deterministic cohort stream, so queries are unseen but identically
  // distributed (no exclude-self bookkeeping needed).
  const hdc::data::Dataset cohort =
      hdc::data::make_synthetic_cohort(rows + n_queries, seed);
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(cohort);
  const hdc::hv::BitMatrix bits = extractor.transform_bits(cohort);
  const PackedHVs database = slice_rows(bits, 0, rows);
  const PackedHVs queries = slice_rows(bits, rows, rows + n_queries);
  const std::size_t words = database.words_per_row();

  Timer build;
  const ann::Index index = ann::Index::build(database);
  result.build_seconds = build.seconds();

  // Exact reference + per-query latency (top-5 so recall@5 has its oracle).
  std::vector<std::vector<Neighbor>> exact(n_queries);
  std::vector<double> exact_us;
  exact_us.reserve(n_queries);
  for (std::size_t q = 0; q < n_queries; ++q) {
    PackedHVs one(queries.bits(), 1);
    std::memcpy(one.row(0), queries.row(q), words * sizeof(std::uint64_t));
    Timer t;
    exact[q] = hdc::hv::top_k_neighbors(one, database, 5).front();
    exact_us.push_back(t.seconds() * 1e6);
  }

  // ANN per-query latency + work accounting.
  std::vector<std::vector<Neighbor>> approx(n_queries);
  std::vector<double> ann_us;
  ann_us.reserve(n_queries);
  ann::SearchStats totals;
  for (std::size_t q = 0; q < n_queries; ++q) {
    PackedHVs one(queries.bits(), 1);
    std::memcpy(one.row(0), queries.row(q), words * sizeof(std::uint64_t));
    Timer t;
    ann::SearchStats stats;
    approx[q] = index.top_k(one, database, 5, {}, &stats).front();
    ann_us.push_back(t.seconds() * 1e6);
    totals.probes += stats.probes;
    totals.candidates += stats.candidates;
    totals.reranked += stats.reranked;
    totals.word_ops += stats.word_ops;
  }

  std::size_t hits_1 = 0;
  std::size_t hits_5 = 0;
  std::size_t want_5 = 0;
  for (std::size_t q = 0; q < n_queries; ++q) {
    if (approx[q].front().distance == exact[q].front().distance) ++hits_1;
    // Tie-tolerant recall@5: an ANN neighbour counts when it is at least as
    // close as the exact 5th-best.
    const std::size_t k = std::min<std::size_t>(5, exact[q].size());
    const std::size_t kth = exact[q][k - 1].distance;
    want_5 += k;
    for (std::size_t i = 0; i < std::min<std::size_t>(5, approx[q].size()); ++i) {
      if (approx[q][i].distance <= kth) ++hits_5;
    }
  }
  result.recall_at_1 =
      static_cast<double>(hits_1) / static_cast<double>(n_queries);
  result.recall_at_5 =
      static_cast<double>(hits_5) / static_cast<double>(want_5);
  result.candidates_per_query =
      static_cast<double>(totals.candidates) / static_cast<double>(n_queries);
  result.word_ops_exact =
      static_cast<std::uint64_t>(n_queries) * rows * words;
  result.word_ops_ann = totals.word_ops;
  result.word_ops_reduction =
      totals.word_ops > 0
          ? static_cast<double>(result.word_ops_exact) /
                static_cast<double>(totals.word_ops)
          : 0.0;

  std::sort(exact_us.begin(), exact_us.end());
  std::sort(ann_us.begin(), ann_us.end());
  result.exact_p50_us = percentile(exact_us, 0.50);
  result.exact_p99_us = percentile(exact_us, 0.99);
  result.ann_p50_us = percentile(ann_us, 0.50);
  result.ann_p99_us = percentile(ann_us, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::size_t n_queries =
      static_cast<std::size_t>(cli.get_int("--queries", fast ? 200 : 1000));
  const std::string out_path = cli.get_string("--out", "BENCH_ann.json");

  // 1. Golden recall gate (default index parameters, LOO protocol).
  const GoldenResult pima = golden_recall(setup.pima_m, setup.experiment.extractor);
  const GoldenResult sylhet = golden_recall(setup.sylhet, setup.experiment.extractor);
  const double recall_at_1 = std::min(pima.recall_at_1, sylhet.recall_at_1);
  std::printf("# golden: pima_m recall@1=%.4f (n=%zu), sylhet recall@1=%.4f (n=%zu)\n",
              pima.recall_at_1, pima.rows, sylhet.recall_at_1, sylhet.rows);

  // 2. Determinism gate: rebuild + round-trip byte identity on an encoded
  // golden set, exact fallback identity from the golden runs.
  bool determinism_ok = pima.exact_fallback_ok && sylhet.exact_fallback_ok;
  {
    hdc::core::HdcFeatureExtractor extractor(setup.experiment.extractor);
    extractor.fit(setup.sylhet);
    const PackedHVs packed = extractor.transform_packed(setup.sylhet);
    const ann::Index a = ann::Index::build(packed);
    const ann::Index b = ann::Index::build(packed);
    const std::string bytes = serialized(a);
    if (bytes != serialized(b)) {
      determinism_ok = false;
      std::fprintf(stderr, "FATAL: seeded rebuild is not byte-identical\n");
    }
    std::istringstream in(bytes);
    if (serialized(ann::Index::load(in)) != bytes) {
      determinism_ok = false;
      std::fprintf(stderr, "FATAL: save/load round-trip is not byte-identical\n");
    }
  }
  if (!determinism_ok) {
    std::fprintf(stderr, "FATAL: determinism gate failed\n");
  }

  // 3. Scale sweep over synthetic cohorts.
  std::vector<std::size_t> sizes =
      fast ? std::vector<std::size_t>{1000, 3000}
           : std::vector<std::size_t>{1000, 10000, 100000};
  std::vector<SizeResult> results;
  for (const std::size_t rows : sizes) {
    results.push_back(sweep_size(rows, n_queries, setup.experiment.extractor,
                                 setup.experiment.seed));
    const SizeResult& r = results.back();
    std::printf("# n=%zu: build=%.3fs recall@1=%.4f recall@5=%.4f "
                "cand/q=%.0f word-ops x%.1f exact p50=%.0fus ann p50=%.0fus\n",
                r.rows, r.build_seconds, r.recall_at_1, r.recall_at_5,
                r.candidates_per_query, r.word_ops_reduction, r.exact_p50_us,
                r.ann_p50_us);
  }
  const SizeResult& largest = results.back();

  // Hard gates.
  int exit_code = 0;
  if (recall_at_1 < 0.999) {
    std::fprintf(stderr,
                 "FATAL: golden recall@1 %.5f below the 0.999 gate\n",
                 recall_at_1);
    exit_code = 1;
  }
  if (!determinism_ok) exit_code = 1;
  if (largest.rows >= 100000 && largest.word_ops_reduction < 5.0) {
    std::fprintf(stderr,
                 "FATAL: word-ops reduction %.2fx at n=%zu below the 5x gate\n",
                 largest.word_ops_reduction, largest.rows);
    exit_code = 1;
  }

  std::string sizes_json;
  for (const SizeResult& r : results) {
    char buffer[640];
    std::snprintf(
        buffer, sizeof buffer,
        "%s    {\"rows\": %zu, \"queries\": %zu, \"build_seconds\": %.4f, "
        "\"recall_at_1\": %.6f, \"recall_at_5\": %.6f, "
        "\"candidates_per_query\": %.1f, \"word_ops_exact\": %llu, "
        "\"word_ops_ann\": %llu, \"word_ops_reduction\": %.3f, "
        "\"exact_p50_us\": %.2f, \"exact_p99_us\": %.2f, "
        "\"ann_p50_us\": %.2f, \"ann_p99_us\": %.2f}",
        sizes_json.empty() ? "" : ",\n", r.rows, r.queries, r.build_seconds,
        r.recall_at_1, r.recall_at_5, r.candidates_per_query,
        static_cast<unsigned long long>(r.word_ops_exact),
        static_cast<unsigned long long>(r.word_ops_ann),
        r.word_ops_reduction, r.exact_p50_us, r.exact_p99_us, r.ann_p50_us,
        r.ann_p99_us);
    sizes_json += buffer;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_ann\",\n"
               "  \"dimensions\": %zu,\n"
               "  \"recall_at_1\": %.6f,\n"
               "  \"golden_pima_m_recall_at_1\": %.6f,\n"
               "  \"golden_sylhet_recall_at_1\": %.6f,\n"
               "  \"golden_rows\": [%zu, %zu],\n"
               "  \"determinism_ok\": %s,\n"
               "  \"rows_max\": %zu,\n"
               "  \"word_ops_reduction\": %.3f,\n"
               "  \"sizes\": [\n%s\n  ],\n"
               "  \"manifest\": %s\n"
               "}\n",
               setup.experiment.extractor.dimensions, recall_at_1,
               pima.recall_at_1, sylhet.recall_at_1, pima.rows, sylhet.rows,
               determinism_ok ? "true" : "false", largest.rows,
               largest.word_ops_reduction, sizes_json.c_str(),
               hdc::bench::manifest_json(setup.pima_m, "pima_m_synthetic",
                                         setup.experiment)
                   .c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return exit_code;
}
