// Dense-vs-packed model benchmark for the hybrid HDC+ML path; writes
// BENCH_ml.json.
//
// Encodes the Pima protocol rows once (768 patients x --dim bits), then fits
// every downstream model twice on the same labels: once from the dense
// double matrix (HDC_ML_PACKED kill switch engaged) and once from the
// bit-packed columnar BitMatrix (popcount kernels). Fit and predict are
// timed separately; the packed fit + predict is repeated on every supported
// SIMD tier and its predictions are compared against the dense reference —
// the "parity_ok" fields gate the packed path on bit-identical behaviour.
//
// Flags: --dim N (default 10000), --seed S, --reps R (best-of, default 1),
// --budget B (zoo iteration scale, default 1.0), --models CSV subset,
// --out PATH (default BENCH_ml.json), --fast (small dim + reduced budget).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "ml/packed.hpp"
#include "ml/zoo.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/str.hpp"
#include "util/timer.hpp"

namespace {

using hdc::simd::Tier;
using hdc::util::Timer;

template <typename Fn>
double best_of(std::size_t reps, const Fn& fn) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = r == 0 ? timer.seconds() : std::min(best, timer.seconds());
  }
  return best;
}

struct TierRun {
  Tier tier = Tier::kScalar;
  double fit_sec = 0.0;
  double predict_sec = 0.0;
  bool parity_ok = false;
};

struct ModelResult {
  std::string name;
  double fit_dense_sec = 0.0;
  double predict_dense_sec = 0.0;
  double fit_packed_sec = 0.0;      // at the fastest (last) tier
  double predict_packed_sec = 0.0;  // at the fastest (last) tier
  std::vector<TierRun> tiers;
  [[nodiscard]] bool parity_ok() const {
    for (const TierRun& t : tiers) {
      if (!t.parity_ok) return false;
    }
    return !tiers.empty();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::size_t dim =
      static_cast<std::size_t>(cli.get_int("--dim", fast ? 2000 : 10000));
  const std::uint64_t seed = cli.get_uint("--seed", 2023);
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("--reps", 1));
  const double budget = cli.get_double("--budget", fast ? 0.25 : 1.0);
  const std::string out_path = cli.get_string("--out", "BENCH_ml.json");
  const std::string models_csv = cli.get_string(
      "--models",
      "LGBM,Decision Tree,Random Forest,Logistic Regression,SGD,SVC,KNN");

  // The paper's Pima protocol: 768 rows, class-median imputed, encoded with
  // extractor ranges fit on the full dataset (pure throughput measurement).
  hdc::data::PimaConfig pima_config;
  pima_config.seed = seed;
  const hdc::data::Dataset ds =
      hdc::data::impute_class_median(hdc::data::make_pima(pima_config));
  hdc::core::ExtractorConfig extractor_config;
  extractor_config.dimensions = dim;
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(ds);

  const hdc::hv::BitMatrix bits = extractor.transform_bits(ds);
  // Dense mirror expanded from the same bits, so both paths consume the
  // exact same design matrix.
  hdc::ml::Matrix X;
  X.reserve(bits.rows());
  for (std::size_t i = 0; i < bits.rows(); ++i) X.push_back(bits.row_doubles(i));
  const hdc::ml::Labels y = ds.labels();

  const Tier initial_tier = hdc::simd::active_tier();
  std::printf("# bench_ml: rows=%zu dim=%zu reps=%zu budget=%.2f threads=%zu\n",
              bits.rows(), dim, reps, budget,
              hdc::parallel::hardware_threads());

  std::vector<ModelResult> results;
  for (const std::string& name : hdc::util::split(models_csv, ',')) {
    ModelResult res;
    res.name = name;

    // Dense reference: kill switch engaged so fit() takes the double path.
    hdc::ml::set_packed_enabled(false);
    std::vector<int> reference;
    {
      auto model = hdc::ml::make_model(name, budget);
      res.fit_dense_sec = best_of(reps, [&] {
        model = hdc::ml::make_model(name, budget);
        model->fit(X, y);
      });
      res.predict_dense_sec =
          best_of(reps, [&] { reference = model->predict_all(X); });
    }

    // Packed path, once per supported SIMD tier; parity against the dense
    // reference predictions at every tier.
    hdc::ml::set_packed_enabled(true);
    for (const Tier tier : hdc::simd::supported_tiers()) {
      hdc::simd::set_tier(tier);
      TierRun run;
      run.tier = tier;
      auto model = hdc::ml::make_model(name, budget);
      run.fit_sec = best_of(reps, [&] {
        model = hdc::ml::make_model(name, budget);
        model->fit_bits(bits, y);
      });
      std::vector<int> packed_pred;
      run.predict_sec =
          best_of(reps, [&] { packed_pred = model->predict_all_bits(bits); });
      run.parity_ok = packed_pred == reference;
      res.tiers.push_back(run);
    }
    hdc::simd::set_tier(initial_tier);
    res.fit_packed_sec = res.tiers.back().fit_sec;
    res.predict_packed_sec = res.tiers.back().predict_sec;

    std::printf("# %-20s fit %8.3fs -> %8.3fs (%5.2fx)  predict %8.3fs -> "
                "%8.3fs (%5.2fx)  parity=%s\n",
                name.c_str(), res.fit_dense_sec, res.fit_packed_sec,
                res.fit_dense_sec / res.fit_packed_sec, res.predict_dense_sec,
                res.predict_packed_sec,
                res.predict_dense_sec / res.predict_packed_sec,
                res.parity_ok() ? "ok" : "FAIL");
    results.push_back(std::move(res));
  }
  hdc::ml::reset_packed_enabled();

  double hist_speedup = 0.0;
  bool all_parity = true;
  for (const ModelResult& r : results) {
    if (r.name == "LGBM") hist_speedup = r.fit_dense_sec / r.fit_packed_sec;
    all_parity = all_parity && r.parity_ok();
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_ml\",\n"
               "  \"rows\": %zu,\n"
               "  \"dimensions\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"reps\": %zu,\n"
               "  \"model_budget\": %.3f,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"active_tier\": \"%s\",\n"
               "  \"models\": [\n",
               bits.rows(), dim, static_cast<unsigned long long>(seed), reps,
               budget, hdc::parallel::hardware_threads(),
               hdc::simd::tier_name(initial_tier));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModelResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\",\n"
                 "     \"fit\": {\"dense_sec\": %.4f, \"packed_sec\": %.4f, "
                 "\"speedup\": %.3f},\n"
                 "     \"predict\": {\"dense_sec\": %.4f, \"packed_sec\": %.4f, "
                 "\"speedup\": %.3f},\n"
                 "     \"parity_ok\": %s,\n"
                 "     \"tiers\": [",
                 r.name.c_str(), r.fit_dense_sec, r.fit_packed_sec,
                 r.fit_dense_sec / r.fit_packed_sec, r.predict_dense_sec,
                 r.predict_packed_sec,
                 r.predict_dense_sec / r.predict_packed_sec,
                 r.parity_ok() ? "true" : "false");
    for (std::size_t t = 0; t < r.tiers.size(); ++t) {
      const TierRun& run = r.tiers[t];
      std::fprintf(out,
                   "%s\n      {\"tier\": \"%s\", \"fit_sec\": %.4f, "
                   "\"predict_sec\": %.4f, \"parity_ok\": %s}",
                   t == 0 ? "" : ",", hdc::simd::tier_name(run.tier),
                   run.fit_sec, run.predict_sec,
                   run.parity_ok ? "true" : "false");
    }
    std::fprintf(out, "]}%s\n", i + 1 < results.size() ? "," : "");
  }
  hdc::core::ExperimentConfig manifest_config;
  manifest_config.extractor = extractor_config;
  manifest_config.seed = seed;
  manifest_config.model_budget = budget;
  std::fprintf(out,
               "  ],\n"
               "  \"hist_gbdt_fit_speedup\": %.3f,\n"
               "  \"parity_ok\": %s,\n"
               "  \"manifest\": %s\n"
               "}\n",
               hist_speedup, all_parity ? "true" : "false",
               hdc::bench::manifest_json(ds, "pima_m_synthetic", manifest_config)
                   .c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return all_parity ? 0 : 1;
}
