// Experiment-grid scheduler bench: the paper's 2-dataset x 9-model x k-fold
// sweep run serially (the PR 1-4 driver: re-encode per model, one core) and
// through the work-stealing TaskGraph + fold-encoding cache at 1 / 2 / N
// threads. Emits BENCH_grid.json so future PRs have a scheduling-perf
// trajectory to compare against.
//
// Two gates run inside the bench:
//   - determinism: every scheduled run's metrics must be bit-identical to
//     the serial reference, or the bench exits non-zero;
//   - speedup: serial / best-scheduled wall must reach 4x on hardware that
//     can show it (>= 4 cores, full fidelity). Machines that cannot measure
//     that say so in speedup_skipped_reason instead of failing.
//
// Flags (bench_common): --dim N, --seed S, --budget B, --kfold K, --fast;
// plus --threads T (default 8) and --reps R (default 1, best-of) and
// --out PATH (default BENCH_grid.json).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/grid.hpp"
#include "parallel/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using hdc::core::GridResult;
using hdc::util::Timer;

struct ThreadSample {
  std::size_t threads = 0;
  double seconds = 0.0;
  GridResult result;
};

/// Exact (bitwise) equality of every metric the grid reports.
bool identical(const GridResult& a, const GridResult& b) {
  if (a.datasets.size() != b.datasets.size()) return false;
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    const auto& da = a.datasets[d];
    const auto& db = b.datasets[d];
    if (da.models.size() != db.models.size()) return false;
    for (std::size_t m = 0; m < da.models.size(); ++m) {
      if (da.models[m].cv.fold_accuracy != db.models[m].cv.fold_accuracy ||
          da.models[m].cv.mean_accuracy != db.models[m].cv.mean_accuracy ||
          da.models[m].cv.stddev_accuracy != db.models[m].cv.stddev_accuracy) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::size_t max_threads =
      static_cast<std::size_t>(cli.get_int("--threads", 8));
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("--reps", 1));
  const std::string out_path = cli.get_string("--out", "BENCH_grid.json");

  // The grid proper: Pima M + Sylhet over the full zoo. The Sequential NN
  // rows are excluded so the bench times exactly the DAG the cache dedups.
  const std::vector<hdc::core::GridDatasetSpec> datasets = {
      {"pima_m", &setup.pima_m}, {"sylhet", &setup.sylhet}};
  hdc::core::GridConfig config;
  config.kfold = setup.kfold;
  config.experiment = setup.experiment;

  const std::size_t hw_threads = hdc::parallel::hardware_threads();
  std::vector<std::size_t> thread_counts;
  for (const std::size_t t :
       {std::size_t{1}, std::size_t{2}, max_threads, hw_threads}) {
    if (t >= 1 && t <= hw_threads) thread_counts.push_back(t);
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  std::printf("# bench_grid: datasets=2 models=9 kfold=%zu hw_threads=%zu\n",
              config.kfold, hw_threads);

  // Serial reference: the pre-grid driver (kfold_cv_accuracy per cell,
  // re-encoding every fold once per model).
  config.scheduled = false;
  GridResult serial;
  double serial_seconds = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer timer;
    serial = hdc::core::run_grid(datasets, config);
    const double s = timer.seconds();
    serial_seconds = r == 0 ? s : std::min(serial_seconds, s);
  }
  std::printf("# serial: %.3fs (%zu model fits, re-encode per model)\n",
              serial_seconds, serial.stats.model_tasks);

  config.scheduled = true;
  std::vector<ThreadSample> samples;
  bool determinism_ok = true;
  for (const std::size_t t : thread_counts) {
    ThreadSample sample;
    sample.threads = t;
    config.threads = t;
    for (std::size_t r = 0; r < reps; ++r) {
      Timer timer;
      sample.result = hdc::core::run_grid(datasets, config);
      const double s = timer.seconds();
      sample.seconds = r == 0 ? s : std::min(sample.seconds, s);
    }
    if (!identical(serial, sample.result)) {
      determinism_ok = false;
      std::fprintf(stderr,
                   "FATAL: scheduled grid at %zu threads differs from the "
                   "serial reference — the scheduler lost determinism\n",
                   t);
    }
    const auto& st = sample.result.stats;
    std::printf(
        "# threads=%zu wall=%.3fs speedup=%.2fx dedup=%.1f steals=%llu "
        "(encode=%zu fit=%zu reduce=%zu)\n",
        t, sample.seconds, serial_seconds / sample.seconds, st.dedup_ratio,
        static_cast<unsigned long long>(st.steals), st.encode_tasks,
        st.model_tasks, st.reduce_tasks);
    samples.push_back(std::move(sample));
  }
  if (!determinism_ok) return 1;

  double best_seconds = samples.front().seconds;
  for (const ThreadSample& s : samples) {
    best_seconds = std::min(best_seconds, s.seconds);
  }
  const double grid_speedup = serial_seconds / best_seconds;
  const bool speedup_ok = grid_speedup >= 4.0;
  // A smoke run or a small machine cannot demonstrate the 4x target; record
  // why instead of failing the gate (bench_runtime precedent).
  std::string skip_reason;
  if (!speedup_ok) {
    if (fast) {
      skip_reason = "fast-mode smoke run";
    } else if (hw_threads == 1) {
      skip_reason = "hardware_threads==1";
    } else if (hw_threads < 4) {
      skip_reason = "hardware_threads<4";
    } else {
      std::fprintf(stderr,
                   "FATAL: grid speedup %.2fx below the 4x gate on %zu "
                   "hardware threads\n",
                   grid_speedup, hw_threads);
      return 1;
    }
  }

  const auto& last = samples.back().result.stats;
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_grid\",\n"
               "  \"datasets\": [\"pima_m_synthetic\", \"sylhet_synthetic\"],\n"
               "  \"models\": %zu,\n"
               "  \"kfold\": %zu,\n"
               "  \"dimensions\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"model_budget\": %.3f,\n"
               "  \"reps\": %zu,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"serial_seconds\": %.6f,\n"
               "  \"determinism_ok\": true,\n"
               "  \"dedup_ratio\": %.3f,\n"
               "  \"grid_speedup\": %.3f,\n"
               "  \"speedup_ok\": %s,\n"
               "  \"speedup_skipped_reason\": \"%s\",\n"
               "  \"threads\": [\n",
               serial.datasets.front().models.size(), config.kfold,
               setup.experiment.extractor.dimensions,
               static_cast<unsigned long long>(setup.experiment.seed),
               setup.experiment.model_budget, reps, hw_threads, serial_seconds,
               last.dedup_ratio, grid_speedup, speedup_ok ? "true" : "false",
               skip_reason.c_str());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const ThreadSample& s = samples[i];
    const auto& st = s.result.stats;
    std::fprintf(
        out,
        "    {\"threads\": %zu, \"seconds\": %.6f, \"speedup_vs_serial\": "
        "%.3f, \"tasks_executed\": %llu, \"steals\": %llu, \"cache_hits\": "
        "%llu, \"cache_misses\": %llu, \"cache_evictions\": %llu, "
        "\"cache_peak_entries\": %zu}%s\n",
        s.threads, s.seconds, serial_seconds / s.seconds,
        static_cast<unsigned long long>(st.tasks_executed),
        static_cast<unsigned long long>(st.steals),
        static_cast<unsigned long long>(st.cache_hits),
        static_cast<unsigned long long>(st.cache_misses),
        static_cast<unsigned long long>(st.cache_evictions),
        st.cache_peak_entries, i + 1 < samples.size() ? "," : "");
  }
  // Provenance from the grid itself: run_grid's combined manifest covers
  // both datasets (mixed hash, summed rows) at the last sample's threads.
  std::fprintf(out, "  ],\n  \"manifest\": %s\n}\n",
               hdc::core::to_json(samples.back().result.manifest).c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
