// Table V reproduction: full testing metrics on a 90/10 stratified holdout
// of the Sylhet dataset for the nine models (features vs hypervectors), plus
// the leave-one-out Hamming model row.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/zoo.hpp"
#include "util/table.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  std::printf("== Table V: Sylhet testing metrics (90/10 holdout) ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  hdc::util::Table table({"Model", "Prec F", "Prec HD", "Rec F", "Rec HD",
                          "Spec F", "Spec HD", "F1 F", "F1 HD", "Acc F",
                          "Acc HD"});
  for (const auto& entry : hdc::ml::paper_model_zoo(setup.experiment.model_budget)) {
    std::fprintf(stderr, "[table5] %s\n", entry.name.c_str());
    const auto features = hdc::core::holdout_metrics(
        setup.sylhet, entry.name, hdc::core::InputMode::kRawFeatures, 0.1,
        setup.experiment);
    const auto hd = hdc::core::holdout_metrics(
        setup.sylhet, entry.name, hdc::core::InputMode::kHypervectors, 0.1,
        setup.experiment);
    std::vector<std::string> cells = {entry.name};
    for (auto& cell : hdc::eval::paired_metric_cells(features, hd)) {
      cells.push_back(std::move(cell));
    }
    table.add_row(std::move(cells));
  }

  // Hamming row (leave-one-out over the whole dataset, as in the paper).
  std::fprintf(stderr, "[table5] Hamming LOO\n");
  const auto hamming = hdc::core::hamming_loo(setup.sylhet, setup.experiment);
  table.add_separator();
  const auto h = hdc::eval::metric_cells(hamming);
  table.add_row({"Hamming", "-", h[0], "-", h[1], "-", h[2], "-", h[3], "-", h[4]});

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "# Paper reference (accuracy F/HD): RF 95.5/96.8, KNN 91.0/94.9, DT "
      "95.5/94.2, XGB 96.2/93.6, CatBoost 95.5/95.5, SGD 83.3/90.4, LogReg "
      "88.5/94.2, SVC 91.0/95.5, LGBM 95.5/94.2; Hamming 96.0.\n");
  std::printf("# Expected shape: nearly all >= 90%%; Hamming competitive.\n");
  return 0;
}
