// Table IV reproduction: full testing metrics (precision, recall,
// specificity, F1, accuracy) on a 90/10 stratified holdout of Pima M, for
// the nine models with raw features vs hypervectors.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/zoo.hpp"
#include "util/table.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  std::printf("== Table IV: Pima M testing metrics (90/10 holdout) ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  hdc::util::Table table({"Model", "Prec F", "Prec HD", "Rec F", "Rec HD",
                          "Spec F", "Spec HD", "F1 F", "F1 HD", "Acc F",
                          "Acc HD"});
  for (const auto& entry : hdc::ml::paper_model_zoo(setup.experiment.model_budget)) {
    std::fprintf(stderr, "[table4] %s\n", entry.name.c_str());
    const auto features = hdc::core::holdout_metrics(
        setup.pima_m, entry.name, hdc::core::InputMode::kRawFeatures, 0.1,
        setup.experiment);
    const auto hd = hdc::core::holdout_metrics(
        setup.pima_m, entry.name, hdc::core::InputMode::kHypervectors, 0.1,
        setup.experiment);
    std::vector<std::string> cells = {entry.name};
    for (auto& cell : hdc::eval::paired_metric_cells(features, hd)) {
      cells.push_back(std::move(cell));
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "# Paper reference (accuracy F/HD): RF 79.7/83.1, KNN 76.3/75.4, DT "
      "78.8/73.7, XGB 81.4/80.5, CatBoost 78.0/76.3, SGD 63.6/75.4, LogReg "
      "82.2/75.4, SVC 82.2/83.1, LGBM 78.8/79.7.\n");
  std::printf("# Expected shape: RF+HV and SVC+HV strongest; SGD gains most "
              "from HVs.\n");
  return 0;
}
