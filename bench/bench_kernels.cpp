// Per-kernel, per-dispatch-tier micro-bench: Hamming reduction, bulk
// popcount, majority bundling, and the end-to-end encode path, measured on
// every SIMD tier this machine supports and emitted as machine-readable
// JSON (BENCH_kernels.json) so the perf trajectory is tracked per kernel.
//
// Throughput is reported as GB/s of hypervector words streamed through the
// kernel plus a per-unit latency (ns/pair, ns/word-KiB, ns/bundle, rows/s).
// The scalar tier is always present, so every row has a speedup baseline.
//
// Flags: --dim N (default 10000), --seed S, --reps R (default 5, best-of),
// --pairs P (default 200000), --out PATH (default BENCH_kernels.json),
// --fast (smaller problem sizes for CI smoke).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "hv/bitvector.hpp"
#include "hv/search.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using hdc::simd::Tier;
using hdc::util::Timer;

template <typename Fn>
double best_of(std::size_t reps, const Fn& fn) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = r == 0 ? timer.seconds() : std::min(best, timer.seconds());
  }
  return best;
}

struct TierResult {
  Tier tier = Tier::kScalar;
  double hamming_ns_per_pair = 0.0;
  double hamming_gbps = 0.0;
  double popcount_gbps = 0.0;
  double majority_ns_per_bundle = 0.0;
  double majority_gbps = 0.0;
  double encode_rows_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::size_t dim =
      static_cast<std::size_t>(cli.get_int("--dim", 10000));
  const std::uint64_t seed = cli.get_uint("--seed", 2023);
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("--reps", fast ? 2 : 5));
  const std::size_t n_pairs =
      static_cast<std::size_t>(cli.get_int("--pairs", fast ? 20000 : 200000));
  const std::string out_path = cli.get_string("--out", "BENCH_kernels.json");

  const std::size_t words = (dim + 63) / 64;
  const std::size_t db_rows = 768;
  const std::size_t bundle_n = 9;  // a realistic record's feature count
  const std::size_t bundle_reps = fast ? 5000 : 50000;
  const std::size_t pop_words = fast ? 1u << 18 : 1u << 22;

  hdc::util::Rng rng(seed);
  // Random packed database; queries sweep it round-robin so the working set
  // matches the LOOCV access pattern rather than a single hot pair.
  std::vector<std::uint64_t> database(db_rows * words);
  for (auto& w : database) w = rng();
  std::vector<std::uint64_t> pop_buffer(pop_words);
  for (auto& w : pop_buffer) w = rng();
  std::vector<std::uint64_t> bundle_rows(bundle_n * words);
  for (auto& w : bundle_rows) w = rng();
  std::vector<const std::uint64_t*> bundle_ptrs(bundle_n);
  for (std::size_t r = 0; r < bundle_n; ++r) {
    bundle_ptrs[r] = bundle_rows.data() + r * words;
  }
  std::vector<std::uint64_t> bundle_out(words);

  // Encode path: the paper's Pima protocol (768 rows, class-median imputed).
  hdc::data::PimaConfig pima_config;
  pima_config.seed = seed;
  const hdc::data::Dataset ds =
      hdc::data::impute_class_median(hdc::data::make_pima(pima_config));
  hdc::core::ExtractorConfig extractor_config;
  extractor_config.dimensions = dim;
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(ds);

  const Tier initial_tier = hdc::simd::active_tier();
  std::printf("# bench_kernels: dim=%zu words=%zu pairs=%zu reps=%zu\n", dim,
              words, n_pairs, reps);

  volatile std::size_t sink = 0;  // keep kernel results observable
  std::vector<TierResult> results;
  for (const Tier tier : hdc::simd::supported_tiers()) {
    const hdc::simd::Kernels& kernels = hdc::simd::kernels(tier);
    TierResult res;
    res.tier = tier;

    const double hamming_s = best_of(reps, [&] {
      std::size_t total = 0;
      for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::uint64_t* a = database.data() + (p % db_rows) * words;
        const std::uint64_t* b =
            database.data() + ((p * 7 + 1) % db_rows) * words;
        total += kernels.hamming(a, b, words);
      }
      sink = total;
    });
    res.hamming_ns_per_pair = hamming_s * 1e9 / static_cast<double>(n_pairs);
    res.hamming_gbps = static_cast<double>(n_pairs * 2 * words * 8) /
                       hamming_s / 1e9;

    const double pop_s = best_of(reps, [&] {
      sink = kernels.popcount(pop_buffer.data(), pop_words);
    });
    res.popcount_gbps = static_cast<double>(pop_words * 8) / pop_s / 1e9;

    const double majority_s = best_of(reps, [&] {
      for (std::size_t r = 0; r < bundle_reps; ++r) {
        kernels.majority(bundle_ptrs.data(), bundle_n, words,
                         bundle_out.data(), true);
      }
      sink = bundle_out[0];
    });
    res.majority_ns_per_bundle =
        majority_s * 1e9 / static_cast<double>(bundle_reps);
    res.majority_gbps =
        static_cast<double>(bundle_reps * bundle_n * words * 8) / majority_s /
        1e9;

    // End-to-end encode throughput with this tier forced (single thread, so
    // the number is a kernel comparison, not a scaling one).
    hdc::simd::set_tier(tier);
    hdc::parallel::ThreadPool pool(1);
    std::vector<hdc::hv::BitVector> vectors;
    const double encode_s =
        best_of(reps, [&] { vectors = extractor.transform(ds, &pool); });
    res.encode_rows_per_sec = static_cast<double>(ds.n_rows()) / encode_s;
    hdc::simd::set_tier(initial_tier);

    std::printf("# tier=%-6s hamming=%7.1f ns/pair (%6.2f GB/s)  "
                "popcount=%6.2f GB/s  majority=%8.1f ns/bundle (%6.2f GB/s)  "
                "encode=%9.0f rows/s\n",
                hdc::simd::tier_name(tier), res.hamming_ns_per_pair,
                res.hamming_gbps, res.popcount_gbps, res.majority_ns_per_bundle,
                res.majority_gbps, res.encode_rows_per_sec);
    results.push_back(res);
  }
  (void)sink;

  const TierResult& scalar = results.front();
  const TierResult& best = results.back();

  hdc::core::ExperimentConfig manifest_config;
  manifest_config.extractor = extractor_config;
  manifest_config.seed = seed;
  const std::string manifest_json =
      hdc::bench::manifest_json(ds, "pima_m_synthetic", manifest_config);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_kernels\",\n"
               "  \"dimensions\": %zu,\n"
               "  \"words_per_vector\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"reps\": %zu,\n"
               "  \"hamming_pairs\": %zu,\n"
               "  \"majority_bundle_rows\": %zu,\n"
               "  \"popcount_buffer_words\": %zu,\n"
               "  \"active_tier\": \"%s\",\n"
               "  \"tiers\": [\n",
               dim, words, static_cast<unsigned long long>(seed), reps, n_pairs,
               bundle_n, pop_words, hdc::simd::tier_name(initial_tier));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    std::fprintf(
        out,
        "    {\"tier\": \"%s\",\n"
        "     \"hamming\": {\"ns_per_pair\": %.2f, \"gb_per_sec\": %.3f},\n"
        "     \"popcount\": {\"gb_per_sec\": %.3f},\n"
        "     \"majority\": {\"ns_per_bundle\": %.1f, \"gb_per_sec\": %.3f},\n"
        "     \"encode\": {\"rows_per_sec\": %.1f}}%s\n",
        hdc::simd::tier_name(r.tier), r.hamming_ns_per_pair, r.hamming_gbps,
        r.popcount_gbps, r.majority_ns_per_bundle, r.majority_gbps,
        r.encode_rows_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"speedup_best_vs_scalar\": {\n"
               "    \"tier\": \"%s\",\n"
               "    \"hamming\": %.3f,\n"
               "    \"popcount\": %.3f,\n"
               "    \"majority\": %.3f,\n"
               "    \"encode\": %.3f\n"
               "  },\n"
               "  \"manifest\": %s\n}\n",
               hdc::simd::tier_name(best.tier),
               scalar.hamming_ns_per_pair / best.hamming_ns_per_pair,
               best.popcount_gbps / scalar.popcount_gbps,
               scalar.majority_ns_per_bundle / best.majority_ns_per_bundle,
               best.encode_rows_per_sec / scalar.encode_rows_per_sec,
               manifest_json.c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
