// Validates a bench JSON artifact: the whole document must parse, and each
// required-key spec must hold at the top level. Used by the `bench-smoke`
// ctest label to prove every bench binary still emits a machine-readable
// file with its gate fields populated.
//
//   bench_validate FILE SPEC...
//
// A SPEC is a `|`-list of alternatives; at least one must hold at the top
// level. An alternative is either `key` — the key must exist with a
// non-failing value (`false`, `null` and `""` fail; any number, object,
// array or non-empty string passes) — or `key>=value`, a numeric gate: the
// key must hold a top-level number >= the literal threshold. So
// `speedup_valid|speedup_skipped_reason` encodes "either the speedup sweep
// was valid, or the bench said why it was skipped", and
// `recall_at_1>=0.999` hard-fails a bench whose measured recall regressed.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/str.hpp"

namespace {

// Minimal recursive-descent JSON reader. It validates syntax for the whole
// document and records the top-level object's members as (key -> truthy).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!parse_top_object()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] bool has_key(const std::string& key) const {
    return top_.count(key) != 0;
  }
  [[nodiscard]] bool truthy(const std::string& key) const {
    const auto it = top_.find(key);
    return it != top_.end() && it->second;
  }
  /// Top-level numeric value, or NaN when absent / not a plain number.
  [[nodiscard]] double number(const std::string& key) const {
    const auto it = numbers_.find(key);
    return it != numbers_.end() ? it->second
                                : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            pos_ += 4;
            c = '?';
            break;
          default:
            return fail("bad escape");
        }
      }
      value.push_back(c);
    }
    if (!consume('"')) return false;
    if (out != nullptr) *out = std::move(value);
    return true;
  }

  bool parse_number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) digits = true;
      ++pos_;
    }
    if (!digits) {
      pos_ = start;
      return fail("bad number");
    }
    if (out != nullptr) {
      *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                         nullptr);
    }
    return true;
  }

  bool parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return fail("bad literal");
  }

  /// Parses any value; reports whether it is "truthy" for gate purposes and
  /// (for plain numbers) its numeric value.
  bool parse_value(bool* truthy, double* number = nullptr) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object(truthy);
    if (c == '[') return parse_array(truthy);
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      if (truthy != nullptr) *truthy = !s.empty();
      return true;
    }
    if (c == 't') {
      if (truthy != nullptr) *truthy = true;
      return parse_literal("true");
    }
    if (c == 'f') {
      if (truthy != nullptr) *truthy = false;
      return parse_literal("false");
    }
    if (c == 'n') {
      if (truthy != nullptr) *truthy = false;
      return parse_literal("null");
    }
    if (truthy != nullptr) *truthy = true;
    return parse_number(number);
  }

  bool parse_members(
      bool top,
      const std::function<void(std::string, bool, double)>& on_member) {
    if (!consume('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      bool value_truthy = false;
      double value_number = std::numeric_limits<double>::quiet_NaN();
      if (!parse_value(&value_truthy, &value_number)) return false;
      if (top) on_member(std::move(key), value_truthy, value_number);
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_top_object() {
    return parse_members(true, [this](std::string key, bool truthy,
                                      double number) {
      if (!std::isnan(number)) numbers_[key] = number;
      top_[std::move(key)] = truthy;
    });
  }

  bool parse_object(bool* truthy) {
    if (truthy != nullptr) *truthy = true;
    return parse_members(false, [](std::string, bool, double) {});
  }

  bool parse_array(bool* truthy) {
    if (truthy != nullptr) *truthy = true;
    if (!consume('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!parse_value(nullptr)) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::unordered_map<std::string, bool> top_;
  std::unordered_map<std::string, double> numbers_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_validate FILE SPEC...\n");
    return 2;
  }
  const char* path = argv[1];
  std::FILE* in = std::fopen(path, "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", path);
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(in);

  JsonChecker checker(text);
  if (!checker.parse()) {
    std::fprintf(stderr, "FAIL: %s does not parse as JSON (%s)\n", path,
                 checker.error().c_str());
    return 1;
  }

  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string spec = argv[i];
    bool ok = false;
    for (const std::string& alternative : hdc::util::split(spec, '|')) {
      const std::size_t gate = alternative.find(">=");
      if (gate != std::string::npos) {
        // Numeric gate: the key must hold a top-level number >= threshold.
        const std::string key = alternative.substr(0, gate);
        char* end = nullptr;
        const std::string threshold_text = alternative.substr(gate + 2);
        const double threshold = std::strtod(threshold_text.c_str(), &end);
        if (end == threshold_text.c_str() || *end != '\0') {
          std::fprintf(stderr, "FAIL: bad threshold in spec \"%s\"\n",
                       spec.c_str());
          break;
        }
        const double value = checker.number(key);
        if (!std::isnan(value) && value >= threshold) {
          ok = true;
          break;
        }
      } else if (checker.truthy(alternative)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s: no passing key in spec \"%s\"\n", path,
                   spec.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("OK: %s (%d spec%s)\n", path, argc - 2, argc - 2 == 1 ? "" : "s");
  }
  return failures == 0 ? 0 : 1;
}
