// Shared scaffolding for the table-reproduction benches: the three datasets
// of the paper (Pima R, Pima M, Sylhet) built from the synthetic generators,
// plus CLI-controlled fidelity knobs.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "core/experiment.hpp"
#include "core/manifest.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

namespace hdc::bench {

struct BenchSetup {
  data::Dataset pima_r;
  data::Dataset pima_m;
  data::Dataset sylhet;
  core::ExperimentConfig experiment;
  std::size_t kfold = 10;
  std::size_t nn_repeats = 5;
};

/// Flags: --dim N (default 10000), --seed S, --budget B (boosted-model round
/// scale), --kfold K, --repeats R, --fast (reduced fidelity preset).
inline BenchSetup make_setup(int argc, const char* const* argv) {
  const util::Cli cli(argc, argv);
  BenchSetup setup;

  const bool fast = cli.has_flag("--fast");
  std::size_t dim = static_cast<std::size_t>(cli.get_int("--dim", fast ? 2000 : 10000));
  const std::uint64_t seed = cli.get_uint("--seed", 2023);
  setup.experiment.extractor.dimensions = dim;
  setup.experiment.extractor.seed = seed * 77 + 1;
  setup.experiment.seed = seed;
  setup.experiment.model_budget = cli.get_double("--budget", fast ? 0.2 : 0.5);
  setup.kfold = static_cast<std::size_t>(cli.get_int("--kfold", fast ? 5 : 10));
  setup.nn_repeats = static_cast<std::size_t>(cli.get_int("--repeats", fast ? 2 : 3));

  data::PimaConfig pima_config;
  pima_config.seed = seed;
  const data::Dataset pima_raw = data::make_pima(pima_config);
  setup.pima_r = data::remove_missing_rows(pima_raw);
  setup.pima_m = data::impute_class_median(pima_raw);
  data::SylhetConfig sylhet_config;
  sylhet_config.seed = seed + 1;
  setup.sylhet = data::make_sylhet(sylhet_config);

  std::printf("# config: dim=%zu seed=%llu budget=%.2f kfold=%zu repeats=%zu\n",
              dim, static_cast<unsigned long long>(seed),
              setup.experiment.model_budget, setup.kfold, setup.nn_repeats);
  std::printf("# datasets: Pima R n=%zu, Pima M n=%zu, Sylhet n=%zu\n",
              setup.pima_r.n_rows(), setup.pima_m.n_rows(), setup.sylhet.n_rows());
  return setup;
}

/// `"manifest"` provenance block for a bench JSON artifact — the same
/// core::RunManifest the library embeds in results and bundles, so every
/// BENCH_*.json records what was measured (dataset hash, seeds, dims, simd
/// tier, thread count, feature flags). bench-smoke fails artifacts without it.
inline std::string manifest_json(const data::Dataset& ds,
                                 std::string_view dataset_name,
                                 const core::ExperimentConfig& config) {
  return core::to_json(core::make_run_manifest(ds, dataset_name, config));
}

}  // namespace hdc::bench
